"""Fleet workloads: per-client throughput traces at array scale.

A serving session replays one throughput measurement per client per tick.
:class:`FleetWorkload` stores the whole replay as a ``(ticks, num_clients)``
array — NaN entries mean "this client produced no sample on this tick"
(idle, stalled, or its trace already ended) — plus a per-client region
label so service metrics can be broken down the way fleet dashboards are.

Workloads come from two places:

* :meth:`FleetWorkload.from_traces` — existing
  :class:`~repro.wireless.traces.ThroughputTrace` objects (e.g. the Fig. 8
  replay traces), one per client, NaN-padded when lengths differ;
* :meth:`FleetWorkload.synthesize` — the vectorized sibling of
  :func:`~repro.wireless.traces.generate_lte_trace`: AR(1) log-normal
  throughput with deep fades, one column per client, with each client's
  stationary mean taken from its region's Table-I average uplink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.wireless.regions import Region, paper_regions, region_by_name
from repro.wireless.traces import ThroughputTrace

__all__ = ["FleetWorkload"]


def _resolve_regions(
    regions: Optional[Sequence[Union[str, Region]]]
) -> List[Region]:
    if regions is None:
        return paper_regions()
    resolved = []
    for region in regions:
        if isinstance(region, Region):
            resolved.append(region)
            continue
        try:
            resolved.append(region_by_name(str(region)))
        except KeyError as error:
            raise ValueError(error.args[0] if error.args else str(error)) from error
    if not resolved:
        raise ValueError("at least one region is required")
    return resolved


@dataclass(frozen=True)
class FleetWorkload:
    """A fleet's full throughput replay.

    Attributes
    ----------
    uplinks_mbps:
        ``(ticks, num_clients)`` float array; NaN marks ticks on which a
        client produced no measurement.
    regions:
        Per-client region label (used for metric breakdowns only).
    name:
        Display name of the workload.
    """

    uplinks_mbps: np.ndarray
    regions: Tuple[str, ...]
    name: str = "fleet"

    def __post_init__(self) -> None:
        array = np.asarray(self.uplinks_mbps, dtype=np.float64)
        if array.ndim != 2 or array.shape[0] < 1 or array.shape[1] < 1:
            raise ValueError(
                f"uplinks_mbps must be a (ticks, clients) matrix, got {array.shape}"
            )
        object.__setattr__(self, "uplinks_mbps", array)
        if len(self.regions) != array.shape[1]:
            raise ValueError(
                f"{len(self.regions)} region labels for {array.shape[1]} clients"
            )
        object.__setattr__(self, "regions", tuple(str(r) for r in self.regions))

    # ------------------------------------------------------------------ shape
    @property
    def ticks(self) -> int:
        """Number of replay ticks."""
        return int(self.uplinks_mbps.shape[0])

    @property
    def num_clients(self) -> int:
        """Fleet size."""
        return int(self.uplinks_mbps.shape[1])

    @property
    def idle_client_ticks(self) -> int:
        """Total NaN entries: client-ticks without a measurement."""
        return int(np.isnan(self.uplinks_mbps).sum())

    def region_masks(self) -> Dict[str, np.ndarray]:
        """Region label -> boolean client mask, in first-seen order."""
        masks: Dict[str, np.ndarray] = {}
        labels = np.asarray(self.regions)
        for label in self.regions:
            if label not in masks:
                masks[label] = labels == label
        return masks

    # ------------------------------------------------------------------ sources
    @classmethod
    def from_traces(
        cls,
        traces: Sequence[ThroughputTrace],
        regions: Optional[Sequence[str]] = None,
        name: str = "trace-fleet",
    ) -> "FleetWorkload":
        """One client per trace; shorter traces are NaN-padded at the tail.

        A client whose trace is shorter than the longest one is *exhausted*
        mid-replay: it stops producing samples and the serving layer holds
        its last decision — exactly the degradation the fault-injection
        tests pin down.
        """
        if not traces:
            raise ValueError("at least one trace is required")
        ticks = max(len(trace) for trace in traces)
        uplinks = np.full((ticks, len(traces)), np.nan, dtype=np.float64)
        for column, trace in enumerate(traces):
            uplinks[: len(trace), column] = trace.uplinks_mbps
        labels = (
            tuple(str(r) for r in regions)
            if regions is not None
            else tuple(trace.name for trace in traces)
        )
        return cls(uplinks_mbps=uplinks, regions=labels, name=name)

    @classmethod
    def synthesize(
        cls,
        num_clients: int,
        ticks: int,
        regions: Optional[Sequence[Union[str, Region]]] = None,
        volatility: float = 0.45,
        correlation: float = 0.6,
        fade_probability: float = 0.05,
        fade_factor: float = 0.15,
        stall_probability: float = 0.0,
        seed: SeedLike = None,
        name: str = "synthetic-fleet",
    ) -> "FleetWorkload":
        """Synthesize a heterogeneous fleet's throughput replay.

        Clients are assigned to ``regions`` round-robin (default: the
        paper's Table-I regions) and each follows an AR(1) log-normal
        process with stationary median at its region's average uplink —
        the same process as :func:`~repro.wireless.traces.generate_lte_trace`
        but advanced for the whole fleet with one vector op per tick.
        ``stall_probability`` independently blanks measurements to NaN,
        modelling clients that intermittently stop reporting.
        """
        if num_clients < 1 or ticks < 1:
            raise ValueError("num_clients and ticks must both be >= 1")
        if not (0.0 <= correlation < 1.0):
            raise ValueError(f"correlation must be in [0, 1), got {correlation}")
        if not (0.0 <= stall_probability < 1.0):
            raise ValueError(
                f"stall_probability must be in [0, 1), got {stall_probability}"
            )
        catalogue = _resolve_regions(regions)
        rng = ensure_rng(seed)
        assignment = np.arange(num_clients) % len(catalogue)
        log_mean = np.log(
            np.array([r.avg_uplink_mbps for r in catalogue], dtype=np.float64)
        )[assignment]
        innovation_std = volatility * np.sqrt(1.0 - correlation**2)
        log_value = rng.normal(log_mean, volatility)
        uplinks = np.empty((ticks, num_clients), dtype=np.float64)
        for tick in range(ticks):
            log_value = (
                correlation * log_value
                + (1.0 - correlation) * log_mean
                + rng.normal(0.0, innovation_std, size=num_clients)
            )
            values = np.exp(log_value)
            fades = rng.random(num_clients) < fade_probability
            values = np.where(fades, values * fade_factor, values)
            uplinks[tick] = np.maximum(values, 0.05)
        if stall_probability > 0.0:
            stalled = rng.random(uplinks.shape) < stall_probability
            uplinks[stalled] = np.nan
        labels = tuple(catalogue[int(i)].name for i in assignment)
        return cls(uplinks_mbps=uplinks, regions=labels, name=name)
