"""Trace-replay serving sessions with service-grade metrics.

:class:`ServingSession` is the fleet-scale sequel of
:func:`repro.core.runtime.simulate_runtime`: it replays a
:class:`~repro.serving.workload.FleetWorkload` against one model's
:class:`~repro.core.runtime.ThresholdAnalysis`, advancing every client's
EWMA estimate and deployment decision with one vector op per tick, and
measures the replay the way a service is measured:

* **decisions/sec** — fleet decisions produced per second of decision time;
* **decision latency** — p50/p99 of the per-tick fleet decision pass (the
  time to turn one tick of measurements into one decision per client);
* **switch counts** — total and per-client deployment switches;
* **SLA violations** — fraction of served inferences whose end-to-end
  latency, under the *actual* throughput of the tick, exceeded a target.

Degradation is graceful by construction: idle / stalled / exhausted clients
hold their last decision (counted in ``held_ticks``), and non-positive or
infinite measurements are tallied as anomalies instead of raising — one bad
client never takes down a tick.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.runtime import ThresholdAnalysis
from repro.serving.fleet import (
    DECISION_METHODS,
    FleetController,
    FleetTracker,
    _option_constants,
)
from repro.serving.workload import FleetWorkload

__all__ = ["ServingSession", "ServingReport"]


def _achieved_latency(
    analysis: ThresholdAnalysis,
    option_indices: np.ndarray,
    uplinks_mbps: np.ndarray,
) -> np.ndarray:
    """End-to-end latency of the chosen options under actual throughputs.

    Vectorized :func:`repro.core.runtime.deployment_latency` over
    ``(option index, throughput)`` pairs; used for SLA accounting, which is
    latency-based regardless of the metric the controller optimises.
    """
    transferred, edge_latency, _ = _option_constants(analysis)
    chosen_bytes = transferred[option_indices]
    chosen_edge = edge_latency[option_indices]
    transmission = chosen_bytes / (uplinks_mbps * 1e6 / 8.0)
    with_comm = (chosen_edge + transmission) + analysis.round_trip_s
    return np.where(chosen_bytes <= 0.0, chosen_edge, with_comm)


@dataclass(frozen=True)
class ServingReport:
    """Service metrics of one fleet replay.

    ``per_region`` maps each region label to its share of the fleet and its
    decisions/switches/SLA accounting; ``decision_log`` (optional, see
    ``ServingSession(record_decisions=True)``) holds the full
    ``(ticks, clients)`` matrix of option indices (-1 = no decision yet).
    """

    name: str
    metric: str
    num_clients: int
    ticks: int
    option_labels: Tuple[str, ...]
    decisions: int
    switches: int
    max_switches_per_client: int
    decision_time_s: float
    decisions_per_s: float
    tick_p50_ms: float
    tick_p99_ms: float
    served: int
    sla_latency_s: Optional[float]
    sla_violations: int
    anomalies: int
    idle_client_ticks: int
    held_ticks: int
    silent_clients: int
    exhausted_clients: int
    per_region: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    decision_log: Optional[np.ndarray] = None

    @property
    def sla_violation_rate(self) -> float:
        """Fraction of served inferences that missed the latency target."""
        if not self.served or self.sla_latency_s is None:
            return 0.0
        return self.sla_violations / self.served

    @property
    def us_per_decision(self) -> float:
        """Mean decision cost in microseconds per client decision."""
        if not self.decisions:
            return 0.0
        return self.decision_time_s / self.decisions * 1e6

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "metric": self.metric,
            "num_clients": self.num_clients,
            "ticks": self.ticks,
            "option_labels": list(self.option_labels),
            "decisions": self.decisions,
            "switches": self.switches,
            "max_switches_per_client": self.max_switches_per_client,
            "decision_time_s": self.decision_time_s,
            "decisions_per_s": self.decisions_per_s,
            "tick_p50_ms": self.tick_p50_ms,
            "tick_p99_ms": self.tick_p99_ms,
            "us_per_decision": self.us_per_decision,
            "served": self.served,
            "sla_latency_s": self.sla_latency_s,
            "sla_violations": self.sla_violations,
            "sla_violation_rate": self.sla_violation_rate,
            "anomalies": self.anomalies,
            "idle_client_ticks": self.idle_client_ticks,
            "held_ticks": self.held_ticks,
            "silent_clients": self.silent_clients,
            "exhausted_clients": self.exhausted_clients,
            "per_region": {k: dict(v) for k, v in self.per_region.items()},
        }
        return payload

    # ------------------------------------------------------------------ tables
    def summary_rows(self) -> Tuple[List[str], List[List[Any]]]:
        """``(headers, rows)`` one-row fleet summary for any renderer."""
        headers = [
            "clients", "ticks", "decisions", "switches", "decisions/s",
            "tick p50 ms", "tick p99 ms", "SLA target ms", "violation %",
            "anomalies", "held ticks",
        ]
        rows = [[
            self.num_clients,
            self.ticks,
            self.decisions,
            self.switches,
            round(self.decisions_per_s),
            round(self.tick_p50_ms, 3),
            round(self.tick_p99_ms, 3),
            "-" if self.sla_latency_s is None else round(self.sla_latency_s * 1e3, 1),
            round(100.0 * self.sla_violation_rate, 2),
            self.anomalies,
            self.held_ticks,
        ]]
        return headers, rows

    def region_rows(self) -> Tuple[List[str], List[List[Any]]]:
        """``(headers, rows)`` per-region breakdown for any renderer."""
        headers = [
            "region", "clients", "decisions", "switches", "served",
            "violations", "violation %",
        ]
        rows = []
        for label, stats in self.per_region.items():
            served = stats["served"]
            rate = stats["violations"] / served * 100.0 if served else 0.0
            rows.append([
                label, stats["clients"], stats["decisions"], stats["switches"],
                served, stats["violations"], round(rate, 2),
            ])
        return headers, rows


class ServingSession:
    """Replay a fleet workload against one model's threshold analysis.

    Parameters
    ----------
    analysis:
        The served model's pre-deployment threshold analysis (typically from
        a campaign-produced Pareto candidate via
        :func:`repro.analysis.runtime_eval.select_runtime_options`).
    workload:
        The fleet's throughput replay.
    smoothing / initial_mbps:
        Tracker coefficients, scalar or per-client (see
        :class:`~repro.serving.fleet.FleetTracker`).
    latency_sla_s:
        Optional end-to-end latency target; when set, every served
        inference is checked against it under the tick's actual throughput.
    method:
        Decision method forwarded to
        :class:`~repro.serving.fleet.FleetController`.
    record_decisions:
        Keep the full ``(ticks, clients)`` decision matrix on the report
        (memory scales with the replay; meant for tests and goldens).
    """

    def __init__(
        self,
        analysis: ThresholdAnalysis,
        workload: FleetWorkload,
        smoothing: Union[float, Sequence[float], np.ndarray] = 1.0,
        initial_mbps: Union[float, Sequence[float], np.ndarray, None] = None,
        latency_sla_s: Optional[float] = None,
        method: str = "auto",
        record_decisions: bool = False,
        name: Optional[str] = None,
    ):
        if method not in DECISION_METHODS:
            raise ValueError(
                f"method must be one of {DECISION_METHODS}, got {method!r}"
            )
        if latency_sla_s is not None and latency_sla_s <= 0:
            raise ValueError(f"latency_sla_s must be positive, got {latency_sla_s}")
        self.analysis = analysis
        self.workload = workload
        self.smoothing = smoothing
        self.initial_mbps = initial_mbps
        self.latency_sla_s = latency_sla_s
        self.method = method
        self.record_decisions = bool(record_decisions)
        self.name = name or workload.name

    def run(self) -> ServingReport:
        """Replay every tick and return the service metrics."""
        workload = self.workload
        num_clients = workload.num_clients
        tracker = FleetTracker(
            num_clients, smoothing=self.smoothing, initial_mbps=self.initial_mbps
        )
        controller = FleetController(
            self.analysis, num_clients, method=self.method
        )
        uplinks = workload.uplinks_mbps
        tick_times = np.empty(workload.ticks, dtype=np.float64)
        decisions = 0
        served = 0
        violations = 0
        served_by_client = np.zeros(num_clients, dtype=np.int64)
        violations_by_client = np.zeros(num_clients, dtype=np.int64)
        decisions_by_client = np.zeros(num_clients, dtype=np.int64)
        log = (
            np.full((workload.ticks, num_clients), -1, dtype=np.intp)
            if self.record_decisions
            else None
        )

        for tick in range(workload.ticks):
            measurements = uplinks[tick]
            start = time.perf_counter()
            estimates = tracker.observe(measurements)
            choice = controller.decide(estimates)
            tick_times[tick] = time.perf_counter() - start
            decided = choice >= 0
            decisions += int(decided.sum())
            decisions_by_client += decided
            if log is not None:
                log[tick] = choice
            # SLA accounting: inferences actually issued this tick (a valid
            # measurement arrived) by clients that hold a decision.
            with np.errstate(invalid="ignore"):
                active = np.isfinite(measurements) & (measurements > 0.0)
            issued = active & decided
            if issued.any():
                served += int(issued.sum())
                served_by_client += issued
                if self.latency_sla_s is not None:
                    latency = _achieved_latency(
                        self.analysis, choice[issued], measurements[issued]
                    )
                    violated = latency > self.latency_sla_s
                    violations += int(violated.sum())
                    np.add.at(
                        violations_by_client, np.flatnonzero(issued), violated
                    )

        decision_time_s = float(tick_times.sum())
        valid = ~np.isnan(uplinks)
        any_valid = valid.any(axis=0)
        silent = int((~any_valid).sum())
        last_valid = np.where(
            any_valid, workload.ticks - 1 - np.argmax(valid[::-1], axis=0), -1
        )
        exhausted = int((any_valid & (last_valid < workload.ticks - 1)).sum())

        per_region: Dict[str, Dict[str, Any]] = {}
        switch_counts = controller.switches
        for label, mask in workload.region_masks().items():
            per_region[label] = {
                "clients": int(mask.sum()),
                "decisions": int(decisions_by_client[mask].sum()),
                "switches": int(switch_counts[mask].sum()),
                "served": int(served_by_client[mask].sum()),
                "violations": int(violations_by_client[mask].sum()),
            }

        return ServingReport(
            name=self.name,
            metric=self.analysis.metric,
            num_clients=num_clients,
            ticks=workload.ticks,
            option_labels=tuple(
                m.option.label for m in self.analysis.options
            ),
            decisions=decisions,
            switches=controller.num_switches,
            max_switches_per_client=int(switch_counts.max(initial=0)),
            decision_time_s=decision_time_s,
            decisions_per_s=(
                decisions / decision_time_s if decision_time_s > 0 else 0.0
            ),
            tick_p50_ms=float(np.percentile(tick_times, 50) * 1e3),
            tick_p99_ms=float(np.percentile(tick_times, 99) * 1e3),
            served=served,
            sla_latency_s=self.latency_sla_s,
            sla_violations=violations,
            anomalies=int(tracker.anomalies.sum()),
            idle_client_ticks=workload.idle_client_ticks,
            held_ticks=int(controller.holds.sum()),
            silent_clients=silent,
            exhausted_clients=exhausted,
            per_region=per_region,
            decision_log=log,
        )
