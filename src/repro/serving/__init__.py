"""LENS-as-a-service: vectorized multi-client runtime serving.

The paper's runtime story (§IV-E, §V-C) is one edge device switching
deployment options in O(1) as its uplink drifts.  This package serves that
decision to a *fleet*: N clients' EWMA throughput estimates advance in one
array op per tick (:class:`FleetTracker`), the whole fleet's estimates map
onto precomputed dominance intervals via ``np.searchsorted``
(:class:`FleetController` / :class:`DecisionTable`), and
:class:`ServingSession` replays per-region client traces
(:class:`FleetWorkload`) while recording service metrics — decisions/sec,
switch counts, decision-latency percentiles and SLA-violation rates
(:class:`ServingReport`).

The scalar :class:`~repro.wireless.tracker.ThroughputTracker` and
:class:`~repro.core.runtime.DynamicDeploymentController` remain the
reference implementations; ``benchmarks/bench_serving.py`` and
``tests/test_serving_parity.py`` hold the vectorized layer element-wise
identical to them.  See ``docs/serving.md``.
"""

from repro.serving.fleet import DecisionTable, FleetController, FleetTracker
from repro.serving.session import ServingReport, ServingSession
from repro.serving.workload import FleetWorkload

__all__ = [
    "DecisionTable",
    "FleetController",
    "FleetTracker",
    "FleetWorkload",
    "ServingReport",
    "ServingSession",
]
