"""Vectorized multi-client throughput tracking and deployment switching.

The scalar runtime machinery (:class:`~repro.wireless.tracker.ThroughputTracker`
driving a :class:`~repro.core.runtime.DynamicDeploymentController`) simulates
*one* edge device.  Serving a campaign-produced deployment decision to a fleet
of clients needs the same semantics at array scale:

* :class:`FleetTracker` advances N clients' EWMA throughput estimates in one
  array operation per tick — heterogeneous smoothing coefficients and priors,
  NaN-masked idle clients, and anomaly counting for measurements a scalar
  tracker would reject;
* :class:`DecisionTable` precomputes the dominance structure of a
  :class:`~repro.core.runtime.ThresholdAnalysis` — the exact pairwise
  crossover thresholds and the winning option between consecutive
  thresholds — so a fleet of estimates maps onto options via
  :func:`numpy.searchsorted`;
* :class:`FleetController` applies the table to the whole fleet's estimates
  per tick, counting per-client switches exactly as the scalar controller
  does.

Parity contract
---------------
Both classes are bit-exact sequels of their scalar references: feeding the
same measurements produces byte-identical estimates and identical decisions,
*including tie-breaking at exact threshold crossings*.  The vectorized cost
expressions replicate the scalar evaluation order operation-for-operation,
and the interval fast path falls back to an exact vectorized ``argmin`` of
the option costs inside a narrow guard band around every threshold (where
float rounding — not interval membership — decides the winner).  The
``tests/test_serving_parity.py`` property suite holds this contract under
random fleets, coefficients and traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.runtime import ThresholdAnalysis, pairwise_threshold

__all__ = ["FleetTracker", "DecisionTable", "FleetController"]

#: Relative half-width of the band around each threshold inside which
#: decisions are recomputed by exact cost comparison instead of interval
#: membership (float rounding decides ties there, as in the scalar path).
GUARD_BAND_REL = 1e-9

#: Relative cost difference below which two options are considered
#: numerically indistinguishable over the probed throughput range; such
#: analyses force the exact ``values`` decision method.
DEGENERACY_REL = 1e-9

#: Decision methods accepted by :class:`FleetController`.
DECISION_METHODS = ("auto", "intervals", "values")


def _as_client_array(
    value: Union[float, Sequence[float], np.ndarray, None],
    num_clients: int,
    name: str,
    default: float,
) -> np.ndarray:
    """Broadcast a scalar / sequence to a float64 ``(num_clients,)`` array."""
    if value is None:
        return np.full(num_clients, default, dtype=np.float64)
    array = np.asarray(value, dtype=np.float64)
    if array.ndim == 0:
        return np.full(num_clients, float(array), dtype=np.float64)
    if array.shape != (num_clients,):
        raise ValueError(
            f"{name} must be a scalar or shape ({num_clients},), got {array.shape}"
        )
    return array.copy()


class FleetTracker:
    """EWMA throughput estimation for N clients in one array op per tick.

    Parameters
    ----------
    num_clients:
        Fleet size.
    smoothing:
        EWMA coefficient(s) in (0, 1] — a scalar shared by every client or a
        per-client array (heterogeneous fleets).
    initial_mbps:
        Optional prior estimate(s); NaN entries mean "no prior" (matching a
        scalar tracker constructed without ``initial_mbps``).

    Tick semantics
    --------------
    :meth:`observe` takes one measurement per client.  A NaN measurement
    means the client produced no sample this tick (idle / stalled / trace
    exhausted): its estimate, observation count and decisions are left
    untouched.  Non-finite or non-positive measurements — which the scalar
    tracker rejects with an exception — are *counted* per client in
    :attr:`anomalies` and otherwise treated as idle, so one misbehaving
    client cannot take down a serving tick.

    Unlike the scalar reference the fleet tracker keeps no per-sample
    history: its state is O(num_clients) regardless of session length.
    """

    def __init__(
        self,
        num_clients: int,
        smoothing: Union[float, Sequence[float], np.ndarray] = 1.0,
        initial_mbps: Union[float, Sequence[float], np.ndarray, None] = None,
    ):
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        self.num_clients = int(num_clients)
        self.smoothing = _as_client_array(
            smoothing, self.num_clients, "smoothing", 1.0
        )
        if np.any((self.smoothing < 1e-6) | (self.smoothing > 1.0)):
            raise ValueError("smoothing coefficients must lie in [1e-6, 1.0]")
        self._estimates = _as_client_array(
            initial_mbps, self.num_clients, "initial_mbps", np.nan
        )
        with np.errstate(invalid="ignore"):
            bad_prior = ~np.isnan(self._estimates) & ~(self._estimates > 0.0)
        if bad_prior.any():
            raise ValueError("initial_mbps entries must be positive (or NaN)")
        self._num_observations = np.zeros(self.num_clients, dtype=np.int64)
        self._anomalies = np.zeros(self.num_clients, dtype=np.int64)

    # ------------------------------------------------------------------ state
    @property
    def estimates_mbps(self) -> np.ndarray:
        """Current per-client estimates (NaN where no observation/prior yet)."""
        return self._estimates.copy()

    @property
    def num_observations(self) -> np.ndarray:
        """Per-client count of valid measurements consumed."""
        return self._num_observations.copy()

    @property
    def anomalies(self) -> np.ndarray:
        """Per-client count of rejected (non-positive / infinite) measurements."""
        return self._anomalies.copy()

    # ------------------------------------------------------------------ update
    def observe(self, measurements: Union[Sequence[float], np.ndarray]) -> np.ndarray:
        """Consume one tick of measurements and return the updated estimates.

        ``measurements`` is one value per client; NaN marks idle clients.
        Element-wise, an active client's update is exactly the scalar
        tracker's ``s * value + (1 - s) * estimate`` (first observation:
        the value itself), so estimates stay bitwise identical to a
        per-client :class:`~repro.wireless.tracker.ThroughputTracker` loop.
        """
        values = np.asarray(measurements, dtype=np.float64)
        if values.shape != (self.num_clients,):
            raise ValueError(
                f"measurements must have shape ({self.num_clients},), "
                f"got {values.shape}"
            )
        with np.errstate(invalid="ignore"):
            active = np.isfinite(values) & (values > 0.0)
        anomalous = ~np.isnan(values) & ~active
        self._anomalies += anomalous
        self._num_observations += active
        estimates = self._estimates
        # Same expression (and evaluation order) as the scalar tracker;
        # NaN operands only occur in lanes the final where() discards.
        with np.errstate(invalid="ignore"):
            blended = self.smoothing * values + (1.0 - self.smoothing) * estimates
            updated = np.where(np.isnan(estimates), values, blended)
            self._estimates = np.where(active, updated, estimates)
        return self._estimates.copy()

    def reset(self) -> None:
        """Forget all estimates and counters (priors are not restored)."""
        self._estimates = np.full(self.num_clients, np.nan, dtype=np.float64)
        self._num_observations[:] = 0
        self._anomalies[:] = 0


# ---------------------------------------------------------------------- costing

def _option_constants(analysis: ThresholdAnalysis) -> Tuple[np.ndarray, ...]:
    """Per-option constants of the cost curves, in analysis option order."""
    options = analysis.options
    transferred = np.array([m.transferred_bytes for m in options], dtype=np.float64)
    edge_latency = np.array([m.edge_latency_s for m in options], dtype=np.float64)
    edge_energy = np.array([m.edge_energy_j for m in options], dtype=np.float64)
    return transferred, edge_latency, edge_energy


def _option_cost_matrix(
    analysis: ThresholdAnalysis, uplinks_mbps: np.ndarray
) -> np.ndarray:
    """``(num_options, n)`` matrix of option costs at the given throughputs.

    Element ``[i, j]`` equals ``analysis.value(analysis.options[i],
    uplinks_mbps[j])`` bit-for-bit: the arithmetic replicates
    :func:`repro.core.runtime.deployment_latency` /
    :func:`~repro.core.runtime.deployment_energy` operation-for-operation
    (IEEE-754 makes the element-wise numpy ops identical to the scalar
    Python float ops), so an ``argmin`` over axis 0 reproduces the scalar
    ``best_option`` selection including ties.
    """
    transferred, edge_latency, edge_energy = _option_constants(analysis)
    uplinks = np.asarray(uplinks_mbps, dtype=np.float64)
    # mbps_to_bytes_per_second, element-wise in scalar evaluation order.
    bytes_per_second = uplinks * 1e6 / 8.0
    transmission = transferred[:, None] / bytes_per_second[None, :]
    if analysis.metric == "latency":
        values = (edge_latency[:, None] + transmission) + analysis.round_trip_s
        no_comm_values = np.broadcast_to(
            edge_latency[:, None], values.shape
        )
    else:
        power = analysis.power_model
        power_w = power.alpha_w_per_mbps * uplinks + power.beta_w
        values = edge_energy[:, None] + power_w[None, :] * transmission
        no_comm_values = np.broadcast_to(edge_energy[:, None], values.shape)
    return np.where((transferred <= 0.0)[:, None], no_comm_values, values)


@dataclass(frozen=True)
class DecisionTable:
    """Precomputed dominance structure of a :class:`ThresholdAnalysis`.

    ``thresholds`` are the exact pairwise crossover throughputs (sorted);
    ``winners[k]`` is the index (into ``analysis.options``) of the dominant
    option over the open interval between ``thresholds[k-1]`` and
    ``thresholds[k]``.  ``degenerate`` flags analyses whose options are
    numerically indistinguishable somewhere in range — interval membership
    cannot reproduce the scalar rounding-decided winner there, so
    controllers fall back to exact cost comparison.
    """

    analysis: ThresholdAnalysis
    thresholds: np.ndarray
    winners: np.ndarray
    degenerate: bool

    @classmethod
    def from_analysis(cls, analysis: ThresholdAnalysis) -> "DecisionTable":
        options = analysis.options
        crossings = []
        for i, option_a in enumerate(options):
            for option_b in options[i + 1 :]:
                threshold = pairwise_threshold(
                    option_a,
                    option_b,
                    analysis.metric,
                    analysis.power_model,
                    analysis.round_trip_s,
                )
                if threshold is not None:
                    crossings.append(threshold)
        thresholds = np.unique(np.asarray(crossings, dtype=np.float64))

        # Probe one point inside every interval: geometric midpoints between
        # thresholds, plus one point below the first and above the last.
        if thresholds.size:
            probes = np.concatenate(
                (
                    [thresholds[0] * 0.5],
                    np.sqrt(thresholds[:-1] * thresholds[1:]),
                    [thresholds[-1] * 2.0],
                )
            )
        else:
            probes = np.array([1.0])
        costs = _option_cost_matrix(analysis, probes)
        winners = np.argmin(costs, axis=0).astype(np.intp)

        # Degeneracy: a pair of options whose cost curves stay within
        # DEGENERACY_REL of each other over the whole probed range has no
        # meaningful interval structure — rounding picks the winner.
        degenerate = False
        grid = np.geomspace(1e-3, 1e4, 25)
        grid_costs = _option_cost_matrix(analysis, grid)
        scale = np.maximum(np.abs(grid_costs).max(axis=0), 1e-300)
        for i in range(len(options)):
            for j in range(i + 1, len(options)):
                gap = np.abs(grid_costs[i] - grid_costs[j]) / scale
                if float(gap.max()) < DEGENERACY_REL:
                    degenerate = True
        return cls(
            analysis=analysis,
            thresholds=thresholds,
            winners=winners,
            degenerate=degenerate,
        )

    def lookup(self, uplinks_mbps: np.ndarray) -> np.ndarray:
        """Winning option index per throughput via interval membership.

        Estimates inside the guard band of a threshold (including exact
        hits) are re-decided by exact cost comparison, reproducing the
        scalar tie-breaking behaviour.
        """
        uplinks = np.asarray(uplinks_mbps, dtype=np.float64)
        if not self.thresholds.size:
            return np.full(uplinks.shape, self.winners[0], dtype=np.intp)
        segment = np.searchsorted(self.thresholds, uplinks, side="right")
        choice = self.winners[segment]
        below = np.clip(segment - 1, 0, self.thresholds.size - 1)
        lower = self.thresholds[below]
        upper = self.thresholds[np.clip(segment, 0, self.thresholds.size - 1)]
        near = (segment > 0) & (np.abs(uplinks - lower) <= GUARD_BAND_REL * lower)
        near |= (segment < self.thresholds.size) & (
            np.abs(upper - uplinks) <= GUARD_BAND_REL * upper
        )
        if near.any():
            costs = _option_cost_matrix(self.analysis, uplinks[near])
            choice[near] = np.argmin(costs, axis=0)
        return choice

    def to_dict(self) -> dict:
        return {
            "metric": self.analysis.metric,
            "thresholds_mbps": self.thresholds.tolist(),
            "winners": [
                self.analysis.options[int(w)].option.label for w in self.winners
            ],
            "degenerate": self.degenerate,
        }


class FleetController:
    """Vectorized sequel of :class:`DynamicDeploymentController` for N clients.

    Maps the whole fleet's throughput estimates onto deployment options in
    one pass per tick: ``np.searchsorted`` against the precomputed
    :class:`DecisionTable` thresholds (``method="intervals"``), an exact
    per-option cost ``argmin`` (``method="values"``), or — the default —
    intervals with the exact path as the guard-band/degeneracy fallback
    (``method="auto"``).  All three produce identical decisions; they only
    trade table lookups against cost evaluations.

    Clients without an estimate yet (NaN) hold their previous decision
    (``-1`` before any decision) and are never counted as switches; held
    ticks are tallied in :attr:`holds`.
    """

    def __init__(
        self,
        analysis: ThresholdAnalysis,
        num_clients: int,
        method: str = "auto",
        table: Optional[DecisionTable] = None,
    ):
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        if method not in DECISION_METHODS:
            raise ValueError(
                f"method must be one of {DECISION_METHODS}, got {method!r}"
            )
        self.analysis = analysis
        self.num_clients = int(num_clients)
        self.table = table or DecisionTable.from_analysis(analysis)
        if method == "auto":
            method = "values" if self.table.degenerate else "intervals"
        self.method = method
        self._last = np.full(self.num_clients, -1, dtype=np.intp)
        self._switches = np.zeros(self.num_clients, dtype=np.int64)
        self._holds = np.zeros(self.num_clients, dtype=np.int64)

    # ------------------------------------------------------------------ state
    @property
    def last_option_indices(self) -> np.ndarray:
        """Per-client index of the current option (-1 before any decision)."""
        return self._last.copy()

    @property
    def switches(self) -> np.ndarray:
        """Per-client count of deployment switches so far."""
        return self._switches.copy()

    @property
    def num_switches(self) -> int:
        """Total switches across the fleet (scalar-controller semantics)."""
        return int(self._switches.sum())

    @property
    def holds(self) -> np.ndarray:
        """Per-client count of ticks decided by holding (no estimate)."""
        return self._holds.copy()

    # ------------------------------------------------------------------ decide
    def decide(self, estimates_mbps: np.ndarray) -> np.ndarray:
        """One decision tick: option index per client for the given estimates.

        NaN estimates hold the previous decision.  For every non-NaN
        estimate the returned index selects the same option the scalar
        ``analysis.best_option(estimate)`` would, including rounding-decided
        ties at exact threshold crossings.
        """
        estimates = np.asarray(estimates_mbps, dtype=np.float64)
        if estimates.shape != (self.num_clients,):
            raise ValueError(
                f"estimates must have shape ({self.num_clients},), "
                f"got {estimates.shape}"
            )
        known = ~np.isnan(estimates)
        choice = self._last.copy()
        if known.any():
            values = estimates[known]
            if self.method == "values":
                costs = _option_cost_matrix(self.analysis, values)
                choice[known] = np.argmin(costs, axis=0)
            else:
                choice[known] = self.table.lookup(values)
        switched = known & (self._last >= 0) & (choice != self._last)
        self._switches += switched
        self._holds += ~known
        self._last = choice
        return choice.copy()

    def options_for(self, indices: np.ndarray) -> list:
        """Map decision indices back to :class:`DeploymentMetrics` (-1 -> None)."""
        return [
            None if index < 0 else self.analysis.options[int(index)]
            for index in np.asarray(indices).ravel()
        ]
