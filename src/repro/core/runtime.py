"""Runtime adaptation of deployed models (paper §IV-E and §V-C).

LENS is a design-time methodology, but the deployed model must stay efficient
when the network conditions drift from the design-time expectation.  Before
deployment, the chosen architecture's deployment options are compared in a
pairwise manner and the upload-throughput intervals over which each option
dominates are computed; at runtime an online throughput tracker selects the
dominant option in O(1).  This module provides:

* :func:`deployment_latency` / :func:`deployment_energy` — closed-form
  re-evaluation of a :class:`~repro.partition.deployment.DeploymentMetrics`
  under an arbitrary uplink throughput (the edge-side components are constant;
  only the communication terms depend on ``tu``);
* :class:`ThresholdAnalysis` — pairwise crossover thresholds and dominance
  intervals (the 6.77 Mbps / 22.77 Mbps numbers of §V-C are instances of
  these);
* :class:`DynamicDeploymentController` — the runtime switcher driven by a
  :class:`~repro.wireless.tracker.ThroughputTracker`;
* :func:`simulate_runtime` — trace-driven comparison of fixed deployments
  against dynamic switching (the Fig. 8 experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.partition.deployment import DeploymentMetrics, DeploymentOption
from repro.utils.units import mbps_to_bytes_per_second
from repro.utils.validation import require_positive
from repro.wireless.power_models import RadioPowerModel
from repro.wireless.tracker import ThroughputTracker
from repro.wireless.traces import ThroughputTrace

#: Metrics the runtime machinery can optimise.
RUNTIME_METRICS = ("latency", "energy")


def deployment_latency(
    metrics: DeploymentMetrics, uplink_mbps: float, round_trip_s: float
) -> float:
    """End-to-end latency of a deployment option under throughput ``uplink_mbps``."""
    require_positive(uplink_mbps, "uplink_mbps")
    if metrics.transferred_bytes <= 0:
        return metrics.edge_latency_s
    transmission = metrics.transferred_bytes / mbps_to_bytes_per_second(uplink_mbps)
    return metrics.edge_latency_s + transmission + round_trip_s


def deployment_energy(
    metrics: DeploymentMetrics, uplink_mbps: float, power_model: RadioPowerModel
) -> float:
    """Edge energy of a deployment option under throughput ``uplink_mbps``."""
    require_positive(uplink_mbps, "uplink_mbps")
    if metrics.transferred_bytes <= 0:
        return metrics.edge_energy_j
    transmission = metrics.transferred_bytes / mbps_to_bytes_per_second(uplink_mbps)
    return metrics.edge_energy_j + power_model.power_w(uplink_mbps) * transmission


def deployment_metric_value(
    metrics: DeploymentMetrics,
    uplink_mbps: float,
    metric: str,
    power_model: RadioPowerModel,
    round_trip_s: float,
) -> float:
    """Dispatch to :func:`deployment_latency` or :func:`deployment_energy`."""
    if metric == "latency":
        return deployment_latency(metrics, uplink_mbps, round_trip_s)
    if metric == "energy":
        return deployment_energy(metrics, uplink_mbps, power_model)
    raise ValueError(f"metric must be one of {RUNTIME_METRICS}, got {metric!r}")


def pairwise_threshold(
    option_a: DeploymentMetrics,
    option_b: DeploymentMetrics,
    metric: str,
    power_model: RadioPowerModel,
    round_trip_s: float,
) -> Optional[float]:
    """Uplink throughput at which two deployment options cost the same.

    Solves the closed-form crossover of the two cost curves (obtained by
    "equating their respective accumulative equations", §IV-E).  Returns
    ``None`` when the curves do not cross at a positive finite throughput
    (one option dominates for every ``tu``).
    """
    bits_a = option_a.transferred_bytes * 8.0
    bits_b = option_b.transferred_bytes * 8.0
    if metric == "latency":
        # edge_a + rtt_a + bits_a / (tu * 1e6) = edge_b + rtt_b + bits_b / (tu * 1e6)
        const_a = option_a.edge_latency_s + (round_trip_s if bits_a > 0 else 0.0)
        const_b = option_b.edge_latency_s + (round_trip_s if bits_b > 0 else 0.0)
        slope = (bits_b - bits_a) / 1e6
        const = const_a - const_b
    elif metric == "energy":
        # edge + alpha * bits/1e6 + beta * bits / (tu * 1e6)
        const_a = option_a.edge_energy_j + power_model.alpha_w_per_mbps * bits_a / 1e6
        const_b = option_b.edge_energy_j + power_model.alpha_w_per_mbps * bits_b / 1e6
        slope = power_model.beta_w * (bits_b - bits_a) / 1e6
        const = const_a - const_b
    else:
        raise ValueError(f"metric must be one of {RUNTIME_METRICS}, got {metric!r}")
    if abs(const) < 1e-15 or abs(slope) < 1e-15:
        return None
    threshold = slope / const
    if threshold <= 0 or not np.isfinite(threshold):
        return None
    return float(threshold)


@dataclass
class DominanceInterval:
    """Throughput interval over which one deployment option is the best choice."""

    option: DeploymentOption
    low_mbps: float
    high_mbps: float

    def contains(self, uplink_mbps: float) -> bool:
        """Whether a throughput value falls inside the interval."""
        return self.low_mbps <= uplink_mbps <= self.high_mbps

    def to_dict(self) -> Dict:
        return {
            "option": self.option.to_dict(),
            "low_mbps": self.low_mbps,
            "high_mbps": self.high_mbps,
        }


class ThresholdAnalysis:
    """Pairwise dominance analysis of a model's deployment options (§IV-E).

    Parameters
    ----------
    options:
        The deployment options to compare (typically the model's best split,
        All-Edge and All-Cloud).
    power_model / round_trip_s:
        Wireless parameters used to re-evaluate the options under varying
        throughput.
    metric:
        ``"latency"`` or ``"energy"`` — the metric being optimised at runtime.
    """

    def __init__(
        self,
        options: Sequence[DeploymentMetrics],
        power_model: RadioPowerModel,
        round_trip_s: float,
        metric: str = "latency",
    ):
        if len(options) < 2:
            raise ValueError("at least two deployment options are required")
        if metric not in RUNTIME_METRICS:
            raise ValueError(f"metric must be one of {RUNTIME_METRICS}, got {metric!r}")
        self.options = tuple(options)
        self.power_model = power_model
        self.round_trip_s = float(round_trip_s)
        self.metric = metric

    # ------------------------------------------------------------------ evaluation
    def value(self, metrics: DeploymentMetrics, uplink_mbps: float) -> float:
        """Metric value of one option at one throughput."""
        return deployment_metric_value(
            metrics, uplink_mbps, self.metric, self.power_model, self.round_trip_s
        )

    def best_option(self, uplink_mbps: float) -> DeploymentMetrics:
        """Option with the lowest metric value at the given throughput."""
        return min(self.options, key=lambda m: self.value(m, uplink_mbps))

    def thresholds(self) -> Dict[Tuple[str, str], Optional[float]]:
        """Pairwise crossover thresholds keyed by option labels."""
        result: Dict[Tuple[str, str], Optional[float]] = {}
        for i, option_a in enumerate(self.options):
            for option_b in self.options[i + 1 :]:
                result[(option_a.option.label, option_b.option.label)] = (
                    pairwise_threshold(
                        option_a,
                        option_b,
                        self.metric,
                        self.power_model,
                        self.round_trip_s,
                    )
                )
        return result

    def dominance_intervals(
        self,
        min_mbps: float = 0.1,
        max_mbps: float = 100.0,
        resolution: int = 2000,
    ) -> List[DominanceInterval]:
        """Throughput intervals over which each option is the best choice.

        The interval boundaries are located on a fine logarithmic grid and
        refined against the exact pairwise thresholds where available.
        """
        grid = np.geomspace(min_mbps, max_mbps, resolution)
        winners = [self.best_option(tu).option for tu in grid]
        intervals: List[DominanceInterval] = []
        start = 0
        for i in range(1, len(grid) + 1):
            if i == len(grid) or winners[i] != winners[start]:
                intervals.append(
                    DominanceInterval(
                        option=winners[start],
                        low_mbps=float(grid[start]),
                        high_mbps=float(grid[i - 1]),
                    )
                )
                start = i
        return intervals

    def switching_threshold(self) -> Optional[float]:
        """The single threshold separating the two dominant options, if any.

        Convenience accessor for the common two-regime case the paper reports
        (e.g. "model A favors the partitioned over All-Edge whenever
        tu > 6.77 Mbps").  Returns ``None`` when there are more than two
        dominance regimes.
        """
        intervals = self.dominance_intervals()
        if len(intervals) != 2:
            return None
        exact = pairwise_threshold(
            self._metrics_for(intervals[0].option),
            self._metrics_for(intervals[1].option),
            self.metric,
            self.power_model,
            self.round_trip_s,
        )
        if exact is not None:
            return exact
        return float(intervals[0].high_mbps)

    def _metrics_for(self, option: DeploymentOption) -> DeploymentMetrics:
        for metrics in self.options:
            if metrics.option == option:
                return metrics
        raise KeyError(f"option {option.label} is not part of this analysis")


class DynamicDeploymentController:
    """Runtime deployment switcher driven by an online throughput tracker.

    Parameters
    ----------
    analysis:
        The pre-deployment threshold analysis of the chosen model.
    tracker:
        Throughput tracker providing the current ``tu`` estimate; defaults to
        a memoryless tracker (trust the latest measurement), which matches
        the paper's O(1) switching description.
    """

    def __init__(
        self,
        analysis: ThresholdAnalysis,
        tracker: Optional[ThroughputTracker] = None,
    ):
        self.analysis = analysis
        self.tracker = tracker or ThroughputTracker(smoothing=1.0)
        self._switches = 0
        self._last_option: Optional[DeploymentOption] = None

    @property
    def num_switches(self) -> int:
        """How many times the selected deployment changed so far."""
        return self._switches

    def observe_and_select(self, uplink_mbps: float) -> DeploymentMetrics:
        """Feed one throughput measurement and return the option to use."""
        estimate = self.tracker.observe(uplink_mbps)
        best = self.analysis.best_option(estimate)
        if self._last_option is not None and best.option != self._last_option:
            self._switches += 1
        self._last_option = best.option
        return best


@dataclass
class RuntimeComparison:
    """Outcome of replaying a throughput trace against deployment strategies.

    ``cumulative`` maps a strategy label (one per fixed option plus
    ``"dynamic"``) to its accumulated metric over the trace; ``per_sample``
    holds the per-sample values for plotting Fig. 8-style curves.
    """

    metric: str
    cumulative: Dict[str, float]
    per_sample: Dict[str, List[float]] = field(default_factory=dict)
    num_switches: int = 0

    def improvement_percent(self, over: str) -> float:
        """Relative improvement of the dynamic strategy over a fixed one."""
        if over not in self.cumulative:
            raise KeyError(f"unknown strategy {over!r}")
        baseline = self.cumulative[over]
        dynamic = self.cumulative["dynamic"]
        if baseline <= 0:
            return 0.0
        return (baseline - dynamic) / baseline * 100.0

    def to_dict(self) -> Dict:
        return {
            "metric": self.metric,
            "cumulative": dict(self.cumulative),
            "num_switches": self.num_switches,
        }


def simulate_runtime(
    analysis: ThresholdAnalysis,
    trace: ThroughputTrace,
    tracker: Optional[ThroughputTracker] = None,
) -> RuntimeComparison:
    """Replay a throughput trace against fixed and dynamic deployments.

    For every trace sample one inference is issued.  Fixed strategies always
    use their designated deployment option; the dynamic strategy consults the
    throughput tracker and uses the currently dominant option.  All strategies
    are charged using the *actual* throughput of the sample.
    """
    controller = DynamicDeploymentController(analysis, tracker=tracker)
    per_sample: Dict[str, List[float]] = {
        metrics.option.label: [] for metrics in analysis.options
    }
    per_sample["dynamic"] = []
    for sample in trace:
        for metrics in analysis.options:
            per_sample[metrics.option.label].append(
                analysis.value(metrics, sample.uplink_mbps)
            )
        chosen = controller.observe_and_select(sample.uplink_mbps)
        per_sample["dynamic"].append(analysis.value(chosen, sample.uplink_mbps))
    cumulative = {label: float(np.sum(values)) for label, values in per_sample.items()}
    return RuntimeComparison(
        metric=analysis.metric,
        cumulative=cumulative,
        per_sample=per_sample,
        num_switches=controller.num_switches,
    )
