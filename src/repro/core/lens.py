"""The LENS search methodology (paper §IV, Algorithm 2).

:class:`LensSearch` wires together every substrate of the library:

* the VGG-derived search space (§IV-B) supplies candidate genotypes;
* the per-layer performance predictors (§IV-C) and the wireless channel model
  (§III-A) feed the partition-aware objective evaluation (§IV-D, Algorithm 1);
* the accuracy model supplies the error objective;
* the multi-objective Bayesian optimizer (§III-B, Algorithm 2) drives the
  search and maintains the Pareto frontier.

Users supply the expected wireless technology and upload throughput — the
design-time knowledge LENS is built around — plus the usual search budget
parameters, and receive a :class:`~repro.core.results.SearchResult` whose
Pareto set contains architectures annotated with their best deployment
option.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.accuracy.surrogate import AccuracyModel, AccuracySurrogate
from repro.core.evaluation import PartitionAwareEvaluator
from repro.core.results import CandidateEvaluation, SearchResult
from repro.hardware.device import DeviceProfile, device_by_name
from repro.hardware.predictors import BaseLayerPredictor, LayerPerformancePredictor
from repro.nn.search_space import LensSearchSpace
from repro.optim.mobo import MultiObjectiveBayesianOptimizer, OptimizationResult
from repro.partition.partitioner import PartitionAnalyzer
from repro.utils.rng import SeedLike
from repro.wireless.channel import WirelessChannel

#: The three objectives LENS minimises, in order.
LENS_OBJECTIVES = ("error_percent", "latency_s", "energy_j")


@dataclass
class LensConfig:
    """Configuration of one LENS (or Traditional) search run.

    Parameters
    ----------
    wireless_technology / expected_uplink_mbps / round_trip_s:
        The expected wireless conditions folded into the performance
        objectives.  The paper's main experiment uses WiFi at 3 Mbps with the
        round-trip time measured by pinging the server.
    device:
        Edge device name (``"jetson-tx2-gpu"`` / ``"jetson-tx2-cpu"``) or a
        custom :class:`DeviceProfile`.
    num_initial / num_iterations:
        Random-initialisation and Bayesian-optimization budgets
        (``C_init`` and ``N_iter`` of Algorithm 2).
    candidate_pool_size / acquisition:
        Acquisition-maximisation settings of the MOBO loop.
    partition_within:
        ``True`` for LENS (partitioning inside the objectives), ``False`` for
        the Traditional platform-aware baseline.
    predictor_noise_std / predictor_samples_per_type:
        Settings of the performance-predictor training pipeline; ignored when
        a pre-trained predictor is supplied to the search.
    seed:
        Master seed for the whole run.
    """

    wireless_technology: str = "wifi"
    expected_uplink_mbps: float = 3.0
    round_trip_s: float = 0.01
    device: Union[str, DeviceProfile] = "jetson-tx2-gpu"
    num_initial: int = 10
    num_iterations: int = 50
    candidate_pool_size: int = 128
    acquisition: str = "ts"
    partition_within: bool = True
    predictor_noise_std: float = 0.03
    predictor_samples_per_type: int = 200
    seed: SeedLike = 0

    def resolve_device(self) -> DeviceProfile:
        """Return the device profile, instantiating built-ins by name."""
        if isinstance(self.device, DeviceProfile):
            return self.device
        return device_by_name(str(self.device))

    def build_channel(self) -> WirelessChannel:
        """Wireless channel carrying the expected design-time conditions."""
        return WirelessChannel.create(
            technology=self.wireless_technology,
            uplink_mbps=self.expected_uplink_mbps,
            round_trip_s=self.round_trip_s,
        )


class LensSearch:
    """Multi-objective, partition-aware NAS for edge-cloud hierarchies.

    Parameters
    ----------
    search_space:
        Architecture search space; defaults to the paper's VGG-derived space.
    config:
        Run configuration (wireless expectations, budgets, device).
    accuracy_model:
        Error estimator; defaults to the analytic CIFAR-10-like surrogate.
    predictor:
        Pre-trained per-layer performance predictor for the configured
        device.  When omitted, one is trained from simulated profiling data
        (which takes a few seconds).
    progress_callback:
        Optional ``callback(evaluation_index, candidate_evaluation)`` invoked
        after every architecture evaluation.
    """

    def __init__(
        self,
        search_space: Optional[LensSearchSpace] = None,
        config: Optional[LensConfig] = None,
        accuracy_model: Optional[AccuracyModel] = None,
        predictor: Optional[BaseLayerPredictor] = None,
        progress_callback: Optional[Callable[[int, CandidateEvaluation], None]] = None,
    ):
        self.config = config or LensConfig()
        self.search_space = search_space or LensSearchSpace()
        self.accuracy_model = accuracy_model or AccuracySurrogate()
        self.device = self.config.resolve_device()
        self.channel = self.config.build_channel()
        if predictor is None:
            predictor = LayerPerformancePredictor.train_for_device(
                self.device,
                noise_std=self.config.predictor_noise_std,
                samples_per_type=self.config.predictor_samples_per_type,
                seed=self.config.seed,
            )
        self.predictor = predictor
        self.analyzer = PartitionAnalyzer(self.predictor, self.channel)
        self.evaluator = PartitionAwareEvaluator(
            search_space=self.search_space,
            accuracy_model=self.accuracy_model,
            analyzer=self.analyzer,
            partition_within=self.config.partition_within,
        )
        self.progress_callback = progress_callback
        self._raw_result: Optional[OptimizationResult] = None

    # ------------------------------------------------------------------ search
    def _make_optimizer(self) -> MultiObjectiveBayesianOptimizer:
        callback = None
        if self.progress_callback is not None:
            def callback(index, point, _archive):
                self.progress_callback(index, point.metadata["evaluation"])

        return MultiObjectiveBayesianOptimizer(
            sample_fn=self.evaluator.sample_fn,
            feature_fn=self.evaluator.feature_fn,
            objective_fn=self.evaluator.objective_fn,
            num_objectives=len(LENS_OBJECTIVES),
            num_initial=self.config.num_initial,
            num_iterations=self.config.num_iterations,
            candidate_pool_size=self.config.candidate_pool_size,
            acquisition=self.config.acquisition,
            neighbor_fn=self.evaluator.neighbor_fn,
            seed=self.config.seed,
            callback=callback,
        )

    def run(self) -> SearchResult:
        """Execute the search and return every explored candidate."""
        optimizer = self._make_optimizer()
        raw = optimizer.run()
        self._raw_result = raw
        candidates = []
        for point in raw.points:
            evaluation: CandidateEvaluation = point.metadata["evaluation"]
            evaluation.iteration = point.iteration
            evaluation.phase = point.phase
            candidates.append(evaluation)
        label = "lens" if self.config.partition_within else "traditional"
        return SearchResult(candidates, label=label)

    @property
    def raw_result(self) -> Optional[OptimizationResult]:
        """The underlying optimizer result of the last :meth:`run` call."""
        return self._raw_result
