"""The LENS search methodology (paper §IV, Algorithm 2) — legacy entry point.

:class:`LensSearch` is the original, constructor-wired way to run a search.
It is now a thin back-compat wrapper over the unified experiment API
(:mod:`repro.api`): the configuration is translated into a
:class:`~repro.api.envelopes.SearchRequest`, components are resolved through
:func:`repro.api.session.build_context` (sharing the process-wide
:class:`~repro.api.engine.EvaluationEngine` caches), and :meth:`LensSearch.run`
executes the registered ``"lens"`` / ``"traditional"`` strategy.  Results are
bit-identical to the by-name path::

    from repro.api import run_search
    outcome = run_search(strategy="lens", scenario="wifi-3mbps/jetson-tx2-gpu")

Users supply the expected wireless technology and upload throughput — the
design-time knowledge LENS is built around — plus the usual search budget
parameters, and receive a :class:`~repro.core.results.SearchResult` whose
Pareto set contains architectures annotated with their best deployment
option.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.accuracy.surrogate import AccuracyModel
from repro.core.results import CandidateEvaluation, SearchResult
from repro.hardware.device import DeviceProfile, device_by_name
from repro.hardware.predictors import BaseLayerPredictor
from repro.nn.search_space import LensSearchSpace
from repro.optim.mobo import OptimizationResult
from repro.utils.rng import SeedLike
from repro.wireless.channel import WirelessChannel

if TYPE_CHECKING:  # runtime imports stay lazy: repro.api imports repro.core
    from repro.api.engine import EvaluationEngine
    from repro.api.envelopes import SearchRequest
    from repro.api.scenario import Scenario

#: The three objectives LENS minimises, in order.
LENS_OBJECTIVES = ("error_percent", "latency_s", "energy_j")


@dataclass
class LensConfig:
    """Configuration of one LENS (or Traditional) search run.

    Parameters
    ----------
    wireless_technology / expected_uplink_mbps / round_trip_s:
        The expected wireless conditions folded into the performance
        objectives.  The paper's main experiment uses WiFi at 3 Mbps with the
        round-trip time measured by pinging the server.
    device:
        Edge device name (``"jetson-tx2-gpu"`` / ``"jetson-tx2-cpu"``) or a
        custom :class:`DeviceProfile`.
    num_initial / num_iterations:
        Random-initialisation and Bayesian-optimization budgets
        (``C_init`` and ``N_iter`` of Algorithm 2).
    candidate_pool_size / acquisition:
        Acquisition-maximisation settings of the MOBO loop.
    partition_within:
        ``True`` for LENS (partitioning inside the objectives), ``False`` for
        the Traditional platform-aware baseline.
    predictor_noise_std / predictor_samples_per_type:
        Settings of the performance-predictor training pipeline; ignored when
        a pre-trained predictor is supplied to the search.
    seed:
        Master seed for the whole run.
    """

    wireless_technology: str = "wifi"
    expected_uplink_mbps: float = 3.0
    round_trip_s: float = 0.01
    device: Union[str, DeviceProfile] = "jetson-tx2-gpu"
    num_initial: int = 10
    num_iterations: int = 50
    candidate_pool_size: int = 128
    acquisition: str = "ts"
    partition_within: bool = True
    predictor_noise_std: float = 0.03
    predictor_samples_per_type: int = 200
    seed: SeedLike = 0

    def resolve_device(self) -> DeviceProfile:
        """Return the device profile, instantiating built-ins by name."""
        if isinstance(self.device, DeviceProfile):
            return self.device
        return device_by_name(str(self.device))

    def build_channel(self) -> WirelessChannel:
        """Wireless channel carrying the expected design-time conditions."""
        return WirelessChannel.create(
            technology=self.wireless_technology,
            uplink_mbps=self.expected_uplink_mbps,
            round_trip_s=self.round_trip_s,
        )

    # ------------------------------------------------------------------ API bridge
    def to_scenario(self, name: Optional[str] = None) -> "Scenario":
        """This configuration's deployment context as an inline scenario."""
        from repro.api.scenario import Scenario

        device_name = (
            self.device.name
            if isinstance(self.device, DeviceProfile)
            else str(self.device)
        )
        return Scenario(
            name=name
            or f"{self.wireless_technology}-{self.expected_uplink_mbps:g}mbps/{device_name}",
            device=self.device,
            wireless_technology=self.wireless_technology,
            uplink_mbps=self.expected_uplink_mbps,
            round_trip_s=self.round_trip_s,
            description="inline scenario derived from a LensConfig",
        )

    def to_request(self) -> "SearchRequest":
        """This configuration as a :class:`~repro.api.envelopes.SearchRequest`."""
        from repro.api.envelopes import SearchRequest

        return SearchRequest(
            scenario=self.to_scenario(),
            strategy="lens" if self.partition_within else "traditional",
            num_initial=self.num_initial,
            num_iterations=self.num_iterations,
            candidate_pool_size=self.candidate_pool_size,
            acquisition=self.acquisition,
            predictor_noise_std=self.predictor_noise_std,
            predictor_samples_per_type=self.predictor_samples_per_type,
            seed=self.seed,
        )


class LensSearch:
    """Multi-objective, partition-aware NAS for edge-cloud hierarchies.

    Parameters
    ----------
    search_space:
        Architecture search space; defaults to the paper's VGG-derived space.
    config:
        Run configuration (wireless expectations, budgets, device).
    accuracy_model:
        Error estimator; defaults to the analytic CIFAR-10-like surrogate.
    predictor:
        Pre-trained per-layer performance predictor for the configured
        device.  When omitted, one is trained from simulated profiling data
        (and cached in the evaluation engine, so equal configurations share
        the few seconds of training).
    progress_callback:
        Optional ``callback(evaluation_index, candidate_evaluation)`` invoked
        after every architecture evaluation.
    engine:
        Optional :class:`~repro.api.engine.EvaluationEngine`; defaults to the
        process-wide shared engine.
    """

    def __init__(
        self,
        search_space: Optional[LensSearchSpace] = None,
        config: Optional[LensConfig] = None,
        accuracy_model: Optional[AccuracyModel] = None,
        predictor: Optional[BaseLayerPredictor] = None,
        progress_callback: Optional[Callable[[int, CandidateEvaluation], None]] = None,
        engine: Optional["EvaluationEngine"] = None,
    ):
        from repro.api.session import build_context

        self.config = config or LensConfig()
        self.progress_callback = progress_callback
        self.context = build_context(
            self.config.to_request(),
            search_space=search_space,
            accuracy_model=accuracy_model,
            predictor=predictor,
            engine=engine,
            progress_callback=progress_callback,
        )
        self._raw_result: Optional[OptimizationResult] = None

    # ------------------------------------------------------------------ component views
    @property
    def search_space(self) -> LensSearchSpace:
        """The architecture search space in use."""
        return self.context.search_space

    @property
    def accuracy_model(self) -> AccuracyModel:
        """The error estimator in use."""
        return self.context.accuracy_model

    @property
    def device(self) -> DeviceProfile:
        """The resolved edge-device profile."""
        return self.context.device

    @property
    def channel(self) -> WirelessChannel:
        """The expected wireless channel."""
        return self.context.channel

    @property
    def predictor(self) -> BaseLayerPredictor:
        """The per-layer performance predictor backing the objectives."""
        return self.context.predictor

    @property
    def analyzer(self):
        """The Algorithm 1 partition analyzer."""
        return self.context.analyzer

    @property
    def evaluator(self):
        """The partition-aware objective evaluator."""
        return self.context.evaluator

    @property
    def engine(self) -> "EvaluationEngine":
        """The evaluation engine (caches) backing this search."""
        return self.context.engine

    # ------------------------------------------------------------------ search
    def run(self) -> SearchResult:
        """Execute the search and return every explored candidate."""
        from repro.api.session import execute_strategy

        result, raw = execute_strategy(self.context)
        self._raw_result = raw
        return result

    @property
    def raw_result(self) -> Optional[OptimizationResult]:
        """The underlying optimizer result of the last :meth:`run` call."""
        return self._raw_result
