"""LENS core: partition-aware NAS, Traditional baseline, runtime adaptation."""

from repro.core.evaluation import PartitionAwareEvaluator
from repro.core.lens import LENS_OBJECTIVES, LensConfig, LensSearch
from repro.core.related_work import (
    FEATURES,
    RELATED_WORKS,
    RelatedWork,
    feature_matrix,
    feature_matrix_headers,
)
from repro.core.results import METRIC_NAMES, CandidateEvaluation, SearchResult
from repro.core.selection import (
    DeploymentPackage,
    build_deployment_package,
    select_by_constraints,
    select_knee_point,
)
from repro.core.runtime import (
    DominanceInterval,
    DynamicDeploymentController,
    RuntimeComparison,
    ThresholdAnalysis,
    deployment_energy,
    deployment_latency,
    deployment_metric_value,
    pairwise_threshold,
    simulate_runtime,
)
from repro.core.traditional import TraditionalSearch

__all__ = [
    "PartitionAwareEvaluator",
    "DeploymentPackage",
    "build_deployment_package",
    "select_by_constraints",
    "select_knee_point",
    "LENS_OBJECTIVES",
    "LensConfig",
    "LensSearch",
    "FEATURES",
    "RELATED_WORKS",
    "RelatedWork",
    "feature_matrix",
    "feature_matrix_headers",
    "METRIC_NAMES",
    "CandidateEvaluation",
    "SearchResult",
    "DominanceInterval",
    "DynamicDeploymentController",
    "RuntimeComparison",
    "ThresholdAnalysis",
    "deployment_energy",
    "deployment_latency",
    "deployment_metric_value",
    "pairwise_threshold",
    "simulate_runtime",
    "TraditionalSearch",
]
