"""Result containers for LENS and baseline architecture searches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.optim.pareto import pareto_front_mask
from repro.partition.deployment import DeploymentOption

#: Metric names understood by :meth:`SearchResult.objective_matrix`.
METRIC_NAMES = ("error_percent", "latency_s", "energy_j")


@dataclass
class CandidateEvaluation:
    """Full evaluation record of one explored architecture.

    Attributes
    ----------
    genotype:
        The encoded architecture (search-space index vector).
    architecture_name:
        Deterministic name assigned by the search space.
    error_percent:
        Estimated test error of the candidate.
    latency_s / energy_j:
        The *objective* values used by the search.  For LENS these are the
        best-deployment values (Algorithm 1); for the Traditional baseline
        they are the All-Edge values.
    best_latency_option / best_energy_option:
        The deployment options achieving the latency and energy objectives.
    all_edge_latency_s / all_edge_energy_j:
        All-Edge reference values, kept for the partition-within-vs-after
        comparison (Fig. 7).
    iteration / phase:
        Bookkeeping from the optimization loop.
    """

    genotype: Tuple[int, ...]
    architecture_name: str
    error_percent: float
    latency_s: float
    energy_j: float
    best_latency_option: DeploymentOption
    best_energy_option: DeploymentOption
    all_edge_latency_s: float
    all_edge_energy_j: float
    iteration: int = 0
    phase: str = "init"
    extras: Dict = field(default_factory=dict)

    def metric(self, name: str) -> float:
        """Look up one of the three objective metrics by name."""
        if name not in METRIC_NAMES:
            raise ValueError(f"metric must be one of {METRIC_NAMES}, got {name!r}")
        return float(getattr(self, name))

    @property
    def energy_mj(self) -> float:
        """Energy objective in millijoules (the unit the paper plots)."""
        return self.energy_j * 1e3

    @property
    def latency_ms(self) -> float:
        """Latency objective in milliseconds."""
        return self.latency_s * 1e3

    def to_dict(self) -> Dict:
        return {
            "genotype": list(self.genotype),
            "architecture_name": self.architecture_name,
            "error_percent": self.error_percent,
            "latency_s": self.latency_s,
            "energy_j": self.energy_j,
            "best_latency_option": self.best_latency_option.to_dict(),
            "best_energy_option": self.best_energy_option.to_dict(),
            "all_edge_latency_s": self.all_edge_latency_s,
            "all_edge_energy_j": self.all_edge_energy_j,
            "iteration": self.iteration,
            "phase": self.phase,
            "extras": self.extras,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CandidateEvaluation":
        """Inverse of :meth:`to_dict` (used by persisted search outcomes)."""
        return cls(
            genotype=tuple(int(v) for v in data["genotype"]),
            architecture_name=data["architecture_name"],
            error_percent=float(data["error_percent"]),
            latency_s=float(data["latency_s"]),
            energy_j=float(data["energy_j"]),
            best_latency_option=DeploymentOption.from_dict(data["best_latency_option"]),
            best_energy_option=DeploymentOption.from_dict(data["best_energy_option"]),
            all_edge_latency_s=float(data["all_edge_latency_s"]),
            all_edge_energy_j=float(data["all_edge_energy_j"]),
            iteration=int(data.get("iteration", 0)),
            phase=data.get("phase", "init"),
            extras=dict(data.get("extras", {})),
        )


class SearchResult:
    """All candidates explored by one search run, with Pareto-set helpers."""

    def __init__(self, candidates: Sequence[CandidateEvaluation], label: str = "search"):
        self.candidates: Tuple[CandidateEvaluation, ...] = tuple(candidates)
        self.label = str(label)

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)

    # ------------------------------------------------------------------ matrices
    def objective_matrix(
        self, metrics: Sequence[str] = ("error_percent", "energy_j")
    ) -> np.ndarray:
        """``(n, len(metrics))`` matrix of the requested metrics."""
        if not self.candidates:
            return np.empty((0, len(metrics)))
        return np.array(
            [[candidate.metric(m) for m in metrics] for candidate in self.candidates]
        )

    def pareto_mask(
        self, metrics: Sequence[str] = ("error_percent", "energy_j")
    ) -> np.ndarray:
        """Non-dominated mask with respect to the requested metrics."""
        matrix = self.objective_matrix(metrics)
        if matrix.size == 0:
            return np.zeros(0, dtype=bool)
        return pareto_front_mask(matrix)

    def pareto_candidates(
        self, metrics: Sequence[str] = ("error_percent", "energy_j")
    ) -> List[CandidateEvaluation]:
        """Candidates on the Pareto front of the requested metrics."""
        mask = self.pareto_mask(metrics)
        return [c for c, keep in zip(self.candidates, mask) if keep]

    def pareto_objectives(
        self, metrics: Sequence[str] = ("error_percent", "energy_j")
    ) -> np.ndarray:
        """Objective matrix restricted to the Pareto front."""
        matrix = self.objective_matrix(metrics)
        if matrix.size == 0:
            return matrix
        return matrix[self.pareto_mask(metrics)]

    # ------------------------------------------------------------------ selection helpers
    def best_by(self, metric: str) -> CandidateEvaluation:
        """Candidate minimising a single metric."""
        if not self.candidates:
            raise ValueError("the search produced no candidates")
        return min(self.candidates, key=lambda c: c.metric(metric))

    def count_satisfying(
        self,
        max_error_percent: Optional[float] = None,
        max_energy_mj: Optional[float] = None,
        max_latency_ms: Optional[float] = None,
    ) -> int:
        """Number of explored candidates meeting all the given criteria.

        This is the counting used by the paper's Fig. 7 ("number of
        architectures satisfying the respective conditions").
        """
        count = 0
        for candidate in self.candidates:
            if max_error_percent is not None and candidate.error_percent >= max_error_percent:
                continue
            if max_energy_mj is not None and candidate.energy_mj >= max_energy_mj:
                continue
            if max_latency_ms is not None and candidate.latency_ms >= max_latency_ms:
                continue
            count += 1
        return count

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "candidates": [c.to_dict() for c in self.candidates],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SearchResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            candidates=[CandidateEvaluation.from_dict(c) for c in data["candidates"]],
            label=data.get("label", "search"),
        )
