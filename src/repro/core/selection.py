"""Model selection and deployment packaging from a LENS Pareto set.

LENS hands the user a Pareto-optimal *set* of architectures; picking the one
to deploy is the user's last step, and shipping it to the edge device requires
the runtime-adaptation artefacts of §IV-E (the chosen deployment, its
companions, and the throughput thresholds at which to switch).  This module
provides that last mile:

* :func:`select_by_constraints` — pick the best candidate subject to upper
  bounds on error / energy / latency;
* :func:`select_knee_point` — pick the candidate closest to the (normalised)
  ideal point, a standard "knee" heuristic when no constraints are given;
* :class:`DeploymentPackage` / :func:`build_deployment_package` — bundle the
  selected architecture with its deployment options, dominance intervals and
  switching thresholds, ready to drive the runtime controller on the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.results import CandidateEvaluation, SearchResult
from repro.core.runtime import (
    DominanceInterval,
    DynamicDeploymentController,
    ThresholdAnalysis,
)
from repro.hardware.predictors import BaseLayerPredictor
from repro.nn.architecture import Architecture
from repro.nn.search_space import LensSearchSpace
from repro.partition.deployment import DeploymentMetrics
from repro.partition.partitioner import PartitionAnalyzer
from repro.wireless.channel import WirelessChannel
from repro.wireless.tracker import ThroughputTracker


def select_by_constraints(
    result: SearchResult,
    max_error_percent: Optional[float] = None,
    max_energy_mj: Optional[float] = None,
    max_latency_ms: Optional[float] = None,
    prefer: str = "error_percent",
) -> CandidateEvaluation:
    """Pick the best candidate satisfying the given upper bounds.

    Parameters
    ----------
    result:
        A search result (usually a LENS run).
    max_error_percent / max_energy_mj / max_latency_ms:
        Upper bounds; ``None`` means unconstrained.
    prefer:
        Metric minimised among the feasible candidates
        (``"error_percent"``, ``"energy_j"`` or ``"latency_s"``).

    Raises
    ------
    ValueError
        If no explored candidate satisfies every constraint.
    """
    feasible: List[CandidateEvaluation] = []
    for candidate in result:
        if max_error_percent is not None and candidate.error_percent >= max_error_percent:
            continue
        if max_energy_mj is not None and candidate.energy_mj >= max_energy_mj:
            continue
        if max_latency_ms is not None and candidate.latency_ms >= max_latency_ms:
            continue
        feasible.append(candidate)
    if not feasible:
        raise ValueError(
            "no explored candidate satisfies the constraints "
            f"(error < {max_error_percent}, energy < {max_energy_mj} mJ, "
            f"latency < {max_latency_ms} ms)"
        )
    return min(feasible, key=lambda c: c.metric(prefer))


def select_knee_point(
    result: SearchResult,
    metrics: Sequence[str] = ("error_percent", "energy_j"),
) -> CandidateEvaluation:
    """Pick the Pareto candidate closest to the normalised ideal point.

    Each metric is min-max normalised over the Pareto front; the candidate
    with the smallest Euclidean distance to the per-metric minima (the ideal
    point) is returned.  This is the conventional "knee" compromise when the
    user expresses no explicit constraints.
    """
    front = result.pareto_candidates(metrics)
    if not front:
        raise ValueError("the search result has no candidates to select from")
    matrix = np.array([[c.metric(m) for m in metrics] for c in front], dtype=float)
    lower = matrix.min(axis=0)
    span = matrix.max(axis=0) - lower
    span = np.where(span > 1e-12, span, 1.0)
    normalised = (matrix - lower) / span
    distances = np.linalg.norm(normalised, axis=1)
    return front[int(np.argmin(distances))]


@dataclass
class DeploymentPackage:
    """Everything needed to deploy one selected model on the edge device.

    Attributes
    ----------
    candidate:
        The selected candidate evaluation (genotype, objectives, deployment).
    architecture:
        The decoded architecture at the performance input shape.
    metric:
        The runtime metric the deployment adapts for (``"energy"`` or
        ``"latency"``).
    options:
        The deployment options the runtime controller switches between.
    dominance_intervals:
        Throughput intervals over which each option is the best choice.
    thresholds:
        Pairwise switching thresholds (Mbps) keyed by option-label pairs.
    expected_uplink_mbps:
        The design-time expectation the model was selected under.
    """

    candidate: CandidateEvaluation
    architecture: Architecture
    metric: str
    options: Sequence[DeploymentMetrics]
    dominance_intervals: Sequence[DominanceInterval]
    thresholds: Dict
    expected_uplink_mbps: float
    _analysis: ThresholdAnalysis = None

    def recommended_option(self, uplink_mbps: Optional[float] = None) -> DeploymentMetrics:
        """The option to use at a given throughput (default: the expectation)."""
        uplink = self.expected_uplink_mbps if uplink_mbps is None else uplink_mbps
        return self._analysis.best_option(uplink)

    def make_controller(
        self, tracker: Optional[ThroughputTracker] = None
    ) -> DynamicDeploymentController:
        """Instantiate the on-device dynamic deployment controller."""
        return DynamicDeploymentController(self._analysis, tracker=tracker)

    def to_dict(self) -> Dict:
        return {
            "candidate": self.candidate.to_dict(),
            "architecture": self.architecture.to_dict(),
            "metric": self.metric,
            "expected_uplink_mbps": self.expected_uplink_mbps,
            "options": [m.to_dict() for m in self.options],
            "dominance_intervals": [i.to_dict() for i in self.dominance_intervals],
            "thresholds": {
                " vs ".join(pair): value for pair, value in self.thresholds.items()
            },
        }


def build_deployment_package(
    candidate: CandidateEvaluation,
    search_space: LensSearchSpace,
    predictor: BaseLayerPredictor,
    channel: WirelessChannel,
    metric: str = "energy",
    include_all_edge: bool = True,
    include_all_cloud: bool = True,
) -> DeploymentPackage:
    """Bundle a selected candidate with its runtime-adaptation artefacts.

    The candidate's architecture is re-analysed under the given channel; its
    best deployment for ``metric`` plus the requested companion options feed a
    :class:`ThresholdAnalysis`, whose thresholds and dominance intervals are
    what the paper's §IV-E precomputes before deployment.
    """
    architecture = search_space.decode_for_performance(candidate.genotype)
    analyzer = PartitionAnalyzer(predictor, channel)
    evaluation = analyzer.evaluate(architecture)
    best = evaluation.best_for(metric)
    options: List[DeploymentMetrics] = [best]
    if include_all_edge and evaluation.all_edge.option != best.option:
        options.append(evaluation.all_edge)
    if include_all_cloud and evaluation.all_cloud.option != best.option:
        options.append(evaluation.all_cloud)
    if len(options) < 2:
        options.append(
            evaluation.all_cloud
            if best.option == evaluation.all_edge.option
            else evaluation.all_edge
        )
    analysis = ThresholdAnalysis(
        options=options,
        power_model=channel.power_model,
        round_trip_s=channel.round_trip_s,
        metric=metric,
    )
    return DeploymentPackage(
        candidate=candidate,
        architecture=architecture,
        metric=metric,
        options=tuple(options),
        dominance_intervals=tuple(analysis.dominance_intervals()),
        thresholds=analysis.thresholds(),
        expected_uplink_mbps=channel.uplink_mbps,
        _analysis=analysis,
    )
