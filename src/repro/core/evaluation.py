"""Partition-aware objective evaluation (paper Algorithm 1).

Given a candidate genotype, the evaluator

1. decodes it twice — once with the accuracy input shape (CIFAR-like) for the
   error objective, once with the performance input shape (224x224x3) for the
   latency/energy objectives, exactly as the paper's experimental setup does;
2. estimates the test error with the configured accuracy model;
3. predicts per-layer latency and power on the edge device, identifies the
   candidate partition points, accumulates on-device cost up to each point,
   adds the wireless transfer cost of that point's output, and takes the
   minimum over all deployment options for each metric (Algorithm 1);
4. returns the objective vector ``(error, latency, energy)`` plus a full
   :class:`~repro.core.results.CandidateEvaluation` record as metadata.

Setting ``partition_within=False`` turns off step 3's minimisation and uses
the All-Edge values as objectives instead — that is exactly the "Traditional"
baseline's platform-aware NAS, and the switch behind the paper's
partition-within-vs-after ablation (Fig. 7).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accuracy.surrogate import AccuracyModel
from repro.core.results import CandidateEvaluation
from repro.nn.architecture import Architecture
from repro.nn.graph import PartitionGraph
from repro.nn.spaces import SearchSpace
from repro.partition.partitioner import PartitionAnalyzer

if TYPE_CHECKING:  # imported lazily at runtime to avoid a core <-> api cycle
    from repro.api.engine import EvaluationEngine


def space_partition_graph(
    search_space: SearchSpace, architecture: Architecture
) -> PartitionGraph:
    """The space's cut-legality graph for a decoded architecture.

    The space's :meth:`~repro.nn.spaces.SearchSpace.partition_graph` hook is
    authoritative — spaces may constrain cuts beyond what the decoded skip
    edges express.  Legacy duck-typed spaces without the hook fall back to
    the architecture's own graph.
    """
    hook = getattr(search_space, "partition_graph", None)
    if hook is None:
        return architecture.partition_graph()
    return hook(architecture)


class PartitionAwareEvaluator:
    """Evaluates genotypes into (error, latency, energy) objective vectors.

    Parameters
    ----------
    search_space:
        Any :class:`~repro.nn.spaces.SearchSpace` used for decoding
        genotypes (the paper's ``lens-vgg`` space, the residual
        ``resnet-v1`` space, the 1-D ``seq-conv1d`` space, or a custom one).
    accuracy_model:
        Any object implementing ``error_percent(architecture) -> float``.
    analyzer:
        Partition analyzer bound to the edge-device predictor and the
        expected wireless channel.
    partition_within:
        ``True`` (LENS): objectives use each candidate's best deployment
        option.  ``False`` (Traditional): objectives use the All-Edge values.
    engine:
        Optional :class:`~repro.api.engine.EvaluationEngine`; when supplied,
        layer predictions and partition evaluations are fetched through its
        caches so repeated genotypes (across strategies, scenarios or runs)
        are costed once.
    """

    def __init__(
        self,
        search_space: SearchSpace,
        accuracy_model: AccuracyModel,
        analyzer: PartitionAnalyzer,
        partition_within: bool = True,
        engine: Optional["EvaluationEngine"] = None,
    ):
        self.search_space = search_space
        self.accuracy_model = accuracy_model
        self.analyzer = analyzer
        self.partition_within = bool(partition_within)
        self.engine = engine

    # ------------------------------------------------------------------ evaluation
    def evaluate_genotype(
        self, genotype: Sequence[int]
    ) -> Tuple[np.ndarray, Dict]:
        """Evaluate one genotype.

        Returns the objective vector ``[error %, latency s, energy J]``
        (all minimised) and a metadata dictionary containing the full
        :class:`CandidateEvaluation` under the key ``"evaluation"``.
        """
        accuracy_arch = self.search_space.decode_for_accuracy(genotype)
        performance_arch = self.search_space.decode_for_performance(genotype)

        graph = space_partition_graph(self.search_space, performance_arch)
        if self.engine is not None:
            partition_eval = self.engine.evaluate_partitions(
                performance_arch, self.analyzer, graph=graph
            )
        else:
            partition_eval = self.analyzer.evaluate(performance_arch, graph=graph)
        return self._package(genotype, accuracy_arch, performance_arch, partition_eval)

    def evaluate_pool(
        self, genotypes: Sequence[Sequence[int]]
    ) -> List[Tuple[np.ndarray, Dict]]:
        """Evaluate a whole candidate pool through the batched hot path.

        Equivalent to ``[self.evaluate_genotype(g) for g in genotypes]``
        (same records, same float packaging) but the per-layer predictions
        and deployment costing run as one array-level batch:
        :meth:`~repro.api.engine.EvaluationEngine.evaluate_batch` dedups the
        pool against the engine caches and backfills them, or — without an
        engine — :meth:`~repro.partition.partitioner.PartitionAnalyzer.evaluate_batch`
        costs the pool directly.
        """
        genotypes = list(genotypes)
        if not genotypes:
            return []
        accuracy_archs = [self.search_space.decode_for_accuracy(g) for g in genotypes]
        performance_archs = [
            self.search_space.decode_for_performance(g) for g in genotypes
        ]
        graphs = [
            space_partition_graph(self.search_space, architecture)
            for architecture in performance_archs
        ]
        if self.engine is not None:
            rows = self.engine.evaluate_batch(
                performance_archs, self.analyzer, graphs=graphs
            )
        else:
            rows = self.analyzer.evaluate_batch(performance_archs, graphs=graphs)
        return [
            self._package(genotype, accuracy_arch, performance_arch, row[0])
            for genotype, accuracy_arch, performance_arch, row in zip(
                genotypes, accuracy_archs, performance_archs, rows
            )
        ]

    def _package(
        self,
        genotype: Sequence[int],
        accuracy_arch: Architecture,
        performance_arch: Architecture,
        partition_eval,
    ) -> Tuple[np.ndarray, Dict]:
        """Shared record/objective packaging of the scalar and pool paths."""
        error = float(self.accuracy_model.error_percent(accuracy_arch))
        all_edge = partition_eval.all_edge
        best_latency = partition_eval.best_latency
        best_energy = partition_eval.best_energy

        if self.partition_within:
            latency = best_latency.latency_s
            energy = best_energy.energy_j
        else:
            latency = all_edge.latency_s
            energy = all_edge.energy_j

        evaluation = CandidateEvaluation(
            genotype=tuple(int(v) for v in np.asarray(genotype, dtype=int)),
            architecture_name=performance_arch.name,
            error_percent=error,
            latency_s=float(latency),
            energy_j=float(energy),
            best_latency_option=best_latency.option,
            best_energy_option=best_energy.option,
            all_edge_latency_s=float(all_edge.latency_s),
            all_edge_energy_j=float(all_edge.energy_j),
            extras={
                "best_latency_s": float(best_latency.latency_s),
                "best_energy_j": float(best_energy.energy_j),
                "all_cloud_latency_s": float(partition_eval.all_cloud.latency_s),
                "all_cloud_energy_j": float(partition_eval.all_cloud.energy_j),
                "num_partition_points": len(partition_eval.partition_point_indices),
                "total_params": int(accuracy_arch.total_params),
                "total_macs": int(performance_arch.total_macs),
            },
        )
        objectives = np.array([error, float(latency), float(energy)])
        return objectives, {"evaluation": evaluation}

    # ------------------------------------------------------------------ adapters for the MOBO loop
    def objective_fn(self, genotype: Sequence[int]) -> Tuple[np.ndarray, Dict]:
        """Adapter matching the optimizer's ``objective_fn`` signature."""
        return self.evaluate_genotype(genotype)

    def feature_fn(self, genotype: Sequence[int]) -> np.ndarray:
        """Adapter returning the genotype's unit-cube features."""
        return self.search_space.to_features(genotype)

    def sample_fn(self, rng) -> np.ndarray:
        """Adapter sampling a random valid genotype."""
        return self.search_space.sample(rng)

    def neighbor_fn(self, genotype: Sequence[int], count: int, rng) -> np.ndarray:
        """Adapter proposing valid neighbours of a genotype."""
        return self.search_space.neighbours(genotype, count, rng)
