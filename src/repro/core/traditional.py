"""The "Traditional" baseline of the paper's evaluation (§V).

The paper has no direct competitor, so LENS is compared against the natural
two-step alternative: (1) run platform-aware multi-objective NAS targeting
the edge device alone (error / on-device latency / on-device energy), then
(2) apply the optimal layer distribution *afterwards* to the architectures of
the resulting Pareto set.  :class:`TraditionalSearch` implements step (1) by
reusing the LENS machinery with ``partition_within=False``;
:meth:`TraditionalSearch.partition_result` implements step (2).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.core.evaluation import space_partition_graph
from repro.core.lens import LensConfig, LensSearch
from repro.core.results import CandidateEvaluation, SearchResult
from repro.nn.search_space import LensSearchSpace


class TraditionalSearch(LensSearch):
    """Platform-aware NAS for the edge device only (no partition awareness).

    Accepts the same arguments as :class:`~repro.core.lens.LensSearch`; the
    ``partition_within`` flag of the supplied configuration is forced off so
    the latency/energy objectives are always the All-Edge values.
    """

    def __init__(self, search_space=None, config: Optional[LensConfig] = None, **kwargs):
        config = config or LensConfig()
        config = replace(config, partition_within=False)
        super().__init__(search_space=search_space, config=config, **kwargs)

    # ------------------------------------------------------------------ post-hoc partitioning
    def partition_candidates(
        self, candidates: Sequence[CandidateEvaluation]
    ) -> List[CandidateEvaluation]:
        """Re-cost candidates using their best deployment option.

        This is the paper's "after partitioning models in the Traditional's
        Pareto set" step: the architecture (and therefore its error) is
        unchanged, but latency and energy become the best achievable over all
        deployment options under the expected wireless conditions.
        """
        candidates = list(candidates)
        performance_archs = [
            self.search_space.decode_for_performance(candidate.genotype)
            for candidate in candidates
        ]
        # Same graph keys as the search-loop evaluator used, so the engine
        # already holds these candidates' partition evaluations and
        # re-costing the frontier is one batched call of cache hits — and a
        # space-level partition_graph override keeps constraining post-hoc
        # cuts too.
        rows = self.engine.evaluate_batch(
            performance_archs,
            self.analyzer,
            graphs=[
                space_partition_graph(self.search_space, architecture)
                for architecture in performance_archs
            ],
        )
        partitioned: List[CandidateEvaluation] = []
        for candidate, row in zip(candidates, rows):
            evaluation = row[0]
            best_latency = evaluation.best_latency
            best_energy = evaluation.best_energy
            partitioned.append(
                replace(
                    candidate,
                    latency_s=float(best_latency.latency_s),
                    energy_j=float(best_energy.energy_j),
                    best_latency_option=best_latency.option,
                    best_energy_option=best_energy.option,
                    extras={
                        **candidate.extras,
                        "partitioned_after_search": True,
                    },
                )
            )
        return partitioned

    def partition_result(
        self,
        result: SearchResult,
        metrics: Sequence[str] = ("error_percent", "energy_j"),
        pareto_only: bool = True,
    ) -> SearchResult:
        """Apply post-hoc partitioning to a Traditional search result.

        Parameters
        ----------
        result:
            The result of :meth:`run`.
        metrics:
            Metrics defining the Pareto set to partition (the paper
            partitions the frontier models).
        pareto_only:
            When ``True`` only frontier candidates are re-costed (the paper's
            procedure); otherwise every explored candidate is.
        """
        source = result.pareto_candidates(metrics) if pareto_only else list(result)
        partitioned = self.partition_candidates(source)
        return SearchResult(partitioned, label=f"{result.label}+partitioned")
