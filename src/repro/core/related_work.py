"""Feature comparison against related work (paper Table II).

Table II is a qualitative matrix of the capabilities supported by LENS and by
the prior edge-cloud DNN optimization works it discusses: Neurosurgeon (NS),
SIEVE and the input-dependent RNN mapping work.  The matrix is reproduced
here as data so the corresponding benchmark can print it and so the library
documents exactly where LENS sits relative to prior work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: The capabilities compared by Table II, in paper order.
FEATURES: Tuple[str, ...] = (
    "Design Automation",
    "NAS support",
    "Wireless expectancy at Design Time",
    "Multi-Objective Optimization",
    "Runtime Optimization",
    "E-C Layer-Partitioning",
    "Compression",
    "Hardware Optimization",
)


@dataclass(frozen=True)
class RelatedWork:
    """One column of Table II: a system and the features it supports."""

    name: str
    reference: str
    supported: Tuple[str, ...]

    def supports(self, feature: str) -> bool:
        """Whether the system supports the given Table II feature."""
        if feature not in FEATURES:
            raise ValueError(f"unknown feature {feature!r}; known: {FEATURES}")
        return feature in self.supported

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "reference": self.reference,
            "supported": list(self.supported),
        }


#: The four systems of Table II with their supported features.
RELATED_WORKS: Tuple[RelatedWork, ...] = (
    RelatedWork(
        name="LENS",
        reference="this work (DAC 2021)",
        supported=(
            "Design Automation",
            "NAS support",
            "Wireless expectancy at Design Time",
            "Multi-Objective Optimization",
            "Runtime Optimization",
            "E-C Layer-Partitioning",
        ),
    ),
    RelatedWork(
        name="NS",
        reference="Neurosurgeon, Kang et al., ASPLOS 2017",
        supported=(
            "Runtime Optimization",
            "E-C Layer-Partitioning",
        ),
    ),
    RelatedWork(
        name="SIEVE",
        reference="Zamirai et al., DAC 2020",
        supported=(
            "Design Automation",
            "Multi-Objective Optimization",
            "Runtime Optimization",
            "Compression",
            "Hardware Optimization",
        ),
    ),
    RelatedWork(
        name="RNN",
        reference="Pagliari et al., DAC 2020",
        supported=("Runtime Optimization",),
    ),
)


def feature_matrix() -> List[List[str]]:
    """Table II as rows of ``[feature, mark-per-system...]`` strings."""
    rows: List[List[str]] = []
    for feature in FEATURES:
        row = [feature]
        for work in RELATED_WORKS:
            row.append("yes" if work.supports(feature) else "-")
        rows.append(row)
    return rows


def feature_matrix_headers() -> List[str]:
    """Header row matching :func:`feature_matrix`."""
    return ["Supported Features"] + [work.name for work in RELATED_WORKS]
