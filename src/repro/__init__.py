"""repro — reproduction of LENS (DAC 2021).

LENS is a multi-objective Neural Architecture Search methodology for
edge-cloud hierarchies: candidate architectures are evaluated according to
their best layer-partitioning option under the *expected* wireless conditions,
so the search discovers models whose best deployment may be a split between
the edge device and the cloud.

The canonical way to define and run experiments is the unified experiment
API, :mod:`repro.api`: deployment contexts are named
:class:`~repro.api.scenario.Scenario` objects, runs are declared as
versioned :class:`~repro.api.envelopes.SearchRequest` envelopes (persist,
replay, compare), components are addressable by name through string-keyed
registries, and every run shares one caching
:class:`~repro.api.engine.EvaluationEngine`.

Quickstart::

    from repro.api import run_search

    outcome = run_search(
        strategy="lens",                          # or "traditional" / "random"
        scenario="wifi-3mbps/jetson-tx2-gpu",     # a registered scenario name
        num_initial=10, num_iterations=30, seed=0,
    )
    for candidate in outcome.pareto_candidates(("error_percent", "energy_j")):
        print(candidate.architecture_name, candidate.error_percent,
              candidate.energy_mj, candidate.best_energy_option.label)
    payload = outcome.to_dict()                   # JSON-ready round trip

The legacy constructor-wired entry point keeps working unchanged and
produces identical results for identical seeds::

    from repro import LensConfig, LensSearch

    config = LensConfig(wireless_technology="wifi", expected_uplink_mbps=3.0,
                        num_initial=8, num_iterations=20, seed=0)
    result = LensSearch(config=config).run()

Underneath, the library is organised by substrate:

* :mod:`repro.api` — scenarios, registries, request/outcome envelopes, the
  evaluation engine and ``run_search``;
* :mod:`repro.nn` — architecture IR, reference models, the VGG-derived search
  space;
* :mod:`repro.hardware` — edge-device profiles, the layer-cost simulator and
  the per-layer latency/power regression predictors;
* :mod:`repro.wireless` — radio power models, channel model, regional
  throughput catalogue, throughput traces and the online tracker;
* :mod:`repro.partition` — deployment options and the Algorithm 1
  partitioning engine;
* :mod:`repro.optim` — Gaussian processes, acquisitions, Pareto tools and the
  MOBO loop;
* :mod:`repro.accuracy` — numpy CNN training and the accuracy surrogate;
* :mod:`repro.core` — the LENS search, the Traditional baseline, and runtime
  adaptation;
* :mod:`repro.analysis` — figure/table-level analyses built on the above;
* :mod:`repro.campaign` — parallel, resumable campaign runs of the
  experiment API into persistent run stores (also scriptable as
  ``python -m repro``).
"""

from repro.api.engine import EvaluationEngine, default_engine
from repro.api.envelopes import SearchOutcome, SearchRequest
from repro.api.scenario import SCENARIOS, Scenario, ScenarioRegistry, scenario_by_name
from repro.api.session import run_search
from repro.campaign import CampaignSpec, RunStore, run_campaign
from repro.core.lens import LensConfig, LensSearch
from repro.core.results import CandidateEvaluation, SearchResult
from repro.core.runtime import ThresholdAnalysis, simulate_runtime
from repro.core.traditional import TraditionalSearch
from repro.hardware.device import jetson_tx2_cpu, jetson_tx2_gpu
from repro.hardware.predictors import LayerPerformancePredictor, OracleLayerPredictor
from repro.nn.alexnet import build_alexnet
from repro.api.registry import SEARCH_SPACES, register_search_space
from repro.nn.resnet_space import ResNetSearchSpace
from repro.nn.search_space import LensSearchSpace
from repro.nn.seq_space import SeqConv1DSearchSpace
from repro.nn.spaces import SearchSpace
from repro.nn.vgg import build_vgg16
from repro.partition.partitioner import PartitionAnalyzer
from repro.wireless.channel import WirelessChannel

__version__ = "0.4.0"

__all__ = [
    "EvaluationEngine",
    "default_engine",
    "SearchOutcome",
    "SearchRequest",
    "CampaignSpec",
    "RunStore",
    "run_campaign",
    "SCENARIOS",
    "Scenario",
    "ScenarioRegistry",
    "scenario_by_name",
    "run_search",
    "LensConfig",
    "LensSearch",
    "CandidateEvaluation",
    "SearchResult",
    "ThresholdAnalysis",
    "simulate_runtime",
    "TraditionalSearch",
    "jetson_tx2_cpu",
    "jetson_tx2_gpu",
    "LayerPerformancePredictor",
    "OracleLayerPredictor",
    "build_alexnet",
    "LensSearchSpace",
    "ResNetSearchSpace",
    "SeqConv1DSearchSpace",
    "SearchSpace",
    "SEARCH_SPACES",
    "register_search_space",
    "build_vgg16",
    "PartitionAnalyzer",
    "WirelessChannel",
    "__version__",
]
