"""Random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` and funnels it through
:func:`ensure_rng` so experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for fresh OS entropy, an integer seed, or an existing
        generator (returned unchanged).

    Returns
    -------
    numpy.random.Generator
        A generator that can be used for sampling.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, an int, or a numpy Generator, got {type(seed)!r}")


def spawn_rng(rng: np.random.Generator, count: int = 1) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Child streams are statistically independent of the parent and of each
    other, which lets concurrent components (e.g. the accuracy surrogate and
    the hardware simulator) consume randomness without perturbing one
    another's sequences.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
