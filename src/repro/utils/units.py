"""Unit conversion helpers.

The library's internal convention is SI: seconds, joules, watts and bytes.
Wireless throughput is expressed in megabits per second (Mbps) because that is
the unit the paper, the Opensignal report and the Huang et al. power models
use; :func:`mbps_to_bytes_per_second` bridges the two conventions.
"""

from __future__ import annotations

BITS_PER_BYTE = 8
BYTES_PER_KB = 1024
BYTES_PER_MB = 1024 * 1024


def bytes_to_bits(num_bytes: float) -> float:
    """Convert bytes to bits."""
    return num_bytes * BITS_PER_BYTE


def bits_to_bytes(num_bits: float) -> float:
    """Convert bits to bytes."""
    return num_bits / BITS_PER_BYTE


def bytes_to_kilobytes(num_bytes: float) -> float:
    """Convert bytes to binary kilobytes (KiB)."""
    return num_bytes / BYTES_PER_KB


def kilobytes_to_bytes(num_kb: float) -> float:
    """Convert binary kilobytes (KiB) to bytes."""
    return num_kb * BYTES_PER_KB


def bytes_to_megabytes(num_bytes: float) -> float:
    """Convert bytes to binary megabytes (MiB)."""
    return num_bytes / BYTES_PER_MB


def megabytes_to_bytes(num_mb: float) -> float:
    """Convert binary megabytes (MiB) to bytes."""
    return num_mb * BYTES_PER_MB


def mbps_to_bytes_per_second(mbps: float) -> float:
    """Convert a throughput in megabits per second to bytes per second.

    Network throughput uses decimal megabits (1 Mbps = 1e6 bits/s), matching
    how carriers and the Opensignal report quote uplink speed.
    """
    return mbps * 1e6 / BITS_PER_BYTE


def seconds_to_milliseconds(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def milliseconds_to_seconds(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds / 1e3


def joules_to_millijoules(joules: float) -> float:
    """Convert joules to millijoules."""
    return joules * 1e3


def millijoules_to_joules(millijoules: float) -> float:
    """Convert millijoules to joules."""
    return millijoules / 1e3


def watts_to_milliwatts(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts * 1e3


def milliwatts_to_watts(milliwatts: float) -> float:
    """Convert milliwatts to watts."""
    return milliwatts / 1e3
