"""JSON-friendly serialization helpers.

Search results, architectures and benchmark tables are exchanged as plain
dictionaries so they can be dumped with :mod:`json` without custom encoders.
The helpers here normalise numpy scalars/arrays to built-in Python types.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping, Union

import numpy as np

try:  # pragma: no cover - POSIX only; Windows falls back to O_APPEND alone
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serialisable built-ins.

    Handles numpy scalars, numpy arrays, tuples, sets, dataclass-like objects
    exposing ``to_dict`` and nested containers thereof.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if hasattr(value, "to_dict") and callable(value.to_dict):
        return to_jsonable(value.to_dict())
    if isinstance(value, Mapping):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in value]
    raise TypeError(f"cannot serialise value of type {type(value)!r}")


def dump_json(value: Any, path: Union[str, Path], indent: int = 2) -> Path:
    """Serialise ``value`` to a JSON file and return the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(to_jsonable(value), handle, indent=indent, sort_keys=False)
        handle.write("\n")
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Load a JSON file produced by :func:`dump_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` crash-safely.

    The content goes to a temp file in the same directory and is
    ``os.replace``-d into place, so a crash mid-write leaves either the old
    file or the new one — never a torn hybrid.  Shared by the campaign run
    stores, the manifest writer and the search checkpoint layer.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _maybe_inject_append_fault(fd: int, path: Path, line: bytes) -> None:
    """Chaos hook: consult the fault injector before an append's write.

    Imported lazily so the hot path costs one ``sys.modules`` lookup and
    production (no injector installed) returns immediately.  Torn-write
    injection half-writes the line and dies with ``KilledByFault``
    (simulating a writer killed mid-``write``); ENOSPC injection raises
    ``OSError(ENOSPC)`` before a byte lands.  The caller's ``finally``
    blocks unlock and close ``fd`` on both paths.
    """
    from repro.resilience import faults

    injector = faults.active()
    if injector is None:
        return
    if injector.take_enospc():
        import errno

        raise OSError(
            errno.ENOSPC, "injected fault: no space left on device", str(path)
        )
    if injector.take_torn_append():
        os.write(fd, line[: max(1, len(line) // 2)])
        raise faults.KilledByFault(f"injected torn append to {path}")


def append_jsonl_atomic(path: Path, payload: Mapping[str, Any]) -> int:
    """Append one JSON line to ``path`` safely under concurrent writers.

    The whole line goes down in a single ``os.write`` on a descriptor opened
    with ``O_APPEND`` (atomic with respect to the file offset on POSIX),
    wrapped in an advisory ``flock`` where available so concurrent appends
    from workers on one machine never interleave.  Returns the byte offset
    the line was written at.  Used by the campaign audit log, the sharded
    run stores and the resilience health log.
    """
    path = Path(path)
    line = (json.dumps(payload, sort_keys=False) + "\n").encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(str(path), os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            offset = os.lseek(fd, 0, os.SEEK_END)
            _maybe_inject_append_fault(fd, path, line)
            os.write(fd, line)
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)
    return offset


def format_table(rows: list, headers: list, precision: int = 3) -> str:
    """Render a list of row-sequences as a fixed-width text table.

    Used by the benchmark harnesses to print the same rows the paper's tables
    and figures report, without requiring a plotting backend.
    """
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    str_headers = [str(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        if len(row) != len(str_headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(str_headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(str_headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
