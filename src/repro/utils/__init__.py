"""Shared utilities: randomness, unit conversions, validation and serialization."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.units import (
    BYTES_PER_KB,
    BYTES_PER_MB,
    bits_to_bytes,
    bytes_to_bits,
    bytes_to_kilobytes,
    bytes_to_megabytes,
    joules_to_millijoules,
    kilobytes_to_bytes,
    mbps_to_bytes_per_second,
    megabytes_to_bytes,
    millijoules_to_joules,
    milliseconds_to_seconds,
    milliwatts_to_watts,
    seconds_to_milliseconds,
    watts_to_milliwatts,
)
from repro.utils.validation import (
    require_between,
    require_in,
    require_non_negative,
    require_positive,
    require_type,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "BYTES_PER_KB",
    "BYTES_PER_MB",
    "bits_to_bytes",
    "bytes_to_bits",
    "bytes_to_kilobytes",
    "bytes_to_megabytes",
    "joules_to_millijoules",
    "kilobytes_to_bytes",
    "mbps_to_bytes_per_second",
    "megabytes_to_bytes",
    "millijoules_to_joules",
    "milliseconds_to_seconds",
    "milliwatts_to_watts",
    "seconds_to_milliseconds",
    "watts_to_milliwatts",
    "require_between",
    "require_in",
    "require_non_negative",
    "require_positive",
    "require_type",
]
