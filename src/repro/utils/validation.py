"""Small argument-validation helpers used across the library.

These keep constructor bodies readable and produce consistent error messages
("<name> must be positive, got -3") instead of ad-hoc asserts.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Tuple, Type, Union


def require_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def require_between(value: float, low: float, high: float, name: str) -> float:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def require_in(value: Any, choices: Iterable[Any], name: str) -> Any:
    """Raise ``ValueError`` unless ``value`` is one of ``choices``."""
    choices = tuple(choices)
    if value not in choices:
        raise ValueError(f"{name} must be one of {choices}, got {value!r}")
    return value


def require_type(
    value: Any, types: Union[Type, Tuple[Type, ...]], name: str
) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        raise TypeError(f"{name} must be of type {types}, got {type(value)!r}")
    return value


def require_shape(shape: Sequence[int], rank: int, name: str) -> Tuple[int, ...]:
    """Validate a tensor shape: correct rank and strictly positive dims."""
    shape = tuple(int(s) for s in shape)
    if len(shape) != rank:
        raise ValueError(f"{name} must have rank {rank}, got shape {shape}")
    if any(s <= 0 for s in shape):
        raise ValueError(f"{name} dimensions must be positive, got {shape}")
    return shape
