"""``repro`` — command-line front end of the experiment API.

Four subcommands mirror the library's layers (also reachable as
``python -m repro``):

* ``repro list`` — registries (scenarios, strategies, devices, wireless,
  acquisitions) and, with ``--store``, the runs persisted in a store;
* ``repro run`` — execute one :class:`~repro.api.envelopes.SearchRequest`
  by scenario/strategy name, print its summary, optionally persist it;
* ``repro campaign`` — fan a scenario x search-space x strategy x seed grid
  out over worker processes into a resumable
  :class:`~repro.campaign.store.RunStore`;
* ``repro report`` — aggregate a store into per-scenario winner and Pareto
  summaries (text, Markdown or JSON).

Every command is plumbing around the public API — anything the CLI does can
be done in a few lines of Python (see ``docs/cli.md`` for the mapping).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.reporting import ExperimentReport, summarize_campaign
from repro.api.envelopes import SearchRequest, load_request
from repro.api.registry import (
    ACQUISITIONS,
    DEVICES,
    RegistryError,
    SEARCH_SPACES,
    WIRELESS_TECHNOLOGIES,
)
from repro.api.scenario import SCENARIOS
from repro.api.session import STRATEGIES, run_search
from repro.campaign import CampaignSpec, RunStore, StoreError, run_campaign
from repro.nn.spaces import DEFAULT_SEARCH_SPACE
from repro.utils.serialization import dump_json, format_table


def _parse_tags(pairs: Optional[Sequence[str]]) -> Dict[str, str]:
    tags: Dict[str, str] = {}
    for pair in pairs or ():
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise argparse.ArgumentTypeError(
                f"tags must look like key=value, got {pair!r}"
            )
        tags[key] = value
    return tags


def _add_budget_arguments(
    parser: argparse.ArgumentParser, *, deferred: bool = False
) -> None:
    """Attach the shared search-budget flags.

    ``deferred=True`` (the ``run`` command) leaves every default as ``None``
    so "flag given" is distinguishable from "default" — a flag then
    overrides the corresponding field of a ``--request`` file, and absent
    flags fall back to the :class:`SearchRequest` dataclass defaults.
    """
    group = parser.add_argument_group("search budgets")
    group.add_argument("--num-initial", type=int,
                       default=None if deferred else 10,
                       help="random-initialisation evaluations (default: 10)")
    group.add_argument("--num-iterations", type=int,
                       default=None if deferred else 50,
                       help="Bayesian-search iterations (default: 50)")
    group.add_argument("--pool-size", type=int,
                       default=None if deferred else 128,
                       help="acquisition candidate-pool size (default: 128)")
    group.add_argument("--acquisition", default=None if deferred else "ts",
                       help=f"acquisition strategy {ACQUISITIONS.names()} (default: ts)")
    group.add_argument("--predictor-samples", type=int,
                       default=None if deferred else 200,
                       help="profiling samples per layer type (default: 200)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LENS reproduction: run and aggregate search experiments.",
    )
    commands = parser.add_subparsers(dest="command", metavar="command")

    list_parser = commands.add_parser(
        "list",
        help="show registries and stored runs",
        description="Show registered scenarios, strategies, search spaces, "
                    "devices, wireless technologies and acquisitions; with "
                    "--store, also the runs persisted in a store.",
    )
    list_parser.add_argument("--store", metavar="DIR",
                             help="also list the runs stored under DIR")

    run_parser = commands.add_parser(
        "run",
        help="execute one search request",
        description="Run one search by scenario/strategy name and print its "
                    "summary. --request loads a serialized SearchRequest "
                    "instead; explicit flags override its fields.",
    )
    run_parser.add_argument("--scenario", default=None,
                            help="scenario name (see: repro list; "
                                 "default: wifi-3mbps/jetson-tx2-gpu)")
    run_parser.add_argument("--strategy", default=None,
                            help=f"strategy {STRATEGIES.names()} (default: lens)")
    run_parser.add_argument("--search-space", default=None,
                            help=f"search space {SEARCH_SPACES.names()} "
                                 f"(default: {DEFAULT_SEARCH_SPACE})")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="master seed (default: 0)")
    run_parser.add_argument("--request", metavar="FILE",
                            help="load a SearchRequest JSON file")
    run_parser.add_argument("--out", metavar="FILE",
                            help="write the full outcome as JSON")
    run_parser.add_argument("--store", metavar="DIR",
                            help="append the outcome to the run store under DIR")
    run_parser.add_argument("--tag", action="append", metavar="KEY=VALUE",
                            help="attach metadata to the request (repeatable)")
    _add_budget_arguments(run_parser, deferred=True)

    campaign_parser = commands.add_parser(
        "campaign",
        help="run a scenario x space x strategy x seed grid into a run store",
        description="Expand a campaign grid and execute it into a resumable "
                    "store: cells whose fingerprint is already stored are "
                    "skipped, the rest fan out over --workers processes.",
    )
    campaign_parser.add_argument("--spec", metavar="FILE",
                                 help="CampaignSpec JSON file (flags below are "
                                      "ignored when given)")
    campaign_parser.add_argument("--scenario", action="append", default=None,
                                 metavar="NAME", help="grid scenario (repeatable)")
    campaign_parser.add_argument("--search-space", action="append", default=None,
                                 metavar="NAME",
                                 help="grid search space (repeatable; "
                                      f"default: {DEFAULT_SEARCH_SPACE})")
    campaign_parser.add_argument("--strategy", action="append", default=None,
                                 metavar="NAME", help="grid strategy (repeatable; "
                                 "default: lens)")
    campaign_parser.add_argument("--seed", action="append", type=int, default=None,
                                 metavar="N", help="grid seed (repeatable; default: 0)")
    campaign_parser.add_argument("--store", required=True, metavar="DIR",
                                 help="run-store directory (created if missing)")
    campaign_parser.add_argument("--workers", type=int, default=1, metavar="N",
                                 help="worker processes (default: 1 = in-process)")
    campaign_parser.add_argument("--no-resume", action="store_true",
                                 help="fail on already-stored cells instead of "
                                      "skipping them")
    campaign_parser.add_argument("--quiet", action="store_true",
                                 help="suppress per-cell progress lines")
    _add_budget_arguments(campaign_parser)

    report_parser = commands.add_parser(
        "report",
        help="aggregate a run store into winners and Pareto summaries",
        description="Summarise every run stored under --store: one row per "
                    "scenario x strategy cell, plus the strategy owning the "
                    "largest share of each scenario's combined Pareto front.",
    )
    report_parser.add_argument("--store", required=True, metavar="DIR",
                               help="run-store directory to aggregate")
    report_parser.add_argument("--metrics", default="error_percent,energy_j",
                               help="comma-separated metric pair "
                                    "(default: error_percent,energy_j)")
    report_parser.add_argument("--format", choices=("table", "markdown", "json"),
                               default="table", help="output format (default: table)")
    report_parser.add_argument("--out", metavar="FILE",
                               help="also write the report to FILE")
    return parser


# ---------------------------------------------------------------------- commands

def _cmd_list(args: argparse.Namespace) -> int:
    print(f"scenarios ({len(SCENARIOS)}):")
    for scenario in SCENARIOS.scenarios():
        print(f"  {scenario.name:<42} {scenario.wireless_technology:<5} "
              f"{scenario.uplink_mbps:6.2f} Mbps  {scenario.device_name}")
    print(f"strategies: {', '.join(STRATEGIES.names())}")
    print(f"search spaces: {', '.join(SEARCH_SPACES.names())}")
    print(f"devices: {', '.join(DEVICES.names())}")
    print(f"wireless technologies: {', '.join(WIRELESS_TECHNOLOGIES.names())}")
    print(f"acquisitions: {', '.join(ACQUISITIONS.names())}")
    if args.store:
        store = RunStore(args.store)
        overview = store.summary()
        print(f"\nstore {overview['directory']}: {overview['num_runs']} runs, "
              f"{overview['total_wall_time_s']:.1f}s total search time")
        rows = [
            [fp, r["scenario"], r["search_space"], r["strategy"],
             "-" if r["seed"] is None else r["seed"], r["num_candidates"]]
            for fp, r in sorted(store.records().items())
        ]
        if rows:
            print(format_table(
                rows,
                ["fingerprint", "scenario", "space", "strategy", "seed",
                 "candidates"],
            ))
    return 0


def _request_from_args(args: argparse.Namespace) -> SearchRequest:
    """Build the request: ``--request`` file fields, overridden by given flags."""
    overrides: Dict[str, Any] = {}
    for flag, field in (
        ("scenario", "scenario"),
        ("strategy", "strategy"),
        ("search_space", "search_space"),
        ("seed", "seed"),
        ("num_initial", "num_initial"),
        ("num_iterations", "num_iterations"),
        ("pool_size", "candidate_pool_size"),
        ("acquisition", "acquisition"),
        ("predictor_samples", "predictor_samples_per_type"),
    ):
        value = getattr(args, flag)
        if value is not None:
            overrides[field] = value
    if args.tag:
        overrides["tags"] = _parse_tags(args.tag)
    if args.request:
        request = load_request(args.request)
        return request.replace(**overrides) if overrides else request
    # absent flags fall back to the SearchRequest dataclass defaults
    return SearchRequest(**overrides)


def _cmd_run(args: argparse.Namespace) -> int:
    request = _request_from_args(args)
    outcome = run_search(request)
    front = outcome.pareto_candidates()
    print(f"scenario:    {outcome.scenario.name}")
    print(f"strategy:    {outcome.label}")
    print(f"space:       {request.search_space}")
    print(f"fingerprint: {request.fingerprint()}")
    print(f"candidates:  {len(outcome)} explored, {len(front)} Pareto-optimal "
          f"(error, energy)")
    print(f"wall time:   {outcome.wall_time_s:.2f}s")
    rows = []
    for label, metric in (("lowest error", "error_percent"),
                          ("lowest energy", "energy_j"),
                          ("lowest latency", "latency_s")):
        best = outcome.best_by(metric)
        rows.append([label, best.architecture_name, round(best.error_percent, 2),
                     round(best.energy_mj, 1), round(best.latency_ms, 1),
                     best.best_energy_option.label])
    print(format_table(
        rows, ["selection", "model", "error %", "energy mJ", "latency ms", "deployment"]
    ))
    if args.out:
        path = dump_json(outcome.to_dict(), args.out)
        print(f"outcome written to {path}")
    if args.store:
        store = RunStore(args.store)
        fingerprint = request.fingerprint()
        if fingerprint in store:
            print(f"store {store.directory}: fingerprint already present, not appended")
        else:
            store.append(outcome, fingerprint=fingerprint)
            print(f"outcome stored in {store.directory} as {fingerprint}")
    return 0


def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    if args.spec:
        return CampaignSpec.load(args.spec)
    if not args.scenario:
        raise argparse.ArgumentTypeError(
            "campaign needs --spec FILE or at least one --scenario"
        )
    return CampaignSpec(
        scenarios=tuple(args.scenario),
        search_spaces=tuple(args.search_space or (DEFAULT_SEARCH_SPACE,)),
        strategies=tuple(args.strategy or ("lens",)),
        seeds=tuple(args.seed if args.seed is not None else (0,)),
        num_initial=args.num_initial,
        num_iterations=args.num_iterations,
        candidate_pool_size=args.pool_size,
        acquisition=args.acquisition,
        predictor_samples_per_type=args.predictor_samples,
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    store = RunStore(args.store)
    stored = store.records()  # one snapshot for labelling every skipped cell

    def progress(done: int, total: int, fingerprint: str, outcome) -> None:
        if args.quiet:
            return
        if outcome is None:
            record = stored.get(fingerprint, {})
            what = (f"{record.get('scenario', '?')} x {record.get('strategy', '?')} "
                    "(already stored)")
        else:
            what = (f"{outcome.scenario.name} x {outcome.request.search_space} "
                    f"x {outcome.label} seed={outcome.request.seed} "
                    f"({outcome.wall_time_s:.2f}s)")
        print(f"[{done}/{total}] {fingerprint}  {what}")

    result = run_campaign(
        spec, store,
        workers=args.workers,
        resume=not args.no_resume,
        progress=progress,
    )
    summary = result.summary()
    print(f"campaign done: {summary['executed']} executed, "
          f"{summary['skipped']} skipped, {summary['total_cells']} cells, "
          f"workers={summary['workers']}, {summary['wall_time_s']:.2f}s")
    print(f"store: {store.directory} ({len(store)} runs total)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    metrics = tuple(m.strip() for m in args.metrics.split(",") if m.strip())
    store = RunStore(args.store)
    if len(store) == 0:
        print(f"store {store.directory} holds no runs", file=sys.stderr)
        return 1
    summary = summarize_campaign(store.outcomes(), metrics=metrics)

    if args.format == "json":
        text = json.dumps(summary.to_dict(), indent=2, sort_keys=True)
    elif args.format == "markdown":
        report = ExperimentReport(title=f"Campaign report — {store.directory}")
        report.add_campaign_summary(summary)
        text = report.render_markdown()
    else:
        # wall time is excluded so identical stores render identical reports
        cell_headers, cell_rows = summary.cell_table(include_wall_time=False)
        winner_headers, winner_rows = summary.winner_table()
        text = (
            f"{summary.num_runs} runs, metrics: {' / '.join(metrics)}\n"
            + format_table(cell_rows, cell_headers)
            + "\n\nwinners (largest combined-frontier share):\n"
            + format_table(winner_rows, winner_headers)
        )
    print(text)
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n", encoding="utf-8")
        print(f"report written to {path}", file=sys.stderr)
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "campaign": _cmd_campaign,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    try:
        return _COMMANDS[args.command](args)
    except (RegistryError, StoreError, argparse.ArgumentTypeError, ValueError) as error:
        print(f"repro {args.command}: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"repro {args.command}: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # downstream consumer (head, a pager) closed the pipe — not an error
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
