"""``repro`` — command-line front end of the experiment API.

The subcommands mirror the library's layers (also reachable as
``python -m repro``):

* ``repro list`` — registries (scenarios, strategies, executors, devices,
  wireless, acquisitions) and, with ``--store``, the runs persisted in a
  store;
* ``repro run`` — execute one :class:`~repro.api.envelopes.SearchRequest`
  by scenario/strategy name, print its summary, optionally persist it;
* ``repro campaign`` — fan a scenario x search-space x strategy x seed grid
  out through a pluggable executor (``--executor serial | process-pool |
  asyncio | pull-worker``) into a resumable run store;
* ``repro worker`` — join a distributed campaign by pulling cells from a
  shared sharded store directory (the ``pull-worker`` protocol; start any
  number, on any machine sharing the filesystem);
* ``repro store`` — maintenance: ``compact`` (drop torn tails and
  superseded records), ``export`` (columnar per-candidate metrics),
  ``merge`` (consolidate stores by fingerprint) and ``fsck`` (verify
  per-record checksums; ``--repair`` quarantines damaged lines);
* ``repro report`` — aggregate a store into per-scenario winner and Pareto
  summaries (text, Markdown or JSON), including audit/error summaries;
* ``repro serve`` — replay a campaign-produced Pareto winner against a
  synthetic multi-region client fleet through the vectorized serving layer
  (:mod:`repro.serving`) and print the service metrics.

Every command is plumbing around the public API — anything the CLI does can
be done in a few lines of Python (see ``docs/cli.md`` and
``docs/distributed.md`` for the mapping).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.reporting import ExperimentReport, summarize_campaign
from repro.analysis.runtime_eval import select_runtime_options
from repro.api.engine import default_engine
from repro.api.envelopes import SearchRequest, load_request
from repro.api.registry import (
    ACQUISITIONS,
    DEVICES,
    RegistryError,
    SEARCH_SPACES,
    WIRELESS_TECHNOLOGIES,
)
from repro.api.scenario import SCENARIOS
from repro.api.session import STRATEGIES, run_search
from repro.campaign import (
    EXECUTORS,
    CampaignPolicy,
    CampaignSpec,
    CircuitOpenError,
    DeadLetterQueue,
    ErrorEnvelope,
    RunStore,
    StoreError,
    fsck_store,
    merge_stores,
    open_store,
    run_campaign,
    run_worker,
    summarize_audit,
)
from repro.campaign.sharded import ShardedRunStore, export_metrics
from repro.core.results import SearchResult
from repro.core.runtime import ThresholdAnalysis
from repro.nn.spaces import DEFAULT_SEARCH_SPACE
from repro.serving import FleetWorkload, ServingSession
from repro.serving.fleet import DECISION_METHODS
from repro.utils.serialization import dump_json, format_table, to_jsonable


def _parse_tags(pairs: Optional[Sequence[str]]) -> Dict[str, str]:
    tags: Dict[str, str] = {}
    for pair in pairs or ():
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise argparse.ArgumentTypeError(
                f"tags must look like key=value, got {pair!r}"
            )
        tags[key] = value
    return tags


def _add_budget_arguments(
    parser: argparse.ArgumentParser, *, deferred: bool = False
) -> None:
    """Attach the shared search-budget flags.

    ``deferred=True`` (the ``run`` command) leaves every default as ``None``
    so "flag given" is distinguishable from "default" — a flag then
    overrides the corresponding field of a ``--request`` file, and absent
    flags fall back to the :class:`SearchRequest` dataclass defaults.
    """
    group = parser.add_argument_group("search budgets")
    group.add_argument("--num-initial", type=int,
                       default=None if deferred else 10,
                       help="random-initialisation evaluations (default: 10)")
    group.add_argument("--num-iterations", type=int,
                       default=None if deferred else 50,
                       help="Bayesian-search iterations (default: 50)")
    group.add_argument("--pool-size", type=int,
                       default=None if deferred else 128,
                       help="acquisition candidate-pool size (default: 128)")
    if deferred:
        group.add_argument("--acquisition", default=None,
                           help=f"acquisition strategy {ACQUISITIONS.names()} "
                                "(default: ts)")
    else:
        # campaigns: repeatable, to declare an ablation axis over acquisitions
        group.add_argument("--acquisition", action="append", default=None,
                           metavar="NAME",
                           help=f"acquisition strategy {ACQUISITIONS.names()} "
                                "(default: ts); repeat to grid over several")
    group.add_argument("--batch-size", type=int,
                       default=None if deferred else 1,
                       help="candidates proposed per BO iteration "
                            "(q-batch selection, default: 1)")
    group.add_argument("--predictor-samples", type=int,
                       default=None if deferred else 200,
                       help="profiling samples per layer type (default: 200)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LENS reproduction: run and aggregate search experiments.",
    )
    commands = parser.add_subparsers(dest="command", metavar="command")

    list_parser = commands.add_parser(
        "list",
        help="show registries and stored runs",
        description="Show registered scenarios, strategies, search spaces, "
                    "devices, wireless technologies and acquisitions; with "
                    "--store, also the runs persisted in a store.",
    )
    list_parser.add_argument("--store", metavar="DIR",
                             help="also list the runs stored under DIR")

    run_parser = commands.add_parser(
        "run",
        help="execute one search request",
        description="Run one search by scenario/strategy name and print its "
                    "summary. --request loads a serialized SearchRequest "
                    "instead; explicit flags override its fields.",
    )
    run_parser.add_argument("--scenario", default=None,
                            help="scenario name (see: repro list; "
                                 "default: wifi-3mbps/jetson-tx2-gpu)")
    run_parser.add_argument("--strategy", default=None,
                            help=f"strategy {STRATEGIES.names()} (default: lens)")
    run_parser.add_argument("--search-space", default=None,
                            help=f"search space {SEARCH_SPACES.names()} "
                                 f"(default: {DEFAULT_SEARCH_SPACE})")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="master seed (default: 0)")
    run_parser.add_argument("--request", metavar="FILE",
                            help="load a SearchRequest JSON file")
    run_parser.add_argument("--out", metavar="FILE",
                            help="write the full outcome as JSON")
    run_parser.add_argument("--store", metavar="DIR",
                            help="append the outcome to the run store under DIR")
    run_parser.add_argument("--tag", action="append", metavar="KEY=VALUE",
                            help="attach metadata to the request (repeatable)")
    run_parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                            help="crash-safe mode: snapshot the evaluated "
                                 "history under DIR/<fingerprint>/ and resume "
                                 "a previously interrupted run bitwise-"
                                 "identically (see docs/robustness.md)")
    run_parser.add_argument("--checkpoint-every", type=int, default=10,
                            metavar="N",
                            help="evaluations between snapshots "
                                 "(with --checkpoint-dir; default: 10)")
    run_parser.add_argument("--fresh", action="store_true",
                            help="ignore an existing checkpoint and restart "
                                 "the search from evaluation zero")
    _add_budget_arguments(run_parser, deferred=True)

    campaign_parser = commands.add_parser(
        "campaign",
        help="run a scenario x space x strategy x seed grid into a run store",
        description="Expand a campaign grid and execute it into a resumable "
                    "store: cells whose fingerprint is already stored are "
                    "skipped, the rest fan out over --workers processes.",
    )
    campaign_parser.add_argument("--spec", metavar="FILE",
                                 help="CampaignSpec JSON file (flags below are "
                                      "ignored when given)")
    campaign_parser.add_argument("--scenario", action="append", default=None,
                                 metavar="NAME", help="grid scenario (repeatable)")
    campaign_parser.add_argument("--search-space", action="append", default=None,
                                 metavar="NAME",
                                 help="grid search space (repeatable; "
                                      f"default: {DEFAULT_SEARCH_SPACE})")
    campaign_parser.add_argument("--strategy", action="append", default=None,
                                 metavar="NAME", help="grid strategy (repeatable; "
                                 "default: lens)")
    campaign_parser.add_argument("--seed", action="append", type=int, default=None,
                                 metavar="N", help="grid seed (repeatable; default: 0)")
    campaign_parser.add_argument("--store", required=True, metavar="DIR",
                                 help="run-store directory (created if missing)")
    campaign_parser.add_argument("--workers", type=int, default=1, metavar="N",
                                 help="worker processes (default: 1 = in-process)")
    campaign_parser.add_argument("--executor", default=None,
                                 choices=EXECUTORS.names(), metavar="NAME",
                                 help=f"execution back-end {EXECUTORS.names()} "
                                      "(default: serial for --workers 1, "
                                      "process-pool otherwise)")
    campaign_parser.add_argument("--sharded", action="store_true",
                                 help="use a sharded (multi-writer) store; "
                                      "required by --executor pull-worker")
    campaign_parser.add_argument("--on-error", choices=("fail", "continue"),
                                 default="fail",
                                 help="stop on the first failed cell (fail, "
                                      "default) or record an error envelope "
                                      "and keep going (continue)")
    campaign_parser.add_argument("--ttl", type=float, default=30.0, metavar="S",
                                 help="pull-worker lease expiry window "
                                      "(default: 30s)")
    campaign_parser.add_argument("--poll", type=float, default=0.5, metavar="S",
                                 help="pull-worker idle poll interval "
                                      "(default: 0.5s)")
    campaign_parser.add_argument("--max-attempts", type=int, default=3,
                                 metavar="N",
                                 help="retry budget per cell for retryable "
                                      "failures (pull-worker; default: 3)")
    campaign_parser.add_argument("--backoff", type=float, default=0.5,
                                 metavar="S",
                                 help="exponential-backoff base between "
                                      "retries (pull-worker; default: 0.5s)")
    campaign_parser.add_argument("--max-backoff", type=float, default=60.0,
                                 metavar="S",
                                 help="cap on any single retry delay "
                                      "(pull-worker; default: 60s)")
    campaign_parser.add_argument("--cell-timeout", type=float, default=0.0,
                                 metavar="S",
                                 help="per-cell deadline: a cell still running "
                                      "after S seconds is killed and audited "
                                      "as E_TIMEOUT (0 = no deadline, the "
                                      "default)")
    campaign_parser.add_argument("--circuit-threshold", type=float, default=0.0,
                                 metavar="F",
                                 help="open the campaign circuit breaker when "
                                      "the failure rate over the last "
                                      "--circuit-window cells reaches F in "
                                      "(0, 1]; exits with code 4 "
                                      "(0 = disabled, the default)")
    campaign_parser.add_argument("--circuit-window", type=int, default=8,
                                 metavar="N",
                                 help="sliding window of recent cell results "
                                      "the failure rate is computed over "
                                      "(default: 8)")
    campaign_parser.add_argument("--circuit-cooldown", type=float, default=5.0,
                                 metavar="S",
                                 help="seconds an open circuit waits before "
                                      "half-opening to probe (default: 5s)")
    campaign_parser.add_argument("--circuit-probes", type=int, default=1,
                                 metavar="N",
                                 help="probe cells allowed through a "
                                      "half-open circuit (default: 1)")
    campaign_parser.add_argument("--retry-dead", action="store_true",
                                 help="re-admit every dead-lettered cell in "
                                      "--store with a fresh retry budget "
                                      "before (or without) running the grid")
    campaign_parser.add_argument("--checkpoint-every", type=int, default=0,
                                 metavar="N",
                                 help="crash-safe mid-search checkpointing "
                                      "every N evaluations (pull-worker; "
                                      "0 = off, the default): a reclaimed "
                                      "cell resumes instead of restarting")
    campaign_parser.add_argument("--no-resume", action="store_true",
                                 help="fail on already-stored cells instead of "
                                      "skipping them")
    campaign_parser.add_argument("--quiet", action="store_true",
                                 help="suppress per-cell progress lines")
    _add_budget_arguments(campaign_parser)

    worker_parser = commands.add_parser(
        "worker",
        help="pull and execute campaign cells from a shared store directory",
        description="Join a distributed campaign: claim unresolved cells from "
                    "the manifest published in --store via crash-safe lease "
                    "files, execute them, and append outcomes to the sharded "
                    "store. Start any number of workers (on any machine "
                    "sharing the filesystem); each exits once every cell is "
                    "stored or permanently failed.",
    )
    worker_parser.add_argument("--store", required=True, metavar="DIR",
                               help="shared store directory holding "
                                    "manifest.json")
    worker_parser.add_argument("--worker-id", default=None, metavar="ID",
                               help="identity recorded in leases and audit "
                                    "logs (default: <host>-<pid>)")
    worker_parser.add_argument("--max-cycles", type=int, default=None,
                               metavar="N",
                               help="exit after N poll cycles even if cells "
                                    "remain (default: run to completion)")

    store_parser = commands.add_parser(
        "store",
        help="run-store maintenance: compact, export metrics, merge",
        description="Operate on run stores (single-file or sharded; the "
                    "format is auto-detected).",
    )
    store_commands = store_parser.add_subparsers(dest="store_command",
                                                 metavar="operation")
    compact_parser = store_commands.add_parser(
        "compact",
        help="rewrite shards dropping torn tails and superseded records",
        description="Rewrite every shard of a sharded store keeping only the "
                    "latest intact record per fingerprint. Run only while no "
                    "workers are active.",
    )
    compact_parser.add_argument("--store", required=True, metavar="DIR")
    export_parser = store_commands.add_parser(
        "export",
        help="columnar per-candidate metrics (JSON)",
        description="Export per-candidate latency/energy/accuracy arrays "
                    "grouped by scenario x space x strategy x seed.",
    )
    export_parser.add_argument("--store", required=True, metavar="DIR")
    export_parser.add_argument("--out", metavar="FILE",
                               help="write the export to FILE instead of "
                                    "stdout")
    fsck_parser = store_commands.add_parser(
        "fsck",
        help="verify per-record checksums; --repair quarantines bad lines",
        description="Scan every line of a store's run files, verifying the "
                    "per-record CRC32 each append embeds. Without --repair, "
                    "report what was found and exit 1 if anything is damaged. "
                    "With --repair, move damaged lines to a quarantine "
                    "sidecar, rewrite the files keeping intact records "
                    "byte-identical, and rebuild the index. Run only while "
                    "no workers are active.",
    )
    fsck_parser.add_argument("--store", required=True, metavar="DIR")
    fsck_parser.add_argument("--repair", action="store_true",
                             help="quarantine damaged lines and rewrite the "
                                  "store (default: verify only)")
    merge_parser = store_commands.add_parser(
        "merge",
        help="copy missing records between stores by fingerprint",
        description="Merge one or more source stores into a destination; "
                    "records whose fingerprint the destination already holds "
                    "are skipped, so merging is idempotent.",
    )
    merge_parser.add_argument("sources", nargs="+", metavar="SRC",
                              help="source store directories")
    merge_parser.add_argument("--into", required=True, metavar="DIR",
                              help="destination store directory")
    merge_parser.add_argument("--sharded", action="store_true",
                              help="create the destination sharded when it "
                                   "does not exist yet")

    run_cell_parser = commands.add_parser(
        "run-cell",
        help=argparse.SUPPRESS,
        description="Internal: read one SearchRequest JSON from stdin, run "
                    "it, write the outcome JSON to stdout (or an error "
                    "envelope to stderr, exit 3). Used by the asyncio "
                    "executor.",
    )
    del run_cell_parser  # no arguments; declared for the help machinery

    report_parser = commands.add_parser(
        "report",
        help="aggregate a run store into winners and Pareto summaries",
        description="Summarise every run stored under --store: one row per "
                    "scenario x strategy cell, plus the strategy owning the "
                    "largest share of each scenario's combined Pareto front.",
    )
    report_parser.add_argument("--store", required=True, metavar="DIR",
                               help="run-store directory to aggregate")
    report_parser.add_argument("--metrics", default="error_percent,energy_j",
                               help="comma-separated metric pair "
                                    "(default: error_percent,energy_j)")
    report_parser.add_argument("--format", choices=("table", "markdown", "json"),
                               default="table", help="output format (default: table)")
    report_parser.add_argument("--out", metavar="FILE",
                               help="also write the report to FILE")

    serve_parser = commands.add_parser(
        "serve",
        help="replay a stored Pareto winner against a synthetic client fleet",
        description="Pick the stored runs' Pareto-optimal model for --metric, "
                    "rebuild its runtime threshold analysis, and replay a "
                    "synthetic multi-region fleet against it through the "
                    "vectorized serving layer, printing decisions/sec, switch "
                    "counts, decision-latency percentiles and SLA violations.",
    )
    serve_parser.add_argument("--store", required=True, metavar="DIR",
                              help="run store holding the campaign outcomes")
    serve_parser.add_argument("--scenario", default=None,
                              help="serve this scenario's runs (default: the "
                                   "store's only scenario)")
    serve_parser.add_argument("--search-space", default=None,
                              help="restrict to one search space (default: the "
                                   "matching runs' only space)")
    serve_parser.add_argument("--metric", choices=("energy", "latency"),
                              default="energy",
                              help="runtime metric optimised by the controller "
                                   "(default: energy)")
    serve_parser.add_argument("--clients", type=int, default=1000, metavar="N",
                              help="fleet size (default: 1000)")
    serve_parser.add_argument("--ticks", type=int, default=60, metavar="T",
                              help="replay length in ticks (default: 60)")
    serve_parser.add_argument("--sla-ms", type=float, default=None, metavar="X",
                              help="end-to-end latency SLA in milliseconds "
                                   "(default: no SLA accounting)")
    serve_parser.add_argument("--smoothing", type=float, default=1.0,
                              metavar="S",
                              help="EWMA smoothing coefficient in (0, 1] "
                                   "(default: 1.0 = last measurement wins)")
    serve_parser.add_argument("--regions", default=None, metavar="A,B,...",
                              help="comma-separated region names assigned "
                                   "round-robin (default: the paper's Table-I "
                                   "regions)")
    serve_parser.add_argument("--stall-probability", type=float, default=0.0,
                              metavar="P",
                              help="probability a client skips reporting on a "
                                   "tick (default: 0)")
    serve_parser.add_argument("--method", choices=DECISION_METHODS,
                              default="auto",
                              help="fleet decision method (default: auto)")
    serve_parser.add_argument("--seed", type=int, default=0,
                              help="workload synthesis seed (default: 0)")
    serve_parser.add_argument("--format", choices=("table", "markdown", "json"),
                              default="table",
                              help="output format (default: table)")
    serve_parser.add_argument("--out", metavar="FILE",
                              help="also write the report as JSON to FILE")
    return parser


# ---------------------------------------------------------------------- commands

def _cmd_list(args: argparse.Namespace) -> int:
    print(f"scenarios ({len(SCENARIOS)}):")
    for scenario in SCENARIOS.scenarios():
        print(f"  {scenario.name:<42} {scenario.wireless_technology:<5} "
              f"{scenario.uplink_mbps:6.2f} Mbps  {scenario.device_name}")
    print(f"strategies: {', '.join(STRATEGIES.names())}")
    print(f"search spaces: {', '.join(SEARCH_SPACES.names())}")
    print(f"campaign executors: {', '.join(EXECUTORS.names())}")
    print(f"devices: {', '.join(DEVICES.names())}")
    print(f"wireless technologies: {', '.join(WIRELESS_TECHNOLOGIES.names())}")
    print(f"acquisitions: {', '.join(ACQUISITIONS.names())}")
    if args.store:
        store = open_store(args.store)
        overview = store.summary()
        extra = (f" in {overview['num_shards']} shards"
                 if overview.get("num_shards") is not None else "")
        print(f"\nstore {overview['directory']}: {overview['num_runs']} runs"
              f"{extra}, {overview['total_wall_time_s']:.1f}s total search time")
        rows = [
            [fp, r["scenario"], r["search_space"], r["strategy"],
             "-" if r["seed"] is None else r["seed"], r["num_candidates"]]
            for fp, r in sorted(store.records().items())
        ]
        if rows:
            print(format_table(
                rows,
                ["fingerprint", "scenario", "space", "strategy", "seed",
                 "candidates"],
            ))
    return 0


def _request_from_args(args: argparse.Namespace) -> SearchRequest:
    """Build the request: ``--request`` file fields, overridden by given flags."""
    overrides: Dict[str, Any] = {}
    for flag, field in (
        ("scenario", "scenario"),
        ("strategy", "strategy"),
        ("search_space", "search_space"),
        ("seed", "seed"),
        ("num_initial", "num_initial"),
        ("num_iterations", "num_iterations"),
        ("pool_size", "candidate_pool_size"),
        ("acquisition", "acquisition"),
        ("batch_size", "batch_size"),
        ("predictor_samples", "predictor_samples_per_type"),
    ):
        value = getattr(args, flag)
        if value is not None:
            overrides[field] = value
    if args.tag:
        overrides["tags"] = _parse_tags(args.tag)
    if args.request:
        request = load_request(args.request)
        return request.replace(**overrides) if overrides else request
    # absent flags fall back to the SearchRequest dataclass defaults
    return SearchRequest(**overrides)


def _cmd_run(args: argparse.Namespace) -> int:
    request = _request_from_args(args)
    outcome = run_search(
        request,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=not args.fresh,
    )
    front = outcome.pareto_candidates()
    print(f"scenario:    {outcome.scenario.name}")
    print(f"strategy:    {outcome.label}")
    print(f"space:       {request.search_space}")
    print(f"fingerprint: {request.fingerprint()}")
    print(f"candidates:  {len(outcome)} explored, {len(front)} Pareto-optimal "
          f"(error, energy)")
    print(f"wall time:   {outcome.wall_time_s:.2f}s")
    degradations = {
        code: count for code, count in outcome.health.items()
        if code not in ("H_CHECKPOINT_SAVED", "H_RESUMED")
    }
    if degradations:
        events = ", ".join(f"{c}={n}" for c, n in sorted(degradations.items()))
        print(f"health:      degraded [{events}] — see docs/robustness.md")
    elif outcome.health.get("H_RESUMED"):
        print("health:      resumed from checkpoint")
    rows = []
    for label, metric in (("lowest error", "error_percent"),
                          ("lowest energy", "energy_j"),
                          ("lowest latency", "latency_s")):
        best = outcome.best_by(metric)
        rows.append([label, best.architecture_name, round(best.error_percent, 2),
                     round(best.energy_mj, 1), round(best.latency_ms, 1),
                     best.best_energy_option.label])
    print(format_table(
        rows, ["selection", "model", "error %", "energy mJ", "latency ms", "deployment"]
    ))
    if args.out:
        path = dump_json(outcome.to_dict(), args.out)
        print(f"outcome written to {path}")
    if args.store:
        store = RunStore(args.store)
        fingerprint = request.fingerprint()
        if fingerprint in store:
            print(f"store {store.directory}: fingerprint already present, not appended")
        else:
            store.append(outcome, fingerprint=fingerprint)
            print(f"outcome stored in {store.directory} as {fingerprint}")
    return 0


def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    if args.spec:
        return CampaignSpec.load(args.spec)
    if not args.scenario:
        raise argparse.ArgumentTypeError(
            "campaign needs --spec FILE or at least one --scenario"
        )
    # one --acquisition sets the shared budget; several declare an ablation axis
    acquisitions = tuple(args.acquisition or ())
    return CampaignSpec(
        scenarios=tuple(args.scenario),
        search_spaces=tuple(args.search_space or (DEFAULT_SEARCH_SPACE,)),
        strategies=tuple(args.strategy or ("lens",)),
        seeds=tuple(args.seed if args.seed is not None else (0,)),
        acquisitions=acquisitions if len(acquisitions) > 1 else (),
        num_initial=args.num_initial,
        num_iterations=args.num_iterations,
        candidate_pool_size=args.pool_size,
        acquisition=acquisitions[0] if len(acquisitions) == 1 else "ts",
        batch_size=args.batch_size,
        predictor_samples_per_type=args.predictor_samples,
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.retry_dead:
        readmitted = DeadLetterQueue(args.store).readmit_all()
        print(f"retry-dead: {len(readmitted)} dead-lettered cell(s) "
              f"re-admitted with a fresh retry budget")
        if not args.spec and not args.scenario:
            return 0  # re-admit only; a later campaign/worker picks them up
    spec = _spec_from_args(args)
    if args.executor == "pull-worker" and not args.sharded:
        args.sharded = True  # pull workers need the multi-writer format
    store = open_store(args.store, sharded=True if args.sharded else None)
    stored = store.records()  # one snapshot for labelling every skipped cell

    def progress(done: int, total: int, fingerprint: str, outcome) -> None:
        if args.quiet:
            return
        if outcome is None:
            record = stored.get(fingerprint, {})
            what = (f"{record.get('scenario', '?')} x {record.get('strategy', '?')} "
                    "(already stored)")
        else:
            what = (f"{outcome.scenario.name} x {outcome.request.search_space} "
                    f"x {outcome.label} seed={outcome.request.seed} "
                    f"({outcome.wall_time_s:.2f}s)")
        print(f"[{done}/{total}] {fingerprint}  {what}")

    policy = CampaignPolicy(
        ttl_s=args.ttl,
        poll_s=args.poll,
        max_attempts=args.max_attempts,
        backoff_base_s=args.backoff,
        max_backoff_s=args.max_backoff,
        cell_timeout_s=args.cell_timeout,
        on_error=args.on_error,
        checkpoint_every=args.checkpoint_every,
        circuit_window=args.circuit_window,
        circuit_threshold=args.circuit_threshold,
        circuit_cooldown_s=args.circuit_cooldown,
        circuit_probes=args.circuit_probes,
    )
    result = run_campaign(
        spec, store,
        workers=args.workers,
        resume=not args.no_resume,
        executor=args.executor,
        policy=policy,
        on_error=args.on_error,
        progress=progress,
    )
    summary = result.summary()
    print(f"campaign done: {summary['executed']} executed, "
          f"{summary['skipped']} skipped, {summary['total_cells']} cells, "
          f"workers={summary['workers']}, {summary['wall_time_s']:.2f}s")
    if summary["failed"]:
        print(f"failed cells: {summary['failed']} "
              f"({', '.join(summary['failed_cells'][:5])}) — "
              f"see the store's audit log; 'repro campaign' again retries them")
    if summary.get("timeout_kills"):
        print(f"deadlines: {summary['timeout_kills']} cell(s) killed at the "
              f"{policy.cell_timeout_s:g}s deadline (E_TIMEOUT)")
    if summary.get("dead_lettered"):
        print(f"dead-letter: {summary['dead_lettered']} poison cell(s) "
              f"buried — 'repro campaign --store {args.store} --retry-dead' "
              f"re-admits them")
    if summary.get("circuit_state") not in (None, "disabled", "closed"):
        print(f"circuit breaker: {summary['circuit_state']} "
              f"({len(summary.get('circuit_transitions', []))} transition(s))")
    print(f"store: {store.directory} ({len(store)} runs total)")
    return 1 if summary["failed"] else 0


def _cmd_report(args: argparse.Namespace) -> int:
    metrics = tuple(m.strip() for m in args.metrics.split(",") if m.strip())
    store = open_store(args.store)
    if len(store) == 0:
        print(f"store {store.directory} holds no runs", file=sys.stderr)
        return 1
    summary = summarize_campaign(store.outcomes(), metrics=metrics)
    # stream the audit log: one envelope in memory at a time, however many
    # retries a long campaign accumulated
    audit = summarize_audit(store.iter_audit_records())

    if args.format == "json":
        payload = summary.to_dict()
        if audit["num_records"]:
            payload = dict(payload, audit=audit)
        text = json.dumps(payload, indent=2, sort_keys=True)
    elif args.format == "markdown":
        report = ExperimentReport(title=f"Campaign report — {store.directory}")
        report.add_campaign_summary(summary)
        if summary.health:
            report.add_health_summary(summary.health)
        if audit["num_records"]:
            report.add_audit_summary(audit)
        text = report.render_markdown()
    else:
        # wall time is excluded so identical stores render identical reports
        cell_headers, cell_rows = summary.cell_table(include_wall_time=False)
        winner_headers, winner_rows = summary.winner_table()
        text = (
            f"{summary.num_runs} runs, metrics: {' / '.join(metrics)}\n"
            + format_table(cell_rows, cell_headers)
            + "\n\nwinners (largest combined-frontier share):\n"
            + format_table(winner_rows, winner_headers)
        )
        hv_headers, hv_rows = summary.hypervolume_table()
        if hv_rows:  # only runs stored with front telemetry (schema v3+)
            text += (
                "\n\nfinal hypervolume (per-run reference boxes):\n"
                + format_table(hv_rows, hv_headers)
            )
        if summary.health:
            health_headers, health_rows = summary.health_table()
            text += (
                "\n\nresilience health (H_* codes, docs/robustness.md):\n"
                + format_table(health_rows, health_headers)
            )
        if audit["num_records"]:
            codes = ", ".join(
                f"{code}={count}" for code, count in audit["by_code"].items()
            )
            text += (
                f"\n\naudit: {audit['num_records']} failure record(s) "
                f"[{codes}], {len(audit['failed_cells'])} cell(s) "
                f"permanently failed, {audit['retries']} retries"
            )
            if audit.get("dead_lettered"):
                text += (
                    f"\ndead-letter: {len(audit['dead_lettered'])} poison cell(s) "
                    f"buried (repro campaign --retry-dead re-admits them)"
                )
    print(text)
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n", encoding="utf-8")
        print(f"report written to {path}", file=sys.stderr)
    return 0


def _select_served_model(args: argparse.Namespace, outcomes):
    """Pick the Pareto winner to serve; raises/None-returns map to exit codes."""
    if args.scenario is not None and args.scenario not in {
        o.scenario.name for o in outcomes
    }:
        SCENARIOS.get(args.scenario)  # unknown name -> RegistryError (exit 2)
    if args.search_space is not None:
        SEARCH_SPACES.get(args.search_space)  # unknown -> RegistryError
    selected = [
        o for o in outcomes
        if (args.scenario is None or o.scenario.name == args.scenario)
        and (args.search_space is None
             or o.request.search_space == args.search_space)
    ]
    if not selected:
        return None
    scenarios = {o.scenario.name for o in selected}
    if len(scenarios) > 1:
        raise ValueError(
            f"store holds runs for scenarios {sorted(scenarios)}; "
            "pick one with --scenario"
        )
    spaces = {o.request.search_space for o in selected}
    if len(spaces) > 1:
        raise ValueError(
            f"matching runs span search spaces {sorted(spaces)}; "
            "pick one with --search-space"
        )
    metric_key = "energy_j" if args.metric == "energy" else "latency_s"
    pool = [c for o in selected for c in o.candidates]
    front = SearchResult(pool, label="serving-pool").pareto_candidates(
        ("error_percent", metric_key)
    )
    if not front:
        return None
    model = min(front, key=lambda c: c.metric(metric_key))
    return selected[0], next(iter(spaces)), model


def _cmd_serve(args: argparse.Namespace) -> int:
    store = open_store(args.store)
    selection = _select_served_model(args, list(store.outcomes()))
    if selection is None:
        print(f"repro serve: store {store.directory} yields no Pareto "
              f"candidates for the requested scenario/space", file=sys.stderr)
        return 1
    reference, space_name, model = selection
    scenario = reference.scenario
    request = reference.request
    architecture = SEARCH_SPACES.create(space_name).decode_for_performance(
        model.genotype
    )
    channel = scenario.build_channel()
    predictor = default_engine().predictor_for(
        scenario.resolve_device(),
        noise_std=request.predictor_noise_std,
        samples_per_type=request.predictor_samples_per_type,
        seed=request.seed,
    )
    options = select_runtime_options(
        architecture, predictor, channel, args.metric,
        include_all_cloud=True, include_all_edge=True,
    )
    analysis = ThresholdAnalysis(
        options=options,
        power_model=channel.power_model,
        round_trip_s=channel.round_trip_s,
        metric=args.metric,
    )
    regions = (
        [name.strip() for name in args.regions.split(",") if name.strip()]
        if args.regions else None
    )
    workload = FleetWorkload.synthesize(
        args.clients, args.ticks,
        regions=regions,
        stall_probability=args.stall_probability,
        seed=args.seed,
        name=f"{scenario.name} fleet",
    )
    report = ServingSession(
        analysis, workload,
        smoothing=args.smoothing,
        latency_sla_s=None if args.sla_ms is None else args.sla_ms / 1e3,
        method=args.method,
    ).run()

    context = {
        "scenario": scenario.name,
        "search_space": space_name,
        "model": model.architecture_name,
        "model_error_percent": model.error_percent,
        "deployment_options": list(report.option_labels),
        "switching_thresholds_mbps": {
            f"{a} vs {b}": threshold
            for (a, b), threshold in analysis.thresholds().items()
        },
    }
    payload = dict(report.to_dict(), **context)
    if args.format == "json":
        text = json.dumps(to_jsonable(payload), indent=2, sort_keys=True)
    elif args.format == "markdown":
        markdown = ExperimentReport(
            title=f"Serving report — {scenario.name}"
        )
        markdown.add_serving_report(report)
        text = markdown.render_markdown()
    else:
        headers, rows = report.summary_rows()
        region_headers, region_rows = report.region_rows()
        text = (
            f"serving {model.architecture_name} "
            f"(error {model.error_percent:.2f}%) from {scenario.name}\n"
            f"deployment options: {', '.join(report.option_labels)}\n"
            + format_table(rows, headers)
            + "\n\nper region:\n"
            + format_table(region_rows, region_headers)
        )
    print(text)
    if args.out:
        path = dump_json(to_jsonable(payload), args.out)
        print(f"serving report written to {path}", file=sys.stderr)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    report = run_worker(
        args.store,
        worker_id=args.worker_id,
        max_cycles=args.max_cycles,
        progress=lambda worker, event, fp: print(
            f"[{worker}] {event} {fp}".rstrip(), file=sys.stderr
        ),
    )
    summary = report.summary()
    print(f"worker {summary['worker']} done: {summary['executed']} executed, "
          f"{summary['skipped']} skipped, {summary['failed']} failed, "
          f"{summary['reclaimed']} leases reclaimed, "
          f"{summary['wall_time_s']:.2f}s")
    if summary.get("timeout_kills"):
        print(f"deadlines: {summary['timeout_kills']} cell(s) killed at the "
              f"deadline (E_TIMEOUT)")
    if summary.get("dead_lettered"):
        print(f"dead-letter: {summary['dead_lettered']} poison cell(s) buried "
              f"(repro campaign --retry-dead re-admits them)")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    if args.store_command is None:
        print("repro store: choose an operation: compact, export, merge "
              "or fsck",
              file=sys.stderr)
        return 2
    if args.store_command == "fsck":
        report = fsck_store(args.store, repair=args.repair)
        damaged = (report["crc_mismatch"] + report["corrupt"]
                   + report["torn_bytes"])
        print(f"fsck {report['directory']}: {report['intact']} intact, "
              f"{report['legacy']} legacy (pre-checksum), "
              f"{report['crc_mismatch']} checksum mismatch(es), "
              f"{report['corrupt']} corrupt line(s), "
              f"{report['torn_bytes']} torn byte(s)")
        if report["repaired"]:
            print(f"repaired: {report['quarantined_lines']} damaged line(s) "
                  f"quarantined under {report['quarantine_dir']}, files "
                  f"rewritten, index rebuilt")
            return 0
        if not report["clean"]:
            print("store is damaged; re-run with --repair to quarantine the "
                  "bad lines and rebuild the index", file=sys.stderr)
            return 1
        return 0
    if args.store_command == "compact":
        store = open_store(args.store)
        if not isinstance(store, ShardedRunStore):
            print(f"repro store compact: {store.directory} is a single-file "
                  f"store; compaction applies to sharded stores",
                  file=sys.stderr)
            return 2
        stats = store.compact()
        print(f"compacted {stats['shards']} shard(s): {stats['kept']} records "
              f"kept, {stats['dropped_superseded']} superseded and "
              f"{stats['dropped_corrupt_lines']} corrupt line(s) dropped, "
              f"{stats['dropped_torn_bytes']} torn byte(s) trimmed")
        return 0
    if args.store_command == "export":
        store = open_store(args.store)
        payload = export_metrics(store)
        if args.out:
            path = dump_json(payload, args.out)
            print(f"exported {payload['num_candidates']} candidate(s) in "
                  f"{payload['num_groups']} group(s) to {path}")
        else:
            print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    # merge
    dest = open_store(args.into, sharded=True if args.sharded else None)
    sources = [open_store(source) for source in args.sources]
    stats = merge_stores(sources, dest)
    print(f"merged {stats['merged']} record(s) into {dest.directory} "
          f"({stats['skipped']} already present)")
    return 0


def _cmd_run_cell(args: argparse.Namespace) -> int:
    """Internal executor plumbing: one cell over stdin/stdout pipes."""
    try:
        request = SearchRequest.from_dict(json.loads(sys.stdin.read()))
        outcome = run_search(request)
    except Exception as error:  # noqa: BLE001 - enveloped for the parent
        envelope = ErrorEnvelope.from_exception(error)
        print(json.dumps(envelope.to_dict()), file=sys.stderr)
        return 3
    print(json.dumps(to_jsonable(outcome.to_dict())))
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "campaign": _cmd_campaign,
    "worker": _cmd_worker,
    "store": _cmd_store,
    "run-cell": _cmd_run_cell,
    "report": _cmd_report,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    try:
        return _COMMANDS[args.command](args)
    except (RegistryError, StoreError, argparse.ArgumentTypeError, ValueError) as error:
        print(f"repro {args.command}: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"repro {args.command}: {error}", file=sys.stderr)
        return 2
    except CircuitOpenError as error:
        # checked before RuntimeError (its base class): the campaign circuit
        # breaker tripped — stored cells are safe, the grid is resumable once
        # the underlying fault is fixed
        print(f"repro {args.command}: {error}", file=sys.stderr)
        return 4
    except RuntimeError as error:
        # a campaign stopped by on_error="fail" — finished cells are stored
        print(f"repro {args.command}: {error}", file=sys.stderr)
        return 3
    except BrokenPipeError:
        # downstream consumer (head, a pager) closed the pipe — not an error
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
