"""Counting architectures that satisfy accuracy/efficiency criteria (Fig. 7).

The paper's second experiment compares *partitioning within the optimization*
against *partitioning after the optimization* by counting how many explored
architectures satisfy criteria such as ``Err < 25``, ``Ergy < 250 mJ`` or
their conjunctions, under each strategy.  The helpers here express those
criteria declaratively and evaluate them over search results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.results import SearchResult

#: The criteria used by the paper's Fig. 7, expressed in this library's units
#: (error in percent, energy in millijoules).
PAPER_CRITERIA = (
    {"label": "Err < 25", "max_error_percent": 25.0},
    {"label": "Err < 20", "max_error_percent": 20.0},
    {"label": "Ergy < 250", "max_energy_mj": 250.0},
    {"label": "Ergy < 200", "max_energy_mj": 200.0},
    {"label": "Err < 25 & Ergy < 250", "max_error_percent": 25.0, "max_energy_mj": 250.0},
)


@dataclass(frozen=True)
class Criterion:
    """A conjunction of upper bounds on error, energy and latency."""

    label: str
    max_error_percent: Optional[float] = None
    max_energy_mj: Optional[float] = None
    max_latency_ms: Optional[float] = None

    def count(self, result: SearchResult) -> int:
        """Number of explored candidates in ``result`` satisfying the criterion."""
        return result.count_satisfying(
            max_error_percent=self.max_error_percent,
            max_energy_mj=self.max_energy_mj,
            max_latency_ms=self.max_latency_ms,
        )

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "max_error_percent": self.max_error_percent,
            "max_energy_mj": self.max_energy_mj,
            "max_latency_ms": self.max_latency_ms,
        }


def paper_criteria() -> List[Criterion]:
    """The five criteria of the paper's Fig. 7."""
    return [Criterion(**spec) for spec in PAPER_CRITERIA]


@dataclass(frozen=True)
class CriterionComparison:
    """Counts under two strategies for one criterion, plus the relative change."""

    criterion: Criterion
    count_a: int
    count_b: int
    a_label: str
    b_label: str

    @property
    def percent_change(self) -> float:
        """Relative change of strategy A's count over strategy B's, in percent."""
        if self.count_b == 0:
            return 0.0 if self.count_a == 0 else float("inf")
        return (self.count_a - self.count_b) / self.count_b * 100.0

    def to_dict(self) -> Dict:
        return {
            "criterion": self.criterion.to_dict(),
            "count_a": self.count_a,
            "count_b": self.count_b,
            "a_label": self.a_label,
            "b_label": self.b_label,
            "percent_change": self.percent_change,
        }


def compare_criteria(
    result_a: SearchResult,
    result_b: SearchResult,
    criteria: Optional[Sequence[Criterion]] = None,
) -> List[CriterionComparison]:
    """Count satisfying architectures under two strategies for every criterion.

    ``result_a`` is typically the partition-within run (LENS) and
    ``result_b`` the partition-after run (Traditional with its explored
    candidates re-costed post hoc).
    """
    criteria = list(criteria) if criteria is not None else paper_criteria()
    comparisons: List[CriterionComparison] = []
    for criterion in criteria:
        comparisons.append(
            CriterionComparison(
                criterion=criterion,
                count_a=criterion.count(result_a),
                count_b=criterion.count(result_b),
                a_label=result_a.label,
                b_label=result_b.label,
            )
        )
    return comparisons
