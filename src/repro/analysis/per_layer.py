"""Per-layer breakdowns of feature-map sizes and latency shares (paper Fig. 1).

The motivational example plots, for every layer of AlexNet, the size of its
output feature map and the percentage of the total execution latency it is
responsible for.  :func:`per_layer_report` produces the same rows for any
architecture and predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hardware.predictors import BaseLayerPredictor
from repro.nn.architecture import Architecture
from repro.utils.units import bytes_to_kilobytes


@dataclass(frozen=True)
class LayerReportRow:
    """One row of the per-layer analysis."""

    index: int
    name: str
    layer_type: str
    output_kilobytes: float
    latency_s: float
    latency_share_percent: float
    smaller_than_input: bool

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "name": self.name,
            "layer_type": self.layer_type,
            "output_kilobytes": self.output_kilobytes,
            "latency_s": self.latency_s,
            "latency_share_percent": self.latency_share_percent,
            "smaller_than_input": self.smaller_than_input,
        }


def per_layer_report(
    architecture: Architecture, predictor: BaseLayerPredictor
) -> List[LayerReportRow]:
    """Per-layer output sizes and latency shares for an architecture.

    The ``smaller_than_input`` flag marks the layers the paper identifies as
    viable partition points (their output is smaller than the raw input, so
    transmitting it can beat uploading the input).
    """
    summaries = architecture.summarize()
    predictions = predictor.predict_architecture(architecture)
    total_latency = sum(p.latency_s for p in predictions)
    input_bytes = architecture.input_bytes
    rows: List[LayerReportRow] = []
    for summary, prediction in zip(summaries, predictions):
        share = (
            prediction.latency_s / total_latency * 100.0 if total_latency > 0 else 0.0
        )
        rows.append(
            LayerReportRow(
                index=summary.index,
                name=summary.name,
                layer_type=summary.layer_type,
                output_kilobytes=bytes_to_kilobytes(summary.output_bytes),
                latency_s=prediction.latency_s,
                latency_share_percent=share,
                smaller_than_input=summary.output_bytes < input_bytes,
            )
        )
    return rows


def latency_share_by_type(
    architecture: Architecture, predictor: BaseLayerPredictor
) -> Dict[str, float]:
    """Fraction of total latency attributable to each layer family.

    Used to verify the Fig. 1 takeaway that the fully-connected layers account
    for roughly half of AlexNet's execution time on the edge GPU.
    """
    rows = per_layer_report(architecture, predictor)
    shares: Dict[str, float] = {}
    for row in rows:
        shares[row.layer_type] = shares.get(row.layer_type, 0.0) + row.latency_share_percent
    return shares
