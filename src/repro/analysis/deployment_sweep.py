"""Deployment-preference sweeps over wireless conditions (Fig. 2, Table I).

The motivational example evaluates AlexNet's deployment options — All-Edge,
splitting at Pool5 or FC6, and All-Cloud — across upload throughputs and two
device/radio configurations (GPU with WiFi, CPU with LTE), for both latency
and energy.  The helpers here run the same sweeps for any architecture and
summarise which option wins where, including per-region summaries driven by
the Table I throughput catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.engine import EvaluationEngine, default_engine
from repro.hardware.predictors import BaseLayerPredictor
from repro.nn.architecture import Architecture
from repro.partition.partitioner import PartitionAnalyzer, PartitionEvaluation
from repro.wireless.channel import WirelessChannel
from repro.wireless.regions import Region


@dataclass(frozen=True)
class DeploymentConfiguration:
    """One device/radio pairing of the motivational example (e.g. GPU/WiFi)."""

    label: str
    predictor: BaseLayerPredictor
    technology: str
    round_trip_s: float = 0.01


@dataclass(frozen=True)
class SweepRow:
    """Best deployment option for one (configuration, throughput, metric) cell."""

    configuration: str
    uplink_mbps: float
    metric: str
    best_option: str
    best_value: float
    all_edge_value: float
    all_cloud_value: float

    def to_dict(self) -> Dict:
        return {
            "configuration": self.configuration,
            "uplink_mbps": self.uplink_mbps,
            "metric": self.metric,
            "best_option": self.best_option,
            "best_value": self.best_value,
            "all_edge_value": self.all_edge_value,
            "all_cloud_value": self.all_cloud_value,
        }


def evaluate_under(
    architecture: Architecture,
    configuration: DeploymentConfiguration,
    uplink_mbps: float,
    engine: Optional[EvaluationEngine] = None,
) -> PartitionEvaluation:
    """Evaluate every deployment option under one throughput value.

    Goes through an :class:`EvaluationEngine` (the shared process-wide one by
    default), so the architecture's per-layer predictions are computed once
    per predictor no matter how many throughput values are evaluated.
    """
    channel = WirelessChannel.create(
        technology=configuration.technology,
        uplink_mbps=uplink_mbps,
        round_trip_s=configuration.round_trip_s,
    )
    analyzer = PartitionAnalyzer(configuration.predictor, channel)
    engine = engine or default_engine()
    return engine.evaluate_partitions(architecture, analyzer)


def sweep_deployments(
    architecture: Architecture,
    configurations: Sequence[DeploymentConfiguration],
    uplink_values_mbps: Sequence[float],
    metrics: Sequence[str] = ("latency", "energy"),
    engine: Optional[EvaluationEngine] = None,
) -> List[SweepRow]:
    """Best deployment per configuration, throughput and metric (Fig. 2).

    Returns one row per (configuration, throughput, metric) combination with
    the winning option's label and value, plus the All-Edge / All-Cloud
    values for reference.  The sweep is batched through the evaluation
    engine: each configuration's per-layer predictions are computed once and
    reused across every throughput value.
    """
    engine = engine or default_engine()
    rows: List[SweepRow] = []
    for configuration in configurations:
        channels = [
            WirelessChannel.create(
                technology=configuration.technology,
                uplink_mbps=float(uplink),
                round_trip_s=configuration.round_trip_s,
            )
            for uplink in uplink_values_mbps
        ]
        evaluations = engine.sweep_channels(
            architecture, configuration.predictor, channels
        )
        for uplink, evaluation in zip(uplink_values_mbps, evaluations):
            for metric in metrics:
                best = evaluation.best_for(metric)
                if metric == "latency":
                    best_value = best.latency_s
                    all_edge_value = evaluation.all_edge.latency_s
                    all_cloud_value = evaluation.all_cloud.latency_s
                else:
                    best_value = best.energy_j
                    all_edge_value = evaluation.all_edge.energy_j
                    all_cloud_value = evaluation.all_cloud.energy_j
                rows.append(
                    SweepRow(
                        configuration=configuration.label,
                        uplink_mbps=float(uplink),
                        metric=metric,
                        best_option=best.option.label,
                        best_value=float(best_value),
                        all_edge_value=float(all_edge_value),
                        all_cloud_value=float(all_cloud_value),
                    )
                )
    return rows


@dataclass(frozen=True)
class RegionalPreferenceRow:
    """Preferred deployment for one region under one configuration and metric."""

    region: str
    uplink_mbps: float
    configuration: str
    metric: str
    best_option: str

    def to_dict(self) -> Dict:
        return {
            "region": self.region,
            "uplink_mbps": self.uplink_mbps,
            "configuration": self.configuration,
            "metric": self.metric,
            "best_option": self.best_option,
        }


def regional_preferences(
    architecture: Architecture,
    configurations: Sequence[DeploymentConfiguration],
    regions: Sequence[Region],
    metrics: Sequence[str] = ("latency", "energy"),
    engine: Optional[EvaluationEngine] = None,
) -> List[RegionalPreferenceRow]:
    """Preferred deployment option per region (Table I).

    For every region the architecture is evaluated at the region's average
    experienced upload throughput under each device/radio configuration, and
    the option minimising each metric is reported.  Each configuration's
    whole region set is costed in one batched ``sweep_channels`` call (the
    per-layer predictions are fetched once per configuration).
    """
    engine = engine or default_engine()
    regions = list(regions)
    configurations = list(configurations)
    evaluations: Dict[Tuple[int, int], PartitionEvaluation] = {}
    for ci, configuration in enumerate(configurations):
        channels = [
            WirelessChannel.create(
                technology=configuration.technology,
                uplink_mbps=region.avg_uplink_mbps,
                round_trip_s=configuration.round_trip_s,
            )
            for region in regions
        ]
        for ri, evaluation in enumerate(
            engine.sweep_channels(architecture, configuration.predictor, channels)
        ):
            evaluations[(ri, ci)] = evaluation
    rows: List[RegionalPreferenceRow] = []
    for ri, region in enumerate(regions):
        for ci, configuration in enumerate(configurations):
            evaluation = evaluations[(ri, ci)]
            for metric in metrics:
                best = evaluation.best_for(metric)
                rows.append(
                    RegionalPreferenceRow(
                        region=region.name,
                        uplink_mbps=region.avg_uplink_mbps,
                        configuration=configuration.label,
                        metric=metric,
                        best_option=best.option.label,
                    )
                )
    return rows


def preference_changes(rows: Sequence[RegionalPreferenceRow]) -> int:
    """Number of distinct preferred options across a set of regional rows.

    Table I's takeaway is variability: the same application prefers different
    deployments in different regions.  This helper quantifies it.
    """
    return len({row.best_option for row in rows})
