"""Markdown experiment-report builder.

The benchmark harness writes one table per figure; users replicating the
study on their own device profiles or wireless expectations usually want a
single document that collects the search summary, the frontier comparison,
the criteria counts and the runtime study.  :class:`ExperimentReport` builds
that document from the library's result objects and renders it as Markdown
(the same format as EXPERIMENTS.md), so a custom reproduction can be diffed
against the shipped one.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.analysis.criteria import CriterionComparison
from repro.analysis.pareto_metrics import FrontComparison
from repro.analysis.runtime_eval import RuntimeStudy
from repro.core.results import SearchResult


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a GitHub-style Markdown table."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join(["---"] * len(headers)) + "|",
    ]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        lines.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return "\n".join(lines)


class ExperimentReport:
    """Accumulates experiment sections and renders them as one Markdown document."""

    def __init__(self, title: str = "LENS reproduction report"):
        self.title = str(title)
        self._sections: List[str] = []

    # ------------------------------------------------------------------ sections
    def add_text(self, heading: str, body: str) -> "ExperimentReport":
        """Add a free-form section."""
        self._sections.append(f"## {heading}\n\n{body.strip()}")
        return self

    def add_search_summary(
        self, result: SearchResult, heading: Optional[str] = None
    ) -> "ExperimentReport":
        """Summarise one search run: budget, frontier size, best per metric."""
        heading = heading or f"Search summary — {result.label}"
        front = result.pareto_candidates(("error_percent", "energy_j"))
        rows = []
        for label, metric in (
            ("lowest error", "error_percent"),
            ("lowest energy", "energy_j"),
            ("lowest latency", "latency_s"),
        ):
            best = result.best_by(metric)
            rows.append(
                [
                    label,
                    best.architecture_name,
                    round(best.error_percent, 2),
                    round(best.energy_mj, 1),
                    round(best.latency_ms, 1),
                    best.best_energy_option.label,
                ]
            )
        body = (
            f"Explored **{len(result)}** architectures; "
            f"**{len(front)}** are Pareto-optimal on (error, energy).\n\n"
            + _markdown_table(
                ["selection", "model", "error %", "energy mJ", "latency ms", "deployment"],
                rows,
            )
        )
        return self.add_text(heading, body)

    def add_front_comparison(
        self, comparison: FrontComparison, heading: Optional[str] = None
    ) -> "ExperimentReport":
        """Add a LENS-vs-baseline frontier comparison (Fig. 6 style)."""
        heading = heading or (
            f"Frontier comparison — {comparison.a_label} vs {comparison.b_label}"
        )
        rows = [
            ["metrics", " / ".join(comparison.metrics)],
            [f"{comparison.a_label} front size", comparison.a_front_size],
            [f"{comparison.b_label} front size", comparison.b_front_size],
            [
                f"{comparison.a_label} dominates {comparison.b_label}",
                f"{100 * comparison.a_dominates_b_fraction:.1f}%",
            ],
            [
                f"{comparison.b_label} dominates {comparison.a_label}",
                f"{100 * comparison.b_dominates_a_fraction:.1f}%",
            ],
            [
                f"combined frontier share of {comparison.a_label}",
                f"{100 * comparison.combined_fraction_a:.1f}%",
            ],
            ["hypervolume ratio (a / b)",
             round(comparison.hypervolume_a / comparison.hypervolume_b, 3)
             if comparison.hypervolume_b > 0 else "inf"],
        ]
        return self.add_text(heading, _markdown_table(["statistic", "value"], rows))

    def add_criteria_comparison(
        self,
        comparisons: Sequence[CriterionComparison],
        heading: str = "Architectures satisfying the criteria (Fig. 7 style)",
    ) -> "ExperimentReport":
        """Add partition-within vs partition-after criterion counts."""
        rows = []
        for comparison in comparisons:
            change = comparison.percent_change
            rows.append(
                [
                    comparison.criterion.label,
                    comparison.count_a,
                    comparison.count_b,
                    "inf" if change == float("inf") else f"{change:.1f}%",
                ]
            )
        headers = [
            "criterion",
            comparisons[0].a_label if comparisons else "a",
            comparisons[0].b_label if comparisons else "b",
            "change",
        ]
        return self.add_text(heading, _markdown_table(headers, rows))

    def add_runtime_study(
        self, study: RuntimeStudy, heading: Optional[str] = None
    ) -> "ExperimentReport":
        """Add a trace-replay runtime study (Fig. 8 style)."""
        heading = heading or f"Runtime study — {study.model_label} ({study.metric})"
        unit = "J" if study.metric == "energy" else "s"
        rows = []
        for label, value in sorted(study.comparison.cumulative.items(), key=lambda kv: kv[1]):
            gain = (
                "-" if label == "dynamic"
                else f"{study.comparison.improvement_percent(label):.2f}%"
            )
            rows.append([label, round(value, 4), unit, gain])
        threshold = study.switching_threshold_mbps
        body = _markdown_table(["strategy", "cumulative", "unit", "dynamic gain"], rows)
        body += (
            f"\n\nSwitching threshold: "
            + (f"{threshold:.2f} Mbps" if threshold is not None else "none in range")
            + f"; deployment switches over the trace: {study.comparison.num_switches}."
        )
        return self.add_text(heading, body)

    # ------------------------------------------------------------------ rendering
    @property
    def num_sections(self) -> int:
        """Number of sections added so far."""
        return len(self._sections)

    def render_markdown(self) -> str:
        """Render the full report as a Markdown string."""
        parts = [f"# {self.title}", ""]
        parts.extend(self._sections)
        return "\n\n".join(parts).strip() + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        """Write the rendered report to a file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render_markdown(), encoding="utf-8")
        return path
