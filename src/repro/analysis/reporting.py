"""Markdown experiment-report builder and campaign aggregation.

The benchmark harness writes one table per figure; users replicating the
study on their own device profiles or wireless expectations usually want a
single document that collects the search summary, the frontier comparison,
the criteria counts and the runtime study.  :class:`ExperimentReport` builds
that document from the library's result objects and renders it as Markdown
(the same format as EXPERIMENTS.md), so a custom reproduction can be diffed
against the shipped one.

:func:`summarize_campaign` is the store-backed half: it aggregates the
outcomes of a campaign (typically streamed from a
:class:`~repro.campaign.store.RunStore`) into per
scenario/search-space/strategy cells and per scenario/search-space
winners — the strategy owning the largest share of that context's combined
Pareto front, the comparison behind the paper's Fig. 6.  Candidates from
different search spaces are never pooled into one front: an image-CNN
error/energy trade-off is not comparable to a 1-D sequence model's.
Aggregation depends only on the *set* of outcomes, never their order, so
serial, parallel and resumed campaigns report identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.serving.session import ServingReport

from repro.analysis.criteria import CriterionComparison
from repro.analysis.pareto_metrics import FrontComparison
from repro.analysis.runtime_eval import RuntimeStudy
from repro.api.envelopes import SearchOutcome
from repro.core.results import CandidateEvaluation, SearchResult
from repro.nn.spaces import DEFAULT_SEARCH_SPACE
from repro.optim.pareto import FrontHistory, pareto_front_mask
from repro.resilience.health import HEALTH_CODES, summarize_health


def _outcome_space(outcome: SearchOutcome) -> str:
    """Search-space name of an outcome (default for pre-v2 requests)."""
    return getattr(outcome.request, "search_space", DEFAULT_SEARCH_SPACE)


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a GitHub-style Markdown table."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join(["---"] * len(headers)) + "|",
    ]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        lines.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return "\n".join(lines)


class ExperimentReport:
    """Accumulates experiment sections and renders them as one Markdown document."""

    def __init__(self, title: str = "LENS reproduction report"):
        self.title = str(title)
        self._sections: List[str] = []

    # ------------------------------------------------------------------ sections
    def add_text(self, heading: str, body: str) -> "ExperimentReport":
        """Add a free-form section."""
        self._sections.append(f"## {heading}\n\n{body.strip()}")
        return self

    def add_search_summary(
        self, result: SearchResult, heading: Optional[str] = None
    ) -> "ExperimentReport":
        """Summarise one search run: budget, frontier size, best per metric."""
        heading = heading or f"Search summary — {result.label}"
        front = result.pareto_candidates(("error_percent", "energy_j"))
        rows = []
        for label, metric in (
            ("lowest error", "error_percent"),
            ("lowest energy", "energy_j"),
            ("lowest latency", "latency_s"),
        ):
            best = result.best_by(metric)
            rows.append(
                [
                    label,
                    best.architecture_name,
                    round(best.error_percent, 2),
                    round(best.energy_mj, 1),
                    round(best.latency_ms, 1),
                    best.best_energy_option.label,
                ]
            )
        body = (
            f"Explored **{len(result)}** architectures; "
            f"**{len(front)}** are Pareto-optimal on (error, energy).\n\n"
            + _markdown_table(
                ["selection", "model", "error %", "energy mJ", "latency ms", "deployment"],
                rows,
            )
        )
        return self.add_text(heading, body)

    def add_front_comparison(
        self, comparison: FrontComparison, heading: Optional[str] = None
    ) -> "ExperimentReport":
        """Add a LENS-vs-baseline frontier comparison (Fig. 6 style)."""
        heading = heading or (
            f"Frontier comparison — {comparison.a_label} vs {comparison.b_label}"
        )
        rows = [
            ["metrics", " / ".join(comparison.metrics)],
            [f"{comparison.a_label} front size", comparison.a_front_size],
            [f"{comparison.b_label} front size", comparison.b_front_size],
            [
                f"{comparison.a_label} dominates {comparison.b_label}",
                f"{100 * comparison.a_dominates_b_fraction:.1f}%",
            ],
            [
                f"{comparison.b_label} dominates {comparison.a_label}",
                f"{100 * comparison.b_dominates_a_fraction:.1f}%",
            ],
            [
                f"combined frontier share of {comparison.a_label}",
                f"{100 * comparison.combined_fraction_a:.1f}%",
            ],
            ["hypervolume ratio (a / b)",
             round(comparison.hypervolume_a / comparison.hypervolume_b, 3)
             if comparison.hypervolume_b > 0 else "inf"],
        ]
        return self.add_text(heading, _markdown_table(["statistic", "value"], rows))

    def add_criteria_comparison(
        self,
        comparisons: Sequence[CriterionComparison],
        heading: str = "Architectures satisfying the criteria (Fig. 7 style)",
    ) -> "ExperimentReport":
        """Add partition-within vs partition-after criterion counts."""
        rows = []
        for comparison in comparisons:
            change = comparison.percent_change
            rows.append(
                [
                    comparison.criterion.label,
                    comparison.count_a,
                    comparison.count_b,
                    "inf" if change == float("inf") else f"{change:.1f}%",
                ]
            )
        headers = [
            "criterion",
            comparisons[0].a_label if comparisons else "a",
            comparisons[0].b_label if comparisons else "b",
            "change",
        ]
        return self.add_text(heading, _markdown_table(headers, rows))

    def add_runtime_study(
        self, study: RuntimeStudy, heading: Optional[str] = None
    ) -> "ExperimentReport":
        """Add a trace-replay runtime study (Fig. 8 style)."""
        heading = heading or f"Runtime study — {study.model_label} ({study.metric})"
        unit = "J" if study.metric == "energy" else "s"
        rows = []
        for label, value in sorted(study.comparison.cumulative.items(), key=lambda kv: kv[1]):
            gain = (
                "-" if label == "dynamic"
                else f"{study.comparison.improvement_percent(label):.2f}%"
            )
            rows.append([label, round(value, 4), unit, gain])
        threshold = study.switching_threshold_mbps
        body = _markdown_table(["strategy", "cumulative", "unit", "dynamic gain"], rows)
        body += (
            f"\n\nSwitching threshold: "
            + (f"{threshold:.2f} Mbps" if threshold is not None else "none in range")
            + f"; deployment switches over the trace: {study.comparison.num_switches}."
        )
        return self.add_text(heading, body)

    def add_front_history(
        self, history: FrontHistory, heading: str = "Hypervolume vs. iteration"
    ) -> "ExperimentReport":
        """Add a search run's per-evaluation hypervolume trajectory.

        Renders one row per *front advance* (evaluations whose candidate
        joined the Pareto front), so long searches stay readable: plateaus
        collapse into the gap between consecutive rows.
        """
        if not history.entries:
            return self.add_text(heading, "No evaluations recorded.")
        rows = [
            [
                entry.evaluation,
                entry.iteration,
                entry.candidate or "-",
                entry.front_size,
                round(entry.hypervolume, 4),
            ]
            for entry in history.front_advances()
        ]
        body = (
            f"Reference point (per objective "
            f"{' / '.join(history.metrics)}): "
            + ", ".join(f"{value:.4f}" for value in history.reference)
            + f". Final hypervolume **{history.final_hypervolume:.4f}** with a "
            f"front of **{history.final_front_size}** after "
            f"**{len(history.entries)}** evaluations.\n\n"
            + _markdown_table(
                ["evaluation", "iteration", "joined", "front size", "hypervolume"],
                rows,
            )
        )
        return self.add_text(heading, body)

    def add_serving_report(
        self, report: "ServingReport", heading: Optional[str] = None
    ) -> "ExperimentReport":
        """Add a fleet serving-session summary (see :mod:`repro.serving`).

        Renders the one-row fleet summary (decisions/sec, decision-latency
        percentiles, switch counts, SLA accounting) followed by the
        per-region breakdown when the workload labelled one.
        """
        heading = heading or f"Serving session — {report.name} ({report.metric})"
        summary_headers, summary_rows = report.summary_rows()
        body = (
            f"Served **{report.num_clients}** clients for **{report.ticks}** "
            f"ticks, deciding between: {', '.join(report.option_labels)}.\n\n"
            + _markdown_table(summary_headers, summary_rows)
        )
        region_headers, region_rows = report.region_rows()
        if region_rows:
            body += (
                "\n\n### Per-region breakdown\n\n"
                + _markdown_table(region_headers, region_rows)
            )
        degraded = []
        if report.anomalies:
            degraded.append(f"{report.anomalies} anomalous measurement(s)")
        if report.silent_clients:
            degraded.append(f"{report.silent_clients} silent client(s)")
        if report.exhausted_clients:
            degraded.append(f"{report.exhausted_clients} exhausted trace(s)")
        if degraded:
            body += "\n\nDegraded inputs absorbed: " + ", ".join(degraded) + "."
        return self.add_text(heading, body)

    # ------------------------------------------------------------------ rendering
    @property
    def num_sections(self) -> int:
        """Number of sections added so far."""
        return len(self._sections)

    def render_markdown(self) -> str:
        """Render the full report as a Markdown string."""
        parts = [f"# {self.title}", ""]
        parts.extend(self._sections)
        return "\n\n".join(parts).strip() + "\n"

    def write(self, path: Union[str, Path]) -> Path:
        """Write the rendered report to a file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render_markdown(), encoding="utf-8")
        return path

    def add_campaign_summary(
        self, summary: "CampaignSummary", heading: str = "Campaign summary"
    ) -> "ExperimentReport":
        """Add a campaign's per-cell table and per scenario/space winners."""
        cell_headers, cell_rows = summary.cell_table()
        winner_headers, winner_rows = summary.winner_table()
        body = (
            f"**{summary.num_runs}** stored runs over "
            f"**{len(summary.winners)}** scenario/space contexts "
            f"(metrics: {' / '.join(summary.metrics)}).\n\n"
            + _markdown_table(cell_headers, cell_rows)
            + "\n\n### Winners (largest combined-frontier share)\n\n"
            + _markdown_table(winner_headers, winner_rows)
        )
        hv_headers, hv_rows = summary.hypervolume_table()
        if hv_rows:  # only v3+ outcomes carry front telemetry
            body += (
                "\n\n### Final hypervolume (per-run reference boxes)\n\n"
                + _markdown_table(hv_headers, hv_rows)
            )
        return self.add_text(heading, body)

    def add_health_summary(
        self, health: Dict[str, int], heading: str = "Resilience health"
    ) -> "ExperimentReport":
        """Add a campaign's aggregated resilience counters.

        ``health`` is an ``H_*`` code -> count mapping, e.g.
        :attr:`CampaignSummary.health` or one outcome's
        :attr:`~repro.api.envelopes.SearchOutcome.health`.  The legend for
        each code comes from :data:`~repro.resilience.health.HEALTH_CODES`
        (documented in ``docs/robustness.md``).
        """
        if not health:
            return self.add_text(heading, "No degradation or checkpoint events.")
        rows = [
            [code, count, HEALTH_CODES.get(code, "(unknown code)")]
            for code, count in sorted(health.items())
        ]
        total = sum(health.values())
        body = (
            f"**{total}** resilience event(s) across the stored runs.\n\n"
            + _markdown_table(["health code", "events", "meaning"], rows)
        )
        return self.add_text(heading, body)

    def add_audit_summary(
        self, audit: Dict[str, Any], heading: str = "Failure audit"
    ) -> "ExperimentReport":
        """Add a campaign's error/audit overview.

        ``audit`` is the dict produced by
        :func:`repro.campaign.errors.summarize_audit` — per-code counts,
        permanently failed cells, retries and reporting workers.
        """
        if not audit.get("num_records"):
            return self.add_text(heading, "No failure records.")
        code_rows = [
            [code, count] for code, count in sorted(audit["by_code"].items())
        ]
        failed = audit.get("failed_cells", [])
        lines = [
            f"**{audit['num_records']}** failure record(s), "
            f"**{len(failed)}** cell(s) permanently failed, "
            f"**{audit.get('retries', 0)}** retries.",
            "",
            _markdown_table(["error code", "records"], code_rows),
        ]
        if failed:
            listed = ", ".join(f"`{fp}`" for fp in failed[:10])
            suffix = " …" if len(failed) > 10 else ""
            lines += ["", f"Failed cells: {listed}{suffix}"]
        if audit.get("dead_lettered"):
            lines += [
                "",
                f"**{len(audit['dead_lettered'])}** poison cell(s) dead-lettered "
                f"— `repro campaign --retry-dead` re-admits them.",
            ]
        workers = audit.get("workers", [])
        if workers:
            lines += ["", f"Reporting workers: {', '.join(workers)}"]
        return self.add_text(heading, "\n".join(lines))


# ---------------------------------------------------------------------- campaigns

@dataclass(frozen=True)
class CampaignCell:
    """Aggregate of every stored run of one scenario x space x strategy cell."""

    scenario: str
    search_space: str
    strategy: str
    seeds: Tuple[Optional[int], ...]
    num_runs: int
    num_candidates: int
    pareto_size: int
    best: Dict[str, float]
    wall_time_s: float
    #: Mean final hypervolume over the cell's runs that recorded a
    #: :class:`~repro.optim.pareto.FrontHistory` (``None`` when none did —
    #: e.g. outcomes stored before schema v3).
    final_hypervolume: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "scenario": self.scenario,
            "search_space": self.search_space,
            "strategy": self.strategy,
            "seeds": list(self.seeds),
            "num_runs": self.num_runs,
            "num_candidates": self.num_candidates,
            "pareto_size": self.pareto_size,
            "best": dict(self.best),
            "wall_time_s": self.wall_time_s,
        }
        # emitted only when recorded, so pre-telemetry payloads are unchanged
        if self.final_hypervolume is not None:
            payload["final_hypervolume"] = self.final_hypervolume
        return payload


@dataclass(frozen=True)
class ScenarioWinner:
    """Which strategy owns a scenario's combined Pareto front.

    ``shares[strategy]`` is the fraction of the combined frontier (Pareto
    front over *all* strategies' candidates pooled together, within one
    scenario *and* search space — never across spaces) contributed by that
    strategy — the Fig. 6 comparison, generalised past two strategies.
    Ties break toward the better best-``metrics[0]`` value, then
    alphabetically, so the winner is deterministic.
    """

    scenario: str
    search_space: str
    winner: str
    shares: Dict[str, float]
    front_size: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "search_space": self.search_space,
            "winner": self.winner,
            "shares": dict(self.shares),
            "front_size": self.front_size,
        }


@dataclass(frozen=True)
class CampaignSummary:
    """Everything :func:`summarize_campaign` derives from a run store."""

    metrics: Tuple[str, str]
    num_runs: int
    cells: Tuple[CampaignCell, ...]
    winners: Tuple[ScenarioWinner, ...]
    #: Aggregated resilience counters (``H_*`` code -> total) over every
    #: stored outcome — empty when no run recorded a degradation or
    #: checkpoint event (including outcomes stored before schema v4).
    health: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "metrics": list(self.metrics),
            "num_runs": self.num_runs,
            "cells": [cell.to_dict() for cell in self.cells],
            "winners": [winner.to_dict() for winner in self.winners],
        }
        # emitted only when any run recorded events, so healthy-campaign
        # payloads are unchanged
        if self.health:
            payload["health"] = dict(self.health)
        return payload

    def winner_for(self, scenario: str, search_space: Optional[str] = None) -> str:
        """Winning strategy of one scenario (and search space).

        ``search_space`` may be omitted while the scenario was only run
        under one space; with several spaces stored it must be named, since
        their frontiers are not comparable.
        """
        matches = [
            winner
            for winner in self.winners
            if winner.scenario == scenario
            and (search_space is None or winner.search_space == search_space)
        ]
        if not matches:
            raise KeyError(
                f"no runs stored for scenario {scenario!r}"
                + (f" and search space {search_space!r}" if search_space else "")
            )
        if len(matches) > 1:
            spaces = sorted(w.search_space for w in matches)
            raise KeyError(
                f"scenario {scenario!r} was run under several search spaces "
                f"{spaces}; pass search_space= to pick one"
            )
        return matches[0].winner

    # ------------------------------------------------------------------ tables
    def cell_table(
        self, include_wall_time: bool = True
    ) -> Tuple[List[str], List[List[Any]]]:
        """``(headers, rows)`` of the per-cell table, for any renderer.

        ``include_wall_time=False`` leaves out the one column that varies
        between executions of the same grid, making the rendered table
        byte-reproducible (the CLI report relies on this).
        """
        headers = [
            "scenario", "space", "strategy", "runs", "candidates", "pareto",
            f"best {self.metrics[0]}", f"best {self.metrics[1]}",
        ]
        rows: List[List[Any]] = [
            [
                cell.scenario,
                cell.search_space,
                cell.strategy,
                cell.num_runs,
                cell.num_candidates,
                cell.pareto_size,
                round(cell.best[self.metrics[0]], 3),
                round(cell.best[self.metrics[1]], 4),
            ]
            for cell in self.cells
        ]
        if include_wall_time:
            headers.append("wall s")
            for cell, row in zip(self.cells, rows):
                row.append(round(cell.wall_time_s, 2))
        return headers, rows

    def hypervolume_table(self) -> Tuple[List[str], List[List[Any]]]:
        """``(headers, rows)`` of per-cell final hypervolumes.

        One row per cell that recorded front telemetry — the mean over its
        runs' final hypervolumes, each in its run's own reference box (a
        progress signal; for a strictly shared-reference comparison
        recompute from the pooled candidates, as ``benchmarks/bench_epdc.py``
        does).  Empty rows when no stored outcome carries a
        :class:`~repro.optim.pareto.FrontHistory`.
        """
        headers = ["scenario", "space", "strategy", "runs", "mean final hypervolume"]
        rows = [
            [
                cell.scenario,
                cell.search_space,
                cell.strategy,
                cell.num_runs,
                round(cell.final_hypervolume, 4),
            ]
            for cell in self.cells
            if cell.final_hypervolume is not None
        ]
        return headers, rows

    def health_table(self) -> Tuple[List[str], List[List[Any]]]:
        """``(headers, rows)`` of aggregated resilience counters.

        One row per ``H_*`` code any stored run recorded, with the code's
        legend from :data:`~repro.resilience.health.HEALTH_CODES`.  Empty
        rows for an all-healthy campaign.
        """
        headers = ["health code", "events", "meaning"]
        rows = [
            [code, count, HEALTH_CODES.get(code, "(unknown code)")]
            for code, count in sorted(self.health.items())
        ]
        return headers, rows

    def winner_table(self) -> Tuple[List[str], List[List[Any]]]:
        """``(headers, rows)`` of the per scenario/space winner table."""
        headers = ["scenario", "space", "winner", "front share", "front size"]
        rows = [
            [
                winner.scenario,
                winner.search_space,
                winner.winner,
                f"{100 * winner.shares[winner.winner]:.1f}%",
                winner.front_size,
            ]
            for winner in self.winners
        ]
        return headers, rows


def merged_results(
    outcomes: Iterable[SearchOutcome],
) -> Dict[Tuple[str, str], Dict[str, SearchResult]]:
    """Pool campaign outcomes into
    ``(scenario, search space) -> strategy -> SearchResult``.

    Runs of the same cell (different seeds) are concatenated into one result
    whose label is the strategy name; candidates from different search
    spaces are kept apart (their objective trade-offs are not comparable).
    Keys come out in sorted order regardless of store order.
    """
    pooled: Dict[Tuple[str, str], Dict[str, List[CandidateEvaluation]]] = {}
    for outcome in outcomes:
        context = (outcome.scenario.name, _outcome_space(outcome))
        per_context = pooled.setdefault(context, {})
        per_context.setdefault(outcome.label, []).extend(outcome.candidates)
    return {
        context: {
            strategy: SearchResult(candidates, label=strategy)
            for strategy, candidates in sorted(per_context.items())
        }
        for context, per_context in sorted(pooled.items())
    }


def combined_front_shares(
    results: Dict[str, SearchResult],
    metrics: Sequence[str] = ("error_percent", "energy_j"),
) -> Tuple[Dict[str, float], int]:
    """Per-strategy share of the pooled Pareto front, plus its size."""
    owners: List[str] = []
    rows: List[List[float]] = []
    for strategy, result in sorted(results.items()):
        for candidate in result:
            owners.append(strategy)
            rows.append([candidate.metric(m) for m in metrics])
    if not rows:
        return {strategy: 0.0 for strategy in results}, 0
    mask = pareto_front_mask(np.asarray(rows, dtype=float))
    front_size = int(mask.sum())
    shares = {
        strategy: (
            sum(1 for owner, keep in zip(owners, mask) if keep and owner == strategy)
            / front_size
        )
        for strategy in results
    }
    return shares, front_size


def summarize_campaign(
    outcomes: Iterable[SearchOutcome],
    metrics: Sequence[str] = ("error_percent", "energy_j"),
) -> CampaignSummary:
    """Aggregate campaign outcomes into cells and per scenario/space winners.

    ``outcomes`` is any iterable of :class:`SearchOutcome` — typically
    ``RunStore.outcomes()``.  Cells and winners are keyed by scenario *and*
    search space, so multi-space campaigns never pool incomparable
    workloads into one Pareto front.  The summary is a pure function of the
    outcome *set*: append order, worker count and resume history do not
    affect it.
    """
    metrics = tuple(metrics)
    if len(metrics) != 2:
        raise ValueError(f"campaign summaries use exactly two metrics, got {metrics}")
    materialised = list(outcomes)
    runs: Dict[Tuple[str, str, str], List[SearchOutcome]] = {}
    for outcome in materialised:
        key = (outcome.scenario.name, _outcome_space(outcome), outcome.label)
        runs.setdefault(key, []).append(outcome)

    cells: List[CampaignCell] = []
    for (scenario, search_space, strategy), group in sorted(runs.items()):
        pooled = SearchResult(
            [c for outcome in group for c in outcome.candidates], label=strategy
        )
        hypervolumes = [
            outcome.front_history.final_hypervolume
            for outcome in group
            if getattr(outcome, "front_history", None) is not None
            and len(outcome.front_history)
        ]
        cells.append(
            CampaignCell(
                scenario=scenario,
                search_space=search_space,
                strategy=strategy,
                seeds=tuple(sorted(
                    {outcome.request.seed for outcome in group},
                    key=lambda s: (s is None, s),
                )),
                num_runs=len(group),
                num_candidates=len(pooled),
                pareto_size=len(pooled.pareto_candidates(metrics)),
                best={m: pooled.best_by(m).metric(m) for m in metrics},
                wall_time_s=sum(outcome.wall_time_s for outcome in group),
                final_hypervolume=(
                    float(np.mean(hypervolumes)) if hypervolumes else None
                ),
            )
        )

    winners: List[ScenarioWinner] = []
    for (scenario, search_space), results in merged_results(materialised).items():
        shares, front_size = combined_front_shares(results, metrics)
        best_first = {
            cell.strategy: cell.best[metrics[0]]
            for cell in cells
            if cell.scenario == scenario and cell.search_space == search_space
        }
        winner = min(
            shares,
            key=lambda strategy: (
                -shares[strategy],
                best_first.get(strategy, float("inf")),
                strategy,
            ),
        )
        winners.append(
            ScenarioWinner(
                scenario=scenario,
                search_space=search_space,
                winner=winner,
                shares=shares,
                front_size=front_size,
            )
        )

    return CampaignSummary(
        metrics=metrics,  # type: ignore[arg-type]
        num_runs=len(materialised),
        cells=tuple(cells),
        winners=tuple(winners),
        health=summarize_health(
            getattr(outcome, "health", {}) or {} for outcome in materialised
        ),
    )
