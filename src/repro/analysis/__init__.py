"""Analysis utilities reproducing the paper's figures and tables."""

from repro.analysis.criteria import (
    PAPER_CRITERIA,
    Criterion,
    CriterionComparison,
    compare_criteria,
    paper_criteria,
)
from repro.analysis.deployment_sweep import (
    DeploymentConfiguration,
    RegionalPreferenceRow,
    SweepRow,
    evaluate_under,
    preference_changes,
    regional_preferences,
    sweep_deployments,
)
from repro.analysis.pareto_metrics import (
    FrontComparison,
    compare_fronts,
    frontier_extremes,
)
from repro.analysis.reporting import (
    CampaignCell,
    CampaignSummary,
    ExperimentReport,
    ScenarioWinner,
    combined_front_shares,
    merged_results,
    summarize_campaign,
)
from repro.analysis.per_layer import (
    LayerReportRow,
    latency_share_by_type,
    per_layer_report,
)
from repro.analysis.runtime_eval import (
    RuntimeStudy,
    run_runtime_study,
    select_runtime_options,
)

__all__ = [
    "PAPER_CRITERIA",
    "Criterion",
    "CriterionComparison",
    "compare_criteria",
    "paper_criteria",
    "DeploymentConfiguration",
    "RegionalPreferenceRow",
    "SweepRow",
    "evaluate_under",
    "preference_changes",
    "regional_preferences",
    "sweep_deployments",
    "FrontComparison",
    "compare_fronts",
    "frontier_extremes",
    "CampaignCell",
    "CampaignSummary",
    "ExperimentReport",
    "ScenarioWinner",
    "combined_front_shares",
    "merged_results",
    "summarize_campaign",
    "LayerReportRow",
    "latency_share_by_type",
    "per_layer_report",
    "RuntimeStudy",
    "run_runtime_study",
    "select_runtime_options",
]
