"""Pareto-frontier comparison metrics for the LENS vs Traditional study (Fig. 6).

The paper summarises Fig. 6 with three numbers per metric pair:

* the fraction of the (partitioned) Traditional frontier dominated by LENS's
  frontier,
* the fraction of LENS's frontier dominated by the (partitioned) Traditional
  frontier,
* the share of a combined frontier contributed by LENS.

:func:`compare_fronts` computes all three (plus hypervolumes) for any pair of
:class:`~repro.core.results.SearchResult` objects and any metric pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.results import SearchResult
from repro.optim.pareto import combined_front_composition, coverage, hypervolume


@dataclass(frozen=True)
class FrontComparison:
    """Summary statistics of one frontier-vs-frontier comparison."""

    metrics: Sequence[str]
    a_label: str
    b_label: str
    a_front_size: int
    b_front_size: int
    a_dominates_b_fraction: float
    b_dominates_a_fraction: float
    combined_fraction_a: float
    combined_fraction_b: float
    hypervolume_a: float
    hypervolume_b: float

    def to_dict(self) -> Dict:
        return {
            "metrics": list(self.metrics),
            "a_label": self.a_label,
            "b_label": self.b_label,
            "a_front_size": self.a_front_size,
            "b_front_size": self.b_front_size,
            "a_dominates_b_fraction": self.a_dominates_b_fraction,
            "b_dominates_a_fraction": self.b_dominates_a_fraction,
            "combined_fraction_a": self.combined_fraction_a,
            "combined_fraction_b": self.combined_fraction_b,
            "hypervolume_a": self.hypervolume_a,
            "hypervolume_b": self.hypervolume_b,
        }


def compare_fronts(
    result_a: SearchResult,
    result_b: SearchResult,
    metrics: Sequence[str] = ("error_percent", "energy_j"),
) -> FrontComparison:
    """Compare the Pareto frontiers of two search results.

    Parameters
    ----------
    result_a / result_b:
        The two search results (e.g. LENS and the partitioned Traditional).
    metrics:
        The metric pair defining the objective space, e.g.
        ``("error_percent", "energy_j")`` for the paper's energy/error plot or
        ``("error_percent", "latency_s")`` for the latency/error analysis.
    """
    front_a = result_a.pareto_objectives(metrics)
    front_b = result_b.pareto_objectives(metrics)
    composition = combined_front_composition(front_a, front_b)

    pooled = (
        np.vstack([m for m in (front_a, front_b) if m.size > 0])
        if front_a.size or front_b.size
        else np.empty((0, len(metrics)))
    )
    if pooled.size > 0:
        reference = pooled.max(axis=0) * 1.1 + 1e-9
        hv_a = hypervolume(front_a, reference) if front_a.size else 0.0
        hv_b = hypervolume(front_b, reference) if front_b.size else 0.0
    else:
        hv_a = hv_b = 0.0

    return FrontComparison(
        metrics=tuple(metrics),
        a_label=result_a.label,
        b_label=result_b.label,
        a_front_size=int(front_a.shape[0]) if front_a.size else 0,
        b_front_size=int(front_b.shape[0]) if front_b.size else 0,
        a_dominates_b_fraction=coverage(front_a, front_b),
        b_dominates_a_fraction=coverage(front_b, front_a),
        combined_fraction_a=composition["fraction_a"],
        combined_fraction_b=composition["fraction_b"],
        hypervolume_a=hv_a,
        hypervolume_b=hv_b,
    )


def frontier_extremes(
    result: SearchResult, metrics: Sequence[str] = ("error_percent", "energy_j")
) -> Dict[str, float]:
    """Minimum value of each metric over a result's Pareto frontier.

    The paper highlights that the Traditional search never identifies any
    architecture below 207 mJ; this helper extracts the analogous floors.
    """
    front = result.pareto_objectives(metrics)
    if front.size == 0:
        return {metric: float("nan") for metric in metrics}
    return {metric: float(front[:, i].min()) for i, metric in enumerate(metrics)}
