"""Trace-driven runtime evaluation of deployed models (paper Fig. 8).

Given a model selected from a Pareto frontier, this module identifies its
relevant deployment options, runs the pre-deployment threshold analysis, and
replays a throughput trace to compare fixed deployments against the dynamic
throughput-tracking switcher — reproducing the model A / model B study of the
paper's runtime analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.runtime import RuntimeComparison, ThresholdAnalysis, simulate_runtime
from repro.hardware.predictors import BaseLayerPredictor
from repro.nn.architecture import Architecture
from repro.partition.deployment import DeploymentMetrics
from repro.partition.partitioner import PartitionAnalyzer
from repro.wireless.channel import WirelessChannel
from repro.wireless.tracker import ThroughputTracker
from repro.wireless.traces import ThroughputTrace


@dataclass(frozen=True)
class RuntimeStudy:
    """Full record of one model's runtime analysis.

    Attributes
    ----------
    model_label:
        Identifier of the analysed model (e.g. ``"model A"``).
    metric:
        The metric being optimised at runtime (``"latency"`` or ``"energy"``).
    switching_threshold_mbps:
        The throughput threshold separating the two dominant options, when a
        single threshold exists.
    comparison:
        The trace-replay results (cumulative metric per strategy).
    options:
        The deployment options that took part in the analysis.
    """

    model_label: str
    metric: str
    switching_threshold_mbps: Optional[float]
    comparison: RuntimeComparison
    options: Sequence[DeploymentMetrics]

    def to_dict(self) -> Dict:
        return {
            "model_label": self.model_label,
            "metric": self.metric,
            "switching_threshold_mbps": self.switching_threshold_mbps,
            "comparison": self.comparison.to_dict(),
            "options": [m.to_dict() for m in self.options],
        }


def select_runtime_options(
    architecture: Architecture,
    predictor: BaseLayerPredictor,
    channel: WirelessChannel,
    metric: str,
    include_all_cloud: bool = False,
    include_all_edge: bool = True,
) -> List[DeploymentMetrics]:
    """Deployment options worth tracking at runtime for one model.

    The paper considers each model's best partitioning option together with
    All-Edge (model A) or All-Cloud (model B); the flags select which
    companions to include.
    """
    analyzer = PartitionAnalyzer(predictor, channel)
    evaluation = analyzer.evaluate(architecture)
    best = evaluation.best_for(metric)
    options: List[DeploymentMetrics] = [best]
    if include_all_edge and evaluation.all_edge.option != best.option:
        options.append(evaluation.all_edge)
    if include_all_cloud and evaluation.all_cloud.option != best.option:
        options.append(evaluation.all_cloud)
    if len(options) < 2:
        # Ensure at least two options so there is something to switch between.
        options.append(
            evaluation.all_cloud
            if evaluation.all_edge.option == best.option
            else evaluation.all_edge
        )
    return options


def run_runtime_study(
    model_label: str,
    architecture: Architecture,
    predictor: BaseLayerPredictor,
    channel: WirelessChannel,
    trace: ThroughputTrace,
    metric: str = "energy",
    include_all_cloud: bool = False,
    include_all_edge: bool = True,
    tracker: Optional[ThroughputTracker] = None,
) -> RuntimeStudy:
    """Run the Fig. 8 analysis for one model over one throughput trace."""
    options = select_runtime_options(
        architecture,
        predictor,
        channel,
        metric,
        include_all_cloud=include_all_cloud,
        include_all_edge=include_all_edge,
    )
    analysis = ThresholdAnalysis(
        options=options,
        power_model=channel.power_model,
        round_trip_s=channel.round_trip_s,
        metric=metric,
    )
    comparison = simulate_runtime(analysis, trace, tracker=tracker)
    return RuntimeStudy(
        model_label=model_label,
        metric=metric,
        switching_threshold_mbps=analysis.switching_threshold(),
        comparison=comparison,
        options=tuple(options),
    )
