"""Regional average upload-throughput catalogue (paper Table I).

The paper quotes average experienced upload throughputs from the Opensignal
"State of Mobile Network Experience 2020" report for three regions and shows
how AlexNet's preferred deployment option changes between them.  The three
quoted values are reproduced verbatim; a few additional regions with
representative values are included so the regional-deployment example and the
Table I benchmark can sweep a broader range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.utils.validation import require_positive


@dataclass(frozen=True)
class Region:
    """A geographic region with its average experienced upload throughput."""

    name: str
    avg_uplink_mbps: float
    source: str = "opensignal-2020"

    def __post_init__(self) -> None:
        require_positive(self.avg_uplink_mbps, "avg_uplink_mbps")

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "avg_uplink_mbps": self.avg_uplink_mbps,
            "source": self.source,
        }


#: Regions quoted in the paper's Table I.
PAPER_REGIONS: Tuple[Region, ...] = (
    Region("South Korea", 16.1),
    Region("USA", 7.5),
    Region("Afghanistan", 0.7),
)

#: Additional representative regions for broader sweeps (synthetic values in
#: the range spanned by the 2020 report; marked accordingly).
EXTRA_REGIONS: Tuple[Region, ...] = (
    Region("Japan", 13.2, source="synthetic-representative"),
    Region("Germany", 9.8, source="synthetic-representative"),
    Region("Brazil", 5.6, source="synthetic-representative"),
    Region("India", 3.1, source="synthetic-representative"),
    Region("Nigeria", 1.8, source="synthetic-representative"),
)

#: Full catalogue keyed by region name.
ALL_REGIONS: Dict[str, Region] = {
    region.name: region for region in PAPER_REGIONS + EXTRA_REGIONS
}


def region_by_name(name: str) -> Region:
    """Look up a region by (case-insensitive) name."""
    for region_name, region in ALL_REGIONS.items():
        if region_name.lower() == name.strip().lower():
            return region
    raise KeyError(f"unknown region {name!r}; available: {sorted(ALL_REGIONS)}")


def paper_regions() -> List[Region]:
    """The three regions of the paper's Table I, in paper order."""
    return list(PAPER_REGIONS)


def all_regions() -> List[Region]:
    """Every region in the catalogue, sorted by decreasing throughput."""
    return sorted(ALL_REGIONS.values(), key=lambda r: -r.avg_uplink_mbps)
