"""Wireless communication substrate: power models, channels, regions, traces."""

from repro.wireless.channel import CommunicationCost, WirelessChannel
from repro.wireless.power_models import (
    HUANG_COEFFICIENTS_MILLIWATTS,
    SUPPORTED_TECHNOLOGIES,
    RadioPowerModel,
)
from repro.wireless.regions import (
    ALL_REGIONS,
    EXTRA_REGIONS,
    PAPER_REGIONS,
    Region,
    all_regions,
    paper_regions,
    region_by_name,
)
from repro.wireless.tracker import ThroughputTracker
from repro.wireless.traces import (
    ThroughputSample,
    ThroughputTrace,
    generate_lte_trace,
    paper_like_traces,
)

__all__ = [
    "CommunicationCost",
    "WirelessChannel",
    "HUANG_COEFFICIENTS_MILLIWATTS",
    "SUPPORTED_TECHNOLOGIES",
    "RadioPowerModel",
    "ALL_REGIONS",
    "EXTRA_REGIONS",
    "PAPER_REGIONS",
    "Region",
    "all_regions",
    "paper_regions",
    "region_by_name",
    "ThroughputTracker",
    "ThroughputSample",
    "ThroughputTrace",
    "generate_lte_trace",
    "paper_like_traces",
]
