"""Upload-throughput traces for the runtime analysis (paper §V-C, Fig. 8).

The paper collects LTE upload-throughput traces with TestMyNet on a phone —
one measurement every five minutes, forty samples — and replays them against
fixed and dynamically-switched deployment options.  Offline we synthesise
statistically similar traces: log-normal marginals (throughput is positive
and right-skewed) with AR(1) temporal correlation (consecutive measurements
are similar), plus occasional deep fades.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class ThroughputSample:
    """One throughput measurement: time offset (s) and uplink speed (Mbps)."""

    time_s: float
    uplink_mbps: float


class ThroughputTrace:
    """An ordered sequence of throughput measurements."""

    def __init__(self, samples: Sequence[ThroughputSample], name: str = "trace"):
        if not samples:
            raise ValueError("a trace requires at least one sample")
        times = [s.time_s for s in samples]
        if any(t1 > t2 for t1, t2 in zip(times, times[1:])):
            raise ValueError("trace samples must be ordered by time")
        self.samples: Tuple[ThroughputSample, ...] = tuple(samples)
        self.name = name

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[ThroughputSample]:
        return iter(self.samples)

    def __getitem__(self, index: int) -> ThroughputSample:
        return self.samples[index]

    @property
    def uplinks_mbps(self) -> np.ndarray:
        """Throughput values as an array."""
        return np.array([s.uplink_mbps for s in self.samples])

    @property
    def times_s(self) -> np.ndarray:
        """Time offsets as an array."""
        return np.array([s.time_s for s in self.samples])

    @property
    def mean_mbps(self) -> float:
        """Mean uplink throughput over the trace."""
        return float(self.uplinks_mbps.mean())

    @property
    def min_mbps(self) -> float:
        """Minimum uplink throughput over the trace."""
        return float(self.uplinks_mbps.min())

    @property
    def max_mbps(self) -> float:
        """Maximum uplink throughput over the trace."""
        return float(self.uplinks_mbps.max())

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "samples": [
                {"time_s": s.time_s, "uplink_mbps": s.uplink_mbps} for s in self.samples
            ],
        }

    @classmethod
    def from_values(
        cls,
        uplinks_mbps: Sequence[float],
        period_s: float = 300.0,
        name: str = "trace",
    ) -> "ThroughputTrace":
        """Build a trace from raw throughput values sampled at a fixed period."""
        require_positive(period_s, "period_s")
        samples = [
            ThroughputSample(time_s=i * period_s, uplink_mbps=float(v))
            for i, v in enumerate(uplinks_mbps)
        ]
        return cls(samples, name=name)


def generate_lte_trace(
    num_samples: int = 40,
    period_s: float = 300.0,
    mean_mbps: float = 8.0,
    volatility: float = 0.45,
    correlation: float = 0.6,
    fade_probability: float = 0.05,
    fade_factor: float = 0.15,
    seed: SeedLike = None,
    name: str = "lte-trace",
) -> ThroughputTrace:
    """Generate a synthetic LTE upload-throughput trace.

    The process is an AR(1) random walk in log-throughput with stationary mean
    ``log(mean_mbps)`` and stationary standard deviation ``volatility``;
    occasional deep fades multiply the throughput by ``fade_factor`` to mimic
    coverage holes.  Defaults match the paper's collection protocol: 40
    samples taken every 5 minutes.

    Parameters
    ----------
    num_samples / period_s:
        Trace length and sampling period.
    mean_mbps:
        Median throughput of the stationary distribution.
    volatility:
        Standard deviation of log-throughput.
    correlation:
        AR(1) coefficient in (0, 1); higher values give smoother traces.
    fade_probability / fade_factor:
        Probability and depth of deep-fade events.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    require_positive(mean_mbps, "mean_mbps")
    if not (0.0 <= correlation < 1.0):
        raise ValueError(f"correlation must be in [0, 1), got {correlation}")
    rng = ensure_rng(seed)
    log_mean = np.log(mean_mbps)
    innovation_std = volatility * np.sqrt(1.0 - correlation**2)
    log_value = rng.normal(log_mean, volatility)
    values: List[float] = []
    for _ in range(num_samples):
        log_value = (
            correlation * log_value
            + (1.0 - correlation) * log_mean
            + rng.normal(0.0, innovation_std)
        )
        value = float(np.exp(log_value))
        if rng.random() < fade_probability:
            value *= fade_factor
        values.append(max(value, 0.05))
    return ThroughputTrace.from_values(values, period_s=period_s, name=name)


def paper_like_traces(seed: SeedLike = 7) -> Dict[str, ThroughputTrace]:
    """Two traces calibrated for the Fig. 8 runtime analysis.

    ``"model_a"`` hovers around the paper's energy switching threshold for
    model A (6.77 Mbps) and ``"model_b"`` around the latency threshold for
    model B (22.77 Mbps), so both fixed options lose to dynamic switching at
    some points of the trace — the behaviour Fig. 8 illustrates.
    """
    rng = ensure_rng(seed)
    trace_a = generate_lte_trace(
        num_samples=40, mean_mbps=7.0, volatility=0.5, seed=rng, name="lte-trace-model-a"
    )
    trace_b = generate_lte_trace(
        num_samples=40, mean_mbps=21.0, volatility=0.45, seed=rng, name="lte-trace-model-b"
    )
    return {"model_a": trace_a, "model_b": trace_b}
