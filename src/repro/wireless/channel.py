"""Edge-to-cloud wireless channel model (Eq. 3-6 of the paper).

The communication cost of offloading data of size ``Size(data)`` over an
uplink of throughput ``tu`` is modelled as

    L_Tx   = Size(data) / tu                      (transmission latency)
    L_comm = L_Tx + L_RT                          (plus round-trip latency)
    E_comm = E_Tx = P_Tx(tu) * L_Tx               (transmission energy)

where ``P_Tx`` comes from the technology-specific
:class:`~repro.wireless.power_models.RadioPowerModel`.  The cloud's download
of results back to the edge is negligible (class scores are a few bytes) and
is absorbed into the round-trip term, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.utils.units import mbps_to_bytes_per_second
from repro.utils.validation import require_non_negative, require_positive
from repro.wireless.power_models import RadioPowerModel


@dataclass(frozen=True)
class CommunicationCost:
    """Latency and energy of one edge-to-cloud transfer."""

    transmission_latency_s: float
    round_trip_s: float
    energy_j: float

    @property
    def latency_s(self) -> float:
        """Total communication latency (transmission plus round trip)."""
        return self.transmission_latency_s + self.round_trip_s


@dataclass(frozen=True)
class WirelessChannel:
    """A wireless uplink characterised by technology, throughput and RTT.

    Parameters
    ----------
    power_model:
        Radio power model of the supported wireless technology.
    uplink_mbps:
        Expected upload throughput ``tu`` in Mbps (the design-time expectation
        LENS folds into its objectives).
    round_trip_s:
        Average round-trip network latency ``L_RT`` in seconds (the paper
        estimates it from repeated pings to the server).
    """

    power_model: RadioPowerModel
    uplink_mbps: float
    round_trip_s: float = 0.01

    def __post_init__(self) -> None:
        require_positive(self.uplink_mbps, "uplink_mbps")
        require_non_negative(self.round_trip_s, "round_trip_s")

    @property
    def technology(self) -> str:
        """Wireless technology label of the underlying power model."""
        return self.power_model.technology

    @classmethod
    def create(
        cls, technology: str, uplink_mbps: float, round_trip_s: float = 0.01
    ) -> "WirelessChannel":
        """Build a channel from a technology name and expected conditions."""
        return cls(
            power_model=RadioPowerModel.for_technology(technology),
            uplink_mbps=uplink_mbps,
            round_trip_s=round_trip_s,
        )

    def with_uplink(self, uplink_mbps: float) -> "WirelessChannel":
        """Copy of this channel with a different uplink throughput."""
        return replace(self, uplink_mbps=uplink_mbps)

    # ------------------------------------------------------------------ cost model
    def transmission_latency_s(self, num_bytes: float) -> float:
        """``L_Tx``: time to push ``num_bytes`` through the uplink."""
        require_non_negative(num_bytes, "num_bytes")
        return num_bytes / mbps_to_bytes_per_second(self.uplink_mbps)

    def transmission_power_w(self) -> float:
        """``P_Tx``: radio power while transmitting at the expected throughput."""
        return self.power_model.power_w(self.uplink_mbps)

    def transmission_energy_j(self, num_bytes: float) -> float:
        """``E_Tx = P_Tx * L_Tx`` for a transfer of ``num_bytes``."""
        return self.transmission_power_w() * self.transmission_latency_s(num_bytes)

    def communication_latency_s(self, num_bytes: float) -> float:
        """``L_comm = L_Tx + L_RT`` for a transfer of ``num_bytes``."""
        return self.transmission_latency_s(num_bytes) + self.round_trip_s

    def communication_energy_j(self, num_bytes: float) -> float:
        """``E_comm = E_Tx`` for a transfer of ``num_bytes``."""
        return self.transmission_energy_j(num_bytes)

    def cost(self, num_bytes: float) -> CommunicationCost:
        """Full communication cost record for a transfer of ``num_bytes``."""
        return CommunicationCost(
            transmission_latency_s=self.transmission_latency_s(num_bytes),
            round_trip_s=self.round_trip_s,
            energy_j=self.transmission_energy_j(num_bytes),
        )

    def to_dict(self) -> Dict:
        return {
            "technology": self.technology,
            "uplink_mbps": self.uplink_mbps,
            "round_trip_s": self.round_trip_s,
            "power_model": self.power_model.to_dict(),
        }
