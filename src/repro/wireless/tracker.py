"""Online upload-throughput tracker (paper §IV-E).

After deployment "an online throughput tracker can be exploited on the edge
device to switch between different deployment options based on the tu value
in real-time O(1)".  The tracker maintains an exponentially-weighted moving
average of observed throughput measurements so single outliers do not cause
spurious deployment switches, and exposes the current estimate to the
:class:`~repro.core.runtime.DynamicDeploymentController`.

This scalar tracker is the *reference implementation* for the vectorized
fleet tracker (:class:`repro.serving.FleetTracker`), which advances many
clients' estimates in one array operation per tick; the serving parity tests
hold the two element-wise identical.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.utils.validation import require_between, require_positive


class ThroughputTracker:
    """Exponentially-weighted moving-average estimator of uplink throughput.

    Parameters
    ----------
    smoothing:
        EWMA coefficient in (0, 1]; 1 means "trust only the latest sample"
        (the behaviour assumed by the paper's O(1) switching argument), lower
        values smooth out measurement noise.
    initial_mbps:
        Optional prior estimate before any observation arrives.
    history_limit:
        Maximum number of raw measurements retained by :attr:`history`
        (bounded-deque semantics: older samples are dropped as new ones
        arrive).  ``None`` (the default) keeps every sample, preserving the
        historical behaviour — but an unbounded history grows without limit,
        so long-lived serving sessions should pass a finite limit.  The
        estimate itself is O(1) state and is unaffected by the limit.
    """

    def __init__(
        self,
        smoothing: float = 1.0,
        initial_mbps: Optional[float] = None,
        history_limit: Optional[int] = None,
    ):
        require_between(smoothing, 1e-6, 1.0, "smoothing")
        if history_limit is not None and history_limit < 0:
            raise ValueError(f"history_limit must be >= 0, got {history_limit}")
        self.smoothing = float(smoothing)
        self.history_limit = history_limit
        self._estimate: Optional[float] = None
        self._history: Deque[float] = deque(maxlen=history_limit)
        self._num_observations = 0
        if initial_mbps is not None:
            require_positive(initial_mbps, "initial_mbps")
            self._estimate = float(initial_mbps)

    @property
    def estimate_mbps(self) -> Optional[float]:
        """Current throughput estimate, or ``None`` before any observation."""
        return self._estimate

    @property
    def num_observations(self) -> int:
        """Number of throughput measurements consumed so far.

        Counts every observation ever consumed, even those a finite
        ``history_limit`` has since evicted from :attr:`history`.
        """
        return self._num_observations

    @property
    def history(self) -> List[float]:
        """Copy of the retained raw measurements (Mbps).

        With a finite ``history_limit`` only the most recent measurements
        are retained (oldest first); without one, every measurement.
        """
        return list(self._history)

    def observe(self, uplink_mbps: float) -> float:
        """Consume one measurement and return the updated estimate."""
        require_positive(uplink_mbps, "uplink_mbps")
        self._history.append(float(uplink_mbps))
        self._num_observations += 1
        if self._estimate is None:
            self._estimate = float(uplink_mbps)
        else:
            self._estimate = (
                self.smoothing * float(uplink_mbps)
                + (1.0 - self.smoothing) * self._estimate
            )
        return self._estimate

    def reset(self) -> None:
        """Forget all observations and the current estimate."""
        self._estimate = None
        self._history.clear()
        self._num_observations = 0
