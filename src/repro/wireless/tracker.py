"""Online upload-throughput tracker (paper §IV-E).

After deployment "an online throughput tracker can be exploited on the edge
device to switch between different deployment options based on the tu value
in real-time O(1)".  The tracker maintains an exponentially-weighted moving
average of observed throughput measurements so single outliers do not cause
spurious deployment switches, and exposes the current estimate to the
:class:`~repro.core.runtime.DynamicDeploymentController`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.utils.validation import require_between, require_positive


class ThroughputTracker:
    """Exponentially-weighted moving-average estimator of uplink throughput.

    Parameters
    ----------
    smoothing:
        EWMA coefficient in (0, 1]; 1 means "trust only the latest sample"
        (the behaviour assumed by the paper's O(1) switching argument), lower
        values smooth out measurement noise.
    initial_mbps:
        Optional prior estimate before any observation arrives.
    """

    def __init__(self, smoothing: float = 1.0, initial_mbps: Optional[float] = None):
        require_between(smoothing, 1e-6, 1.0, "smoothing")
        self.smoothing = float(smoothing)
        self._estimate: Optional[float] = None
        self._history: List[float] = []
        if initial_mbps is not None:
            require_positive(initial_mbps, "initial_mbps")
            self._estimate = float(initial_mbps)

    @property
    def estimate_mbps(self) -> Optional[float]:
        """Current throughput estimate, or ``None`` before any observation."""
        return self._estimate

    @property
    def num_observations(self) -> int:
        """Number of throughput measurements consumed so far."""
        return len(self._history)

    @property
    def history(self) -> List[float]:
        """Copy of all observed raw measurements (Mbps)."""
        return list(self._history)

    def observe(self, uplink_mbps: float) -> float:
        """Consume one measurement and return the updated estimate."""
        require_positive(uplink_mbps, "uplink_mbps")
        self._history.append(float(uplink_mbps))
        if self._estimate is None:
            self._estimate = float(uplink_mbps)
        else:
            self._estimate = (
                self.smoothing * float(uplink_mbps)
                + (1.0 - self.smoothing) * self._estimate
            )
        return self._estimate

    def reset(self) -> None:
        """Forget all observations and the current estimate."""
        self._estimate = None
        self._history.clear()
