"""Radio transmission power models (Huang et al., MobiSys'12).

The paper estimates the edge device's transmission power ``P_Tx`` "using the
power models proposed in [13], which estimates the power consumption based on
the value of tu and the wireless technology used."  Reference [13] (Huang et
al., "A Close Examination of Performance and Power Characteristics of 4G LTE
Networks") fits linear uplink power models of the form

    P_Tx(tu) = alpha_u * tu + beta        [mW, with tu in Mbps]

for LTE, WiFi and 3G.  The published coefficients are reproduced below; the
library exposes them in SI watts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.utils.units import milliwatts_to_watts
from repro.utils.validation import require_non_negative

#: Published uplink coefficients (alpha_u in mW per Mbps, beta in mW).
HUANG_COEFFICIENTS_MILLIWATTS: Dict[str, Tuple[float, float]] = {
    "lte": (438.39, 1288.04),
    "wifi": (283.17, 132.86),
    "3g": (868.98, 817.88),
}

#: Wireless technologies the library understands.
SUPPORTED_TECHNOLOGIES = tuple(sorted(HUANG_COEFFICIENTS_MILLIWATTS))


@dataclass(frozen=True)
class RadioPowerModel:
    """Linear uplink power model ``P(tu) = alpha * tu + beta``.

    Parameters
    ----------
    technology:
        Human-readable technology label (``"lte"``, ``"wifi"``, ``"3g"`` or a
        custom name).
    alpha_w_per_mbps:
        Throughput-dependent coefficient in watts per Mbps.
    beta_w:
        Fixed radio power in watts while transmitting.
    """

    technology: str
    alpha_w_per_mbps: float
    beta_w: float

    def __post_init__(self) -> None:
        require_non_negative(self.alpha_w_per_mbps, "alpha_w_per_mbps")
        require_non_negative(self.beta_w, "beta_w")

    def power_w(self, uplink_mbps: float) -> float:
        """Transmission power in watts at the given uplink throughput."""
        require_non_negative(uplink_mbps, "uplink_mbps")
        return self.alpha_w_per_mbps * uplink_mbps + self.beta_w

    def transmission_energy_j(self, uplink_mbps: float, duration_s: float) -> float:
        """Energy of a transmission lasting ``duration_s`` seconds."""
        require_non_negative(duration_s, "duration_s")
        return self.power_w(uplink_mbps) * duration_s

    def to_dict(self) -> Dict:
        return {
            "technology": self.technology,
            "alpha_w_per_mbps": self.alpha_w_per_mbps,
            "beta_w": self.beta_w,
        }

    @classmethod
    def for_technology(cls, technology: str) -> "RadioPowerModel":
        """Power model for a supported wireless technology.

        The coefficients are the uplink fits published by Huang et al.
        (MobiSys'12), converted from milliwatts to watts.
        """
        key = technology.strip().lower()
        if key not in HUANG_COEFFICIENTS_MILLIWATTS:
            raise ValueError(
                f"unsupported wireless technology {technology!r}; "
                f"supported: {SUPPORTED_TECHNOLOGIES}"
            )
        alpha_mw, beta_mw = HUANG_COEFFICIENTS_MILLIWATTS[key]
        return cls(
            technology=key,
            alpha_w_per_mbps=milliwatts_to_watts(alpha_mw),
            beta_w=milliwatts_to_watts(beta_mw),
        )
