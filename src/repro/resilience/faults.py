"""Deterministic fault injection for resilience tests and chaos drills.

A :class:`FaultInjector` forces the failure modes the degradation ladder
exists for — Cholesky :class:`~numpy.linalg.LinAlgError`, non-finite
objective values, flaky objective functions, and a process kill after
evaluation N — at exact, reproducible points, so the test suite and the
chaos drills (``tools/search_chaos.py``, ``tools/distributed_smoke.py``)
can assert recovery behaviour rather than hope for natural failures.

Injection is process-global and *off* by default: the consult sites in
:mod:`repro.optim.gp` and :mod:`repro.optim.mobo` are a single module
attribute read plus a ``None`` check, so production searches pay nothing.
Install an injector for a scope with::

    with faults.inject(FaultInjector(linalg_failures=3)):
        run_search(...)

or across process boundaries with environment variables (read once per
search by :func:`install_from_env`):

``REPRO_FAULT_LINALG``
    int — fail the next N Cholesky factorisations.
``REPRO_FAULT_NAN_EVALS``
    comma-separated evaluation indices whose objectives become NaN.
``REPRO_FAULT_OBJECTIVE``
    int — make the next N objective-function calls raise.
``REPRO_FAULT_KILL_AT_EVAL``
    int — SIGKILL the process after N evaluations complete (checkpoints
    already flushed for them survive; that is the point).
``REPRO_FAULT_HANG_AT_EVAL`` / ``REPRO_FAULT_HANG_SECONDS``
    int / float — wedge the process (a long ``time.sleep``) after N
    evaluations complete, for ``REPRO_FAULT_HANG_SECONDS`` seconds
    (default 3600).  This is how ``tools/campaign_chaos.py`` manufactures
    the cell a :func:`~repro.campaign.supervisor.deadline` watchdog must
    kill.
``REPRO_FAULT_TORN_WRITE``
    int — the next N store/audit appends write only half their line and
    then die (:class:`KilledByFault`), leaving a torn record for the
    tolerant scanner and ``repro store fsck`` to deal with.
``REPRO_FAULT_ENOSPC``
    int — the next N appends fail with ``OSError(ENOSPC)`` before writing
    a byte, as if the disk filled up.
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Set

#: Environment variables understood by :func:`install_from_env`.
ENV_LINALG = "REPRO_FAULT_LINALG"
ENV_NAN_EVALS = "REPRO_FAULT_NAN_EVALS"
ENV_OBJECTIVE = "REPRO_FAULT_OBJECTIVE"
ENV_KILL_AT_EVAL = "REPRO_FAULT_KILL_AT_EVAL"
ENV_HANG_AT_EVAL = "REPRO_FAULT_HANG_AT_EVAL"
ENV_HANG_SECONDS = "REPRO_FAULT_HANG_SECONDS"
ENV_TORN_WRITE = "REPRO_FAULT_TORN_WRITE"
ENV_ENOSPC = "REPRO_FAULT_ENOSPC"

#: Accepted kill behaviours: ``"sigkill"`` is a real crash (for subprocess
#: drills), ``"raise"`` throws :class:`KilledByFault` (for in-process tests).
KILL_MODES = ("sigkill", "raise")


class KilledByFault(BaseException):
    """Simulated process death for in-process tests.

    Derives from :class:`BaseException` so ordinary ``except Exception``
    recovery layers (e.g. the campaign worker's error envelopes) treat it
    exactly like a real SIGKILL: they never see it.
    """


class FaultInjector:
    """Deterministic fault source consulted by the search internals.

    Parameters
    ----------
    linalg_failures:
        Number of upcoming Cholesky factorisations to fail with a
        :class:`numpy.linalg.LinAlgError` (each consult decrements).
    nan_evaluations:
        Evaluation indices (0-based, in evaluation order) whose objective
        vectors are replaced with NaN.
    objective_failures:
        Number of upcoming objective-function calls to fail with a
        :class:`RuntimeError` (exercises retry-with-backoff).
    kill_at_evaluation:
        Kill the process after this many evaluations have completed
        (i.e. right after evaluation index ``kill_at_evaluation - 1``).
    kill_mode:
        ``"sigkill"`` (default) or ``"raise"``; see :data:`KILL_MODES`.
    hang_at_evaluation / hang_seconds:
        Wedge the process (``time.sleep(hang_seconds)``) after this many
        evaluations complete — the overrunning cell a campaign deadline
        watchdog must kill.  Checked before the kill switch.
    torn_appends:
        Number of upcoming store/audit appends to tear: half the line is
        written, then the writer dies with :class:`KilledByFault`.
    enospc_appends:
        Number of upcoming appends to fail with ``OSError(ENOSPC)``
        before a byte is written.
    """

    def __init__(
        self,
        linalg_failures: int = 0,
        nan_evaluations: Sequence[int] = (),
        objective_failures: int = 0,
        kill_at_evaluation: Optional[int] = None,
        kill_mode: str = "sigkill",
        hang_at_evaluation: Optional[int] = None,
        hang_seconds: float = 3600.0,
        torn_appends: int = 0,
        enospc_appends: int = 0,
    ):
        if kill_mode not in KILL_MODES:
            raise ValueError(f"kill_mode must be one of {KILL_MODES}, got {kill_mode!r}")
        self.linalg_failures = int(linalg_failures)
        self.nan_evaluations: Set[int] = {int(i) for i in nan_evaluations}
        self.objective_failures = int(objective_failures)
        self.kill_at_evaluation = (
            None if kill_at_evaluation is None else int(kill_at_evaluation)
        )
        self.kill_mode = kill_mode
        self.hang_at_evaluation = (
            None if hang_at_evaluation is None else int(hang_at_evaluation)
        )
        self.hang_seconds = float(hang_seconds)
        self.torn_appends = int(torn_appends)
        self.enospc_appends = int(enospc_appends)

    # ------------------------------------------------------------- consults
    def take_linalg_fault(self) -> bool:
        """Whether the next Cholesky factorisation should fail."""
        if self.linalg_failures > 0:
            self.linalg_failures -= 1
            return True
        return False

    def take_nan_objectives(self, evaluation_index: int) -> bool:
        """Whether this evaluation's objectives should become NaN."""
        return int(evaluation_index) in self.nan_evaluations

    def take_objective_fault(self) -> bool:
        """Whether the next objective-function call should raise."""
        if self.objective_failures > 0:
            self.objective_failures -= 1
            return True
        return False

    def take_torn_append(self) -> bool:
        """Whether the next append should tear (half-write, then die)."""
        if self.torn_appends > 0:
            self.torn_appends -= 1
            return True
        return False

    def take_enospc(self) -> bool:
        """Whether the next append should fail as if the disk filled up."""
        if self.enospc_appends > 0:
            self.enospc_appends -= 1
            return True
        return False

    def on_evaluation_complete(self, evaluation_index: int) -> None:
        """Kill switch: called after each evaluation (checkpoint included)."""
        if (
            self.hang_at_evaluation is not None
            and int(evaluation_index) + 1 >= self.hang_at_evaluation
        ):
            # wedge, do not die: the point is to overrun a deadline.  The
            # sleep is a blocking system call, so the SIGALRM watchdog
            # interrupts it immediately.
            time.sleep(self.hang_seconds)
        if (
            self.kill_at_evaluation is not None
            and int(evaluation_index) + 1 >= self.kill_at_evaluation
        ):
            if self.kill_mode == "raise":
                raise KilledByFault(
                    f"injected kill after evaluation {evaluation_index}"
                )
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover


#: The process-global injector; ``None`` means faults are off.
_ACTIVE: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    """The currently-installed injector, if any."""
    return _ACTIVE


def install(injector: Optional[FaultInjector]) -> None:
    """Install (or with ``None``, clear) the process-global injector."""
    global _ACTIVE
    _ACTIVE = injector


@contextmanager
def inject(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Scoped installation — the canonical way to use faults in tests."""
    previous = _ACTIVE
    install(injector)
    try:
        yield injector
    finally:
        install(previous)


def install_from_env(environ=os.environ) -> Optional[FaultInjector]:
    """Install an injector described by ``REPRO_FAULT_*`` variables.

    Returns the installed injector, or ``None`` when no fault variable is
    set (an already-installed injector is left untouched either way, so
    programmatic injection always wins over the environment).
    """
    if _ACTIVE is not None:
        return _ACTIVE
    linalg = int(environ.get(ENV_LINALG, "0") or "0")
    objective = int(environ.get(ENV_OBJECTIVE, "0") or "0")
    raw_nans = environ.get(ENV_NAN_EVALS, "")
    nans = [int(part) for part in raw_nans.split(",") if part.strip()]
    raw_kill = environ.get(ENV_KILL_AT_EVAL, "")
    kill_at = int(raw_kill) if raw_kill.strip() else None
    raw_hang = environ.get(ENV_HANG_AT_EVAL, "")
    hang_at = int(raw_hang) if raw_hang.strip() else None
    hang_seconds = float(environ.get(ENV_HANG_SECONDS, "3600") or "3600")
    torn = int(environ.get(ENV_TORN_WRITE, "0") or "0")
    enospc = int(environ.get(ENV_ENOSPC, "0") or "0")
    if not (
        linalg
        or objective
        or nans
        or kill_at is not None
        or hang_at is not None
        or torn
        or enospc
    ):
        return None
    injector = FaultInjector(
        linalg_failures=linalg,
        nan_evaluations=nans,
        objective_failures=objective,
        kill_at_evaluation=kill_at,
        kill_mode="sigkill",
        hang_at_evaluation=hang_at,
        hang_seconds=hang_seconds,
        torn_appends=torn,
        enospc_appends=enospc,
    )
    install(injector)
    return injector
