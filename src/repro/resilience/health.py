"""Structured health events for degraded-but-alive searches.

The numerical degradation ladder (:mod:`repro.optim.gp`,
:mod:`repro.optim.gp_bank`, :mod:`repro.optim.mobo`) never lets a search
crash on a recoverable condition — it falls back.  Every fallback is
recorded as a :class:`HealthEvent` in a :class:`HealthLog` so a degraded
run is *visible*: the log's counters ride on
:class:`~repro.api.envelopes.SearchOutcome` (fingerprint-neutral, like the
front history) and surface in ``repro report``.

Health codes
------------
======================== ====================================================
code                     meaning
======================== ====================================================
H_JITTER_ESCALATED       a Cholesky factorisation only succeeded after the
                         diagonal jitter was escalated (x10 up to a cap)
H_EXACT_REFIT            an incremental factor append failed; the bank
                         refit the full history from scratch instead
H_HETEROGENEOUS_FALLBACK the shared-factor fit failed even with escalated
                         jitter; per-objective GPs with escalated noise
                         were fit independently
H_RANDOM_ACQUISITION     the surrogate/acquisition stage failed outright;
                         that iteration's candidates were chosen at random
H_OBJECTIVE_QUARANTINED  an objective function returned non-finite (or
                         empty) values; the evaluation was recorded but
                         excluded from the archive and the surrogates
H_OBJECTIVE_RETRY        a flaky objective function raised and was retried
H_CHECKPOINT_SAVED       an in-search checkpoint was flushed to disk
H_CHECKPOINT_CORRUPT     a checkpoint file existed but could not be read;
                         the search started from evaluation 0
H_RESUMED                a search resumed from a checkpoint, replaying the
                         recorded evaluations through the engine cache
H_RESUME_DRIFT           a replayed evaluation (or the RNG state) diverged
                         from the checkpointed history — the environment
                         changed between runs
======================== ====================================================

This mirrors the campaign service's ``E_*`` error-code scheme
(:mod:`repro.campaign.errors`): ``E_*`` codes describe *failed cells*,
``H_*`` codes describe *degraded-but-completed searches*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.utils.serialization import append_jsonl_atomic, to_jsonable

#: Every known health code with a one-line description (the docs table and
#: ``repro report`` legends are generated from this mapping).
HEALTH_CODES: Dict[str, str] = {
    "H_JITTER_ESCALATED": "Cholesky succeeded only after jitter escalation",
    "H_EXACT_REFIT": "incremental append failed; refit from scratch",
    "H_HETEROGENEOUS_FALLBACK": "shared fit failed; per-objective GPs fit independently",
    "H_RANDOM_ACQUISITION": "surrogate stage failed; iteration fell back to random sampling",
    "H_OBJECTIVE_QUARANTINED": "non-finite objectives recorded but excluded from archive/GP",
    "H_OBJECTIVE_RETRY": "flaky objective function raised and was retried",
    "H_CHECKPOINT_SAVED": "in-search checkpoint flushed to disk",
    "H_CHECKPOINT_CORRUPT": "unreadable checkpoint ignored; search started fresh",
    "H_RESUMED": "search resumed from checkpoint via engine-cache replay",
    "H_RESUME_DRIFT": "replayed evaluation diverged from the checkpointed history",
}


@dataclass
class HealthEvent:
    """One structured record of a resilience fallback firing."""

    code: str
    message: str = ""
    time_s: float = 0.0
    context: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in HEALTH_CODES:
            raise ValueError(
                f"unknown health code {self.code!r}; "
                f"known codes: {sorted(HEALTH_CODES)}"
            )
        if not self.time_s:
            self.time_s = time.time()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "time_s": self.time_s,
            "context": to_jsonable(self.context),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HealthEvent":
        return cls(
            code=str(data["code"]),
            message=str(data.get("message", "")),
            time_s=float(data.get("time_s", 0.0)),
            context=dict(data.get("context", {})),
        )


class HealthLog:
    """In-memory event list with optional JSONL persistence.

    A log is cheap enough to create unconditionally: recording is an
    append to a Python list (plus one atomic JSONL line when a sink path
    is attached), and the healthy search path records nothing at all —
    the <2% hot-path overhead budget is enforced by
    ``benchmarks/bench_gp_hotpath.py``.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.events: List[HealthEvent] = []
        self.path: Optional[Path] = Path(path) if path is not None else None

    def attach(self, path: Union[str, Path]) -> None:
        """Persist subsequent (and already-recorded) events to ``path``."""
        self.path = Path(path)
        for event in self.events:
            append_jsonl_atomic(self.path, event.to_dict())

    def record(self, code: str, message: str = "", **context: Any) -> HealthEvent:
        """Record one event (and persist it when a sink is attached)."""
        event = HealthEvent(code=code, message=message, context=context)
        self.events.append(event)
        if self.path is not None:
            append_jsonl_atomic(self.path, event.to_dict())
        return event

    def counters(self) -> Dict[str, int]:
        """Event counts by code (sorted; the ``SearchOutcome.health`` field)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.code] = counts.get(event.code, 0) + 1
        return dict(sorted(counts.items()))

    def count(self, code: str) -> int:
        """Number of recorded events with ``code``."""
        return sum(1 for event in self.events if event.code == code)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        # A log is truthy as an *object* even when empty, so `log or ...`
        # style defaults never silently replace an attached log.
        return True


def summarize_health(counter_maps: Iterable[Mapping[str, int]]) -> Dict[str, int]:
    """Merge per-outcome health counters into one campaign-level tally."""
    totals: Dict[str, int] = {}
    for counters in counter_maps:
        for code, count in (counters or {}).items():
            totals[str(code)] = totals.get(str(code), 0) + int(count)
    return dict(sorted(totals.items()))
