"""In-search resilience: health telemetry, checkpoints and fault injection.

Three cooperating pieces make a search survivable end to end (see
``docs/robustness.md``):

* :mod:`~repro.resilience.health` — structured ``H_*`` events recording
  every degradation-ladder fallback, with counters that ride on
  :class:`~repro.api.envelopes.SearchOutcome`;
* :mod:`~repro.resilience.checkpoint` — crash-safe per-fingerprint
  snapshots of the evaluated history, resumed by deterministic replay
  through the evaluation-engine cache;
* :mod:`~repro.resilience.faults` — a deterministic fault injector
  (forced ``LinAlgError``, NaN objectives, process kill at evaluation N)
  driving the tests and the chaos drills.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_FILENAME,
    DEFAULT_CHECKPOINT_EVERY,
    CheckpointRecord,
    CheckpointRecorder,
    SearchCheckpoint,
)
from repro.resilience.faults import FaultInjector, KilledByFault
from repro.resilience.health import (
    HEALTH_CODES,
    HealthEvent,
    HealthLog,
    summarize_health,
)

__all__ = [
    "CHECKPOINT_FILENAME",
    "DEFAULT_CHECKPOINT_EVERY",
    "CheckpointRecord",
    "CheckpointRecorder",
    "SearchCheckpoint",
    "FaultInjector",
    "KilledByFault",
    "HEALTH_CODES",
    "HealthEvent",
    "HealthLog",
    "summarize_health",
]
