"""Crash-safe in-search checkpointing with deterministic resume-by-replay.

A :class:`CheckpointRecorder` taps a search's per-evaluation progress
stream and flushes a :class:`SearchCheckpoint` — the evaluated (candidate,
features, objectives, metadata, RNG state) history — every K evaluations
via the shared atomic temp-write+rename
(:func:`repro.utils.serialization.atomic_write_text`), into a
per-fingerprint directory::

    <checkpoint_dir>/<request fingerprint>/checkpoint.json
    <checkpoint_dir>/<request fingerprint>/health.jsonl

Resume is **replay, not state surgery**: searches are pure functions of
their request (seeded sampling, deterministic costing), so
``run_search(checkpoint_dir=..., resume=True)`` replays the recorded
candidates through the :class:`~repro.api.engine.EvaluationEngine` cache
in one batched evaluation and then re-runs the strategy from evaluation 0
— every recorded evaluation becomes a cache hit, and the resumed search
is bitwise-identical to an uninterrupted one (the incremental-Cholesky
factor, the RNG stream and the candidate sequence are all regenerated,
never restored).  The checkpointed RNG state is used as a *drift guard*:
on replay the live generator state is compared against the recorded one
at the recorded evaluation count, and any divergence (changed library,
changed environment) is surfaced as an ``H_RESUME_DRIFT`` health event
rather than silently producing a franken-run.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.resilience.health import HealthLog
from repro.utils.serialization import atomic_write_text, to_jsonable

#: File name of the snapshot inside a per-fingerprint checkpoint directory.
CHECKPOINT_FILENAME = "checkpoint.json"

#: File name of the persisted health-event stream next to the snapshot.
HEALTH_LOG_FILENAME = "health.jsonl"

#: Snapshot schema version (independent of the envelope schema).
CHECKPOINT_SCHEMA_VERSION = 1

#: Default flush period, in evaluations.
DEFAULT_CHECKPOINT_EVERY = 10


@dataclass
class CheckpointRecord:
    """One evaluated candidate as recorded in a checkpoint."""

    genotype: Tuple[int, ...]
    features: Tuple[float, ...]
    objectives: Tuple[float, ...]
    index: int
    metadata: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "genotype": list(self.genotype),
            "features": list(self.features),
            "objectives": list(self.objectives),
            "index": self.index,
            "metadata": to_jsonable(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CheckpointRecord":
        return cls(
            genotype=tuple(int(g) for g in data["genotype"]),
            features=tuple(float(f) for f in data.get("features", [])),
            objectives=tuple(float(o) for o in data["objectives"]),
            index=int(data.get("index", 0)),
            metadata=dict(data.get("metadata", {})),
        )


@dataclass
class SearchCheckpoint:
    """The evaluated history of one (possibly interrupted) search."""

    fingerprint: str
    records: List[CheckpointRecord] = field(default_factory=list)
    rng_state: Optional[Dict[str, Any]] = None
    complete: bool = False
    schema_version: int = CHECKPOINT_SCHEMA_VERSION

    @property
    def num_evaluations(self) -> int:
        return len(self.records)

    def genotypes(self) -> List[Tuple[int, ...]]:
        """The recorded candidate sequence (replay order)."""
        return [record.genotype for record in self.records]

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "fingerprint": self.fingerprint,
            "complete": self.complete,
            "num_evaluations": self.num_evaluations,
            "rng_state": to_jsonable(self.rng_state) if self.rng_state else None,
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchCheckpoint":
        version = int(data.get("schema_version", CHECKPOINT_SCHEMA_VERSION))
        if version < 1 or version > CHECKPOINT_SCHEMA_VERSION:
            raise ValueError(
                f"cannot read checkpoint with schema_version={version}; "
                f"this library supports versions 1..{CHECKPOINT_SCHEMA_VERSION}"
            )
        return cls(
            fingerprint=str(data.get("fingerprint", "")),
            records=[CheckpointRecord.from_dict(r) for r in data.get("records", [])],
            rng_state=data.get("rng_state"),
            complete=bool(data.get("complete", False)),
            schema_version=version,
        )

    # ------------------------------------------------------------ persistence
    @staticmethod
    def cell_dir(checkpoint_dir: Union[str, Path], fingerprint: str) -> Path:
        """The per-fingerprint directory a search checkpoints into."""
        return Path(checkpoint_dir) / fingerprint

    def save(self, cell_dir: Union[str, Path]) -> Path:
        """Atomically write the snapshot (temp file + rename)."""
        path = Path(cell_dir) / CHECKPOINT_FILENAME
        atomic_write_text(path, json.dumps(self.to_dict(), sort_keys=True) + "\n")
        return path

    @classmethod
    def load(
        cls,
        cell_dir: Union[str, Path],
        health: Optional[HealthLog] = None,
    ) -> Optional["SearchCheckpoint"]:
        """Read a snapshot; ``None`` when absent or unreadable.

        Corruption is survivable by design (the atomic writer never leaves
        a torn file, but disks and humans do): an unreadable checkpoint is
        reported as ``H_CHECKPOINT_CORRUPT`` and ignored, so the search
        simply starts from evaluation 0.
        """
        path = Path(cell_dir) / CHECKPOINT_FILENAME
        if not path.is_file():
            return None
        try:
            return cls.from_dict(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, ValueError, KeyError, TypeError) as error:
            if health is not None:
                health.record(
                    "H_CHECKPOINT_CORRUPT",
                    f"ignoring unreadable checkpoint {path}: {error}",
                    path=str(path),
                )
            return None

    @staticmethod
    def discard(checkpoint_dir: Union[str, Path], fingerprint: str) -> None:
        """Remove a cell's checkpoint directory (idempotent)."""
        shutil.rmtree(
            SearchCheckpoint.cell_dir(checkpoint_dir, fingerprint),
            ignore_errors=True,
        )


class CheckpointRecorder:
    """Streams a search's evaluations into periodic atomic snapshots.

    Wired into the progress-callback chain by
    :func:`repro.api.session.run_search`; strategy loops additionally
    :meth:`bind_rng` their generator so each flush can snapshot its state.

    Parameters
    ----------
    cell_dir:
        The per-fingerprint directory snapshots are written into.
    fingerprint:
        The request fingerprint (stored in the snapshot for sanity checks).
    feature_fn / objectives_fn:
        Extractors turning a progress event — ``(genotype, evaluation)`` —
        into the feature and objective vectors recorded for replay.
    every:
        Flush period in evaluations (``0`` flushes only on finalize).
    health:
        Health log receiving ``H_CHECKPOINT_SAVED`` / ``H_RESUME_DRIFT``.
    resume_from:
        The checkpoint this run was resumed from, if any; replayed
        evaluations are verified against it (drift guard).
    """

    def __init__(
        self,
        cell_dir: Union[str, Path],
        fingerprint: str,
        feature_fn: Callable[[Any], Sequence[float]],
        objectives_fn: Callable[[Any], Sequence[float]],
        every: int = DEFAULT_CHECKPOINT_EVERY,
        health: Optional[HealthLog] = None,
        resume_from: Optional[SearchCheckpoint] = None,
    ):
        if every < 0:
            raise ValueError(f"every must be >= 0, got {every}")
        self.cell_dir = Path(cell_dir)
        self.fingerprint = str(fingerprint)
        self.feature_fn = feature_fn
        self.objectives_fn = objectives_fn
        self.every = int(every)
        self.health = health
        self.resume_from = resume_from
        self._records: List[CheckpointRecord] = []
        self._rng: Optional[np.random.Generator] = None
        self._drift_reported = False

    def bind_rng(self, rng: np.random.Generator) -> None:
        """Attach the strategy's generator so flushes snapshot its state."""
        self._rng = rng

    # ----------------------------------------------------------------- stream
    def on_evaluation(self, index: int, evaluation: Any) -> None:
        """Record one completed evaluation (and maybe flush)."""
        genotype = tuple(int(g) for g in evaluation.genotype)
        record = CheckpointRecord(
            genotype=genotype,
            features=tuple(float(f) for f in self.feature_fn(genotype)),
            objectives=tuple(float(o) for o in self.objectives_fn(evaluation)),
            index=int(index),
            metadata={"architecture": getattr(evaluation, "architecture_name", "")},
        )
        self._records.append(record)
        self._check_drift(record)
        if self.every > 0 and len(self._records) % self.every == 0:
            self.flush()

    def _check_drift(self, record: CheckpointRecord) -> None:
        """Compare a replayed evaluation against the checkpointed history."""
        if self.resume_from is None or self._drift_reported:
            return
        position = len(self._records) - 1
        if position < self.resume_from.num_evaluations:
            recorded = self.resume_from.records[position]
            if (
                record.genotype != recorded.genotype
                or record.objectives != recorded.objectives
            ):
                self._report_drift(
                    f"replayed evaluation {position} diverged from the "
                    f"checkpointed history",
                    index=position,
                )
                return
        if (
            len(self._records) == self.resume_from.num_evaluations
            and self.resume_from.rng_state is not None
            and self._rng is not None
        ):
            live = to_jsonable(self._rng.bit_generator.state)
            if live != self.resume_from.rng_state:
                self._report_drift(
                    "RNG state at the checkpointed evaluation count does not "
                    "match the recorded state",
                    index=len(self._records) - 1,
                )

    def _report_drift(self, message: str, **context: Any) -> None:
        self._drift_reported = True
        if self.health is not None:
            self.health.record("H_RESUME_DRIFT", message, **context)

    # ----------------------------------------------------------------- flush
    def _snapshot(self, complete: bool) -> SearchCheckpoint:
        rng_state = None
        if self._rng is not None:
            rng_state = to_jsonable(self._rng.bit_generator.state)
        return SearchCheckpoint(
            fingerprint=self.fingerprint,
            records=list(self._records),
            rng_state=rng_state,
            complete=complete,
        )

    def flush(self, complete: bool = False) -> Path:
        """Write the current history atomically; returns the path written."""
        path = self._snapshot(complete).save(self.cell_dir)
        if self.health is not None:
            self.health.record(
                "H_CHECKPOINT_SAVED",
                f"flushed {len(self._records)} evaluation(s)",
                num_evaluations=len(self._records),
                complete=complete,
            )
        return path

    def finalize(self) -> Path:
        """Mark the search complete and write the final snapshot."""
        return self.flush(complete=True)
