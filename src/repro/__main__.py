"""``python -m repro`` — dispatch to the :mod:`repro.cli` entry point."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
