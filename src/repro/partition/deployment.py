"""Deployment options for a DNN in a two-tier edge-cloud hierarchy.

A model can be executed entirely on the edge device (*All-Edge*), entirely in
the cloud after uploading the raw input (*All-Cloud*), or *split* after some
layer: the edge computes the prefix, transmits that layer's output feature
map, and the cloud computes the suffix.  :class:`DeploymentOption` names one
such choice; :class:`DeploymentMetrics` attaches the estimated latency and
energy of running an architecture under it for a given wireless channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, NamedTuple, Optional

#: Deployment kinds.
ALL_EDGE = "all_edge"
ALL_CLOUD = "all_cloud"
SPLIT = "split"

DEPLOYMENT_KINDS = (ALL_EDGE, ALL_CLOUD, SPLIT)


@dataclass(frozen=True)
class DeploymentOption:
    """One way of distributing a model between the edge and the cloud.

    Attributes
    ----------
    kind:
        ``"all_edge"``, ``"all_cloud"`` or ``"split"``.
    split_index:
        For splits, the index of the last layer executed on the edge; the
        output of that layer is what gets transmitted.  ``None`` otherwise.
    split_layer_name:
        Name of that layer (e.g. ``"pool5"``), for readability.
    """

    kind: str
    split_index: Optional[int] = None
    split_layer_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in DEPLOYMENT_KINDS:
            raise ValueError(
                f"kind must be one of {DEPLOYMENT_KINDS}, got {self.kind!r}"
            )
        if self.kind == SPLIT and self.split_index is None:
            raise ValueError("split deployments require a split_index")
        if self.kind != SPLIT and self.split_index is not None:
            raise ValueError(f"{self.kind} deployments must not carry a split_index")

    # ------------------------------------------------------------------ constructors
    @classmethod
    def all_edge(cls) -> "DeploymentOption":
        """Run every layer on the edge device.

        Returns the shared immutable module-level instance (the option
        carries no per-architecture state), so hot loops do not
        re-validate it.
        """
        return _ALL_EDGE

    @classmethod
    def all_cloud(cls) -> "DeploymentOption":
        """Upload the raw input and run every layer in the cloud.

        Returns the shared immutable instance, like :meth:`all_edge`.
        """
        return _ALL_CLOUD

    @classmethod
    def split_after(cls, index: int, layer_name: Optional[str] = None) -> "DeploymentOption":
        """Run layers ``0..index`` on the edge, transmit, finish in the cloud."""
        if index < 0:
            raise ValueError(f"split_index must be >= 0, got {index}")
        return cls(kind=SPLIT, split_index=int(index), split_layer_name=layer_name)

    # ------------------------------------------------------------------ helpers
    @property
    def is_split(self) -> bool:
        """Whether the option is a genuine split (not all-edge / all-cloud)."""
        return self.kind == SPLIT

    @property
    def label(self) -> str:
        """Short human-readable label (e.g. ``"All-Edge"`` or ``"Split@pool5"``)."""
        if self.kind == ALL_EDGE:
            return "All-Edge"
        if self.kind == ALL_CLOUD:
            return "All-Cloud"
        name = self.split_layer_name or f"layer{self.split_index}"
        return f"Split@{name}"

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "split_index": self.split_index,
            "split_layer_name": self.split_layer_name,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DeploymentOption":
        return cls(
            kind=data["kind"],
            split_index=data.get("split_index"),
            split_layer_name=data.get("split_layer_name"),
        )


#: Shared instances behind :meth:`DeploymentOption.all_edge` /
#: :meth:`DeploymentOption.all_cloud` (immutable, so sharing is safe).
_ALL_EDGE = DeploymentOption(kind=ALL_EDGE)
_ALL_CLOUD = DeploymentOption(kind=ALL_CLOUD)


class DeploymentMetrics(NamedTuple):
    """Estimated cost of running a model under one deployment option.

    The edge-side and communication components are stored separately so the
    runtime threshold analysis (paper §IV-E) can re-evaluate the same
    deployment under a different uplink throughput without re-running the
    layer predictors.  A named tuple rather than a dataclass: the batched
    evaluation path materialises one instance per deployment option per
    ``(candidate, channel)`` pair, so construction cost is on the hot path.

    Attributes
    ----------
    option:
        The deployment option being costed.
    latency_s / energy_j:
        Total end-to-end latency and edge-side energy (the paper's Eq. 1-2
        with the cloud terms neglected).
    edge_latency_s / edge_energy_j:
        On-device compute components.
    comm_latency_s / comm_energy_j:
        Communication components (zero for All-Edge).
    transferred_bytes:
        Bytes uploaded to the cloud (zero for All-Edge; the raw input size for
        All-Cloud; the split layer's output size for splits).
    """

    option: DeploymentOption
    latency_s: float
    energy_j: float
    edge_latency_s: float
    edge_energy_j: float
    comm_latency_s: float
    comm_energy_j: float
    transferred_bytes: float

    def to_dict(self) -> Dict:
        return {
            "option": self.option.to_dict(),
            "latency_s": self.latency_s,
            "energy_j": self.energy_j,
            "edge_latency_s": self.edge_latency_s,
            "edge_energy_j": self.edge_energy_j,
            "comm_latency_s": self.comm_latency_s,
            "comm_energy_j": self.comm_energy_j,
            "transferred_bytes": self.transferred_bytes,
        }
