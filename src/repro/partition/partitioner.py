"""Layer-partitioning engine (core of the paper's Algorithm 1).

Given per-layer latency/power predictions for an architecture on the edge
device and a wireless channel, the partitioner

1. identifies *candidate partition points* — layers whose output feature map
   is smaller than the network input (transmitting anything larger is always
   dominated by uploading the raw input, §II-A / Algorithm 1 line 9), and —
   for architectures carrying skip edges — whose boundary the dataflow graph
   marks as a legal single-tensor cut (see :mod:`repro.nn.graph`);
2. computes, for every candidate split as well as All-Edge and All-Cloud, the
   accumulated edge latency/energy plus the communication cost of shipping
   the split tensor (Algorithm 1 lines 10-12);
3. returns the option minimising each metric (lines 13-15).

The original engine assumed a linear layer chain; the graph-aware
enumeration generalises it so residual architectures (the ``resnet-v1``
search space) never propose a cut that would split a skip connection.
Linear architectures take exactly the same path and produce exactly the
same candidates as before.

The cloud's own compute cost is neglected by default, as in the paper; an
optional cloud predictor can be supplied for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.predictors import BaseLayerPredictor, LayerPrediction
from repro.nn.architecture import Architecture, LayerSummary
from repro.nn.graph import PartitionGraph
from repro.partition.deployment import DeploymentMetrics, DeploymentOption
from repro.wireless.channel import WirelessChannel


def identify_partition_points(
    summaries: Sequence[LayerSummary],
    input_bytes: float,
    require_shrinkage: bool = True,
    graph: Optional[PartitionGraph] = None,
) -> List[int]:
    """Indices of layers whose output may be transmitted to the cloud.

    A layer qualifies when it produces an activation tensor (structural layers
    such as ``flatten`` are skipped), when — with ``require_shrinkage`` true,
    the paper's rule — its output is strictly smaller than the raw network
    input, and when the optional :class:`~repro.nn.graph.PartitionGraph`
    allows a cut at its boundary (no skip edge spans it).  ``graph=None``
    keeps the original linear-chain behaviour: every boundary is legal.  The
    final layer is excluded: splitting after it is the All-Edge deployment.
    """
    candidates: List[int] = []
    last_index = len(summaries) - 1
    # Linear graphs allow every boundary — skip the per-boundary check so
    # chain architectures (the lens-vgg hot path) cost exactly what they
    # did under the original linear enumeration.
    check_graph = graph is not None and not graph.is_linear
    for summary in summaries:
        if summary.index >= last_index:
            continue
        if not summary.is_partition_candidate:
            continue
        if require_shrinkage and summary.output_bytes >= input_bytes:
            continue
        if check_graph and not graph.allows_cut_after(summary.index):
            continue
        candidates.append(summary.index)
    return candidates


@dataclass
class PartitionEvaluation:
    """Result of evaluating every deployment option for one architecture.

    Attributes
    ----------
    architecture_name:
        Name of the evaluated architecture.
    options:
        One :class:`DeploymentMetrics` per considered deployment option
        (All-Cloud, All-Edge and every candidate split), in that order.
    layer_latencies_s / layer_energies_j / layer_output_bytes:
        Per-layer predictions the costing was derived from, exposed for the
        per-layer analyses (Fig. 1) and the runtime threshold study.
    partition_point_indices:
        Indices returned by :func:`identify_partition_points`.
    """

    architecture_name: str
    options: Tuple[DeploymentMetrics, ...]
    layer_latencies_s: Tuple[float, ...]
    layer_energies_j: Tuple[float, ...]
    layer_output_bytes: Tuple[int, ...]
    partition_point_indices: Tuple[int, ...]

    def metrics_for(self, option: DeploymentOption) -> DeploymentMetrics:
        """Metrics of a specific deployment option."""
        for metrics in self.options:
            if metrics.option == option:
                return metrics
        raise KeyError(f"option {option.label} was not evaluated")

    @property
    def all_edge(self) -> DeploymentMetrics:
        """Metrics of the All-Edge deployment."""
        return self.metrics_for(DeploymentOption.all_edge())

    @property
    def all_cloud(self) -> DeploymentMetrics:
        """Metrics of the All-Cloud deployment."""
        return self.metrics_for(DeploymentOption.all_cloud())

    @property
    def split_options(self) -> Tuple[DeploymentMetrics, ...]:
        """Metrics of every genuine split option."""
        return tuple(m for m in self.options if m.option.is_split)

    @property
    def best_latency(self) -> DeploymentMetrics:
        """Deployment option minimising end-to-end latency."""
        return min(self.options, key=lambda m: m.latency_s)

    @property
    def best_energy(self) -> DeploymentMetrics:
        """Deployment option minimising edge energy."""
        return min(self.options, key=lambda m: m.energy_j)

    def best_for(self, metric: str) -> DeploymentMetrics:
        """Best deployment for ``"latency"`` or ``"energy"``."""
        if metric == "latency":
            return self.best_latency
        if metric == "energy":
            return self.best_energy
        raise ValueError(f"metric must be 'latency' or 'energy', got {metric!r}")

    def to_dict(self) -> Dict:
        return {
            "architecture_name": self.architecture_name,
            "options": [m.to_dict() for m in self.options],
            "partition_point_indices": list(self.partition_point_indices),
            "best_latency": self.best_latency.to_dict(),
            "best_energy": self.best_energy.to_dict(),
        }


class PartitionAnalyzer:
    """Evaluates all deployment options of an architecture (Algorithm 1).

    Parameters
    ----------
    predictor:
        Edge-device per-layer latency/power predictor.
    channel:
        Wireless channel carrying the expected design-time conditions
        (technology, uplink throughput, round-trip time).
    cloud_predictor:
        Optional cloud-side predictor.  When provided, the cloud compute
        latency of the offloaded suffix is added to split / All-Cloud
        latencies (cloud *energy* is never charged to the edge device).  The
        paper neglects cloud compute entirely, which is the default.
    require_shrinkage:
        Whether split candidates must shrink the data below the input size
        (the paper's rule).
    """

    def __init__(
        self,
        predictor: BaseLayerPredictor,
        channel: WirelessChannel,
        cloud_predictor: Optional[BaseLayerPredictor] = None,
        require_shrinkage: bool = True,
    ):
        self.predictor = predictor
        self.channel = channel
        self.cloud_predictor = cloud_predictor
        self.require_shrinkage = bool(require_shrinkage)

    # ------------------------------------------------------------------ helpers
    def _cloud_suffix_latency(
        self, architecture: Architecture, first_cloud_layer: int
    ) -> float:
        """Cloud compute latency of layers ``first_cloud_layer..end`` (optional)."""
        if self.cloud_predictor is None:
            return 0.0
        summaries = architecture.summarize()[first_cloud_layer:]
        return sum(
            self.cloud_predictor.predict_layer(summary).latency_s
            for summary in summaries
        )

    # ------------------------------------------------------------------ evaluation
    def evaluate(
        self,
        architecture: Architecture,
        predictions: Optional[Sequence[LayerPrediction]] = None,
        graph: Optional[PartitionGraph] = None,
    ) -> PartitionEvaluation:
        """Cost every deployment option of ``architecture``.

        Parameters
        ----------
        architecture:
            The candidate model, decoded with the *performance* input shape.
        predictions:
            Optional pre-computed per-layer predictions (used by the NAS loop
            to avoid re-running the predictors when evaluating the same
            architecture under several channels).
        graph:
            Optional cut-legality graph overriding the architecture's own
            (used by search spaces that constrain cuts beyond what the
            decoded skip edges express, via
            :meth:`repro.nn.spaces.SearchSpace.partition_graph`).
        """
        summaries = architecture.summarize()
        if predictions is None:
            predictions = self.predictor.predict_architecture(architecture)
        if len(predictions) != len(summaries):
            raise ValueError(
                f"expected {len(summaries)} layer predictions, got {len(predictions)}"
            )

        latencies = np.array([p.latency_s for p in predictions])
        energies = np.array([p.energy_j for p in predictions])
        output_bytes = np.array([s.output_bytes for s in summaries])
        cumulative_latency = np.cumsum(latencies)
        cumulative_energy = np.cumsum(energies)
        input_bytes = architecture.input_bytes

        options: List[DeploymentMetrics] = []

        # --- All-Cloud: upload the raw input, no edge compute.
        cloud_cost = self.channel.cost(input_bytes)
        options.append(
            DeploymentMetrics(
                option=DeploymentOption.all_cloud(),
                latency_s=cloud_cost.latency_s
                + self._cloud_suffix_latency(architecture, 0),
                energy_j=cloud_cost.energy_j,
                edge_latency_s=0.0,
                edge_energy_j=0.0,
                comm_latency_s=cloud_cost.latency_s,
                comm_energy_j=cloud_cost.energy_j,
                transferred_bytes=float(input_bytes),
            )
        )

        # --- All-Edge: run everything locally, no transmission.
        options.append(
            DeploymentMetrics(
                option=DeploymentOption.all_edge(),
                latency_s=float(cumulative_latency[-1]),
                energy_j=float(cumulative_energy[-1]),
                edge_latency_s=float(cumulative_latency[-1]),
                edge_energy_j=float(cumulative_energy[-1]),
                comm_latency_s=0.0,
                comm_energy_j=0.0,
                transferred_bytes=0.0,
            )
        )

        # --- Splits at every candidate partition point (graph-aware: cuts
        # that would split a skip connection are never proposed).
        partition_points = identify_partition_points(
            summaries,
            input_bytes,
            require_shrinkage=self.require_shrinkage,
            graph=graph if graph is not None else architecture.partition_graph(),
        )
        for index in partition_points:
            transfer_bytes = float(output_bytes[index])
            comm_cost = self.channel.cost(transfer_bytes)
            edge_latency = float(cumulative_latency[index])
            edge_energy = float(cumulative_energy[index])
            options.append(
                DeploymentMetrics(
                    option=DeploymentOption.split_after(index, summaries[index].name),
                    latency_s=edge_latency
                    + comm_cost.latency_s
                    + self._cloud_suffix_latency(architecture, index + 1),
                    energy_j=edge_energy + comm_cost.energy_j,
                    edge_latency_s=edge_latency,
                    edge_energy_j=edge_energy,
                    comm_latency_s=comm_cost.latency_s,
                    comm_energy_j=comm_cost.energy_j,
                    transferred_bytes=transfer_bytes,
                )
            )

        return PartitionEvaluation(
            architecture_name=architecture.name,
            options=tuple(options),
            layer_latencies_s=tuple(float(v) for v in latencies),
            layer_energies_j=tuple(float(v) for v in energies),
            layer_output_bytes=tuple(int(v) for v in output_bytes),
            partition_point_indices=tuple(partition_points),
        )

    def with_channel(self, channel: WirelessChannel) -> "PartitionAnalyzer":
        """Copy of this analyzer bound to a different wireless channel."""
        return PartitionAnalyzer(
            predictor=self.predictor,
            channel=channel,
            cloud_predictor=self.cloud_predictor,
            require_shrinkage=self.require_shrinkage,
        )
