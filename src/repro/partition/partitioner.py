"""Layer-partitioning engine (core of the paper's Algorithm 1).

Given per-layer latency/power predictions for an architecture on the edge
device and a wireless channel, the partitioner

1. identifies *candidate partition points* — layers whose output feature map
   is smaller than the network input (transmitting anything larger is always
   dominated by uploading the raw input, §II-A / Algorithm 1 line 9), and —
   for architectures carrying skip edges — whose boundary the dataflow graph
   marks as a legal single-tensor cut (see :mod:`repro.nn.graph`);
2. computes, for every candidate split as well as All-Edge and All-Cloud, the
   accumulated edge latency/energy plus the communication cost of shipping
   the split tensor (Algorithm 1 lines 10-12);
3. returns the option minimising each metric (lines 13-15).

The original engine assumed a linear layer chain; the graph-aware
enumeration generalises it so residual architectures (the ``resnet-v1``
search space) never propose a cut that would split a skip connection.
Linear architectures take exactly the same path and produce exactly the
same candidates as before.

The cloud's own compute cost is neglected by default, as in the paper; an
optional cloud predictor can be supplied for sensitivity studies.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.predictors import BaseLayerPredictor, LayerPrediction
from repro.nn.architecture import Architecture, LayerSummary
from repro.nn.graph import PartitionGraph
from repro.partition.deployment import DeploymentMetrics, DeploymentOption
from repro.utils.units import mbps_to_bytes_per_second
from repro.wireless.channel import WirelessChannel


def identify_partition_points(
    summaries: Sequence[LayerSummary],
    input_bytes: float,
    require_shrinkage: bool = True,
    graph: Optional[PartitionGraph] = None,
) -> List[int]:
    """Indices of layers whose output may be transmitted to the cloud.

    A layer qualifies when it produces an activation tensor (structural layers
    such as ``flatten`` are skipped), when — with ``require_shrinkage`` true,
    the paper's rule — its output is strictly smaller than the raw network
    input, and when the optional :class:`~repro.nn.graph.PartitionGraph`
    allows a cut at its boundary (no skip edge spans it).  ``graph=None``
    keeps the original linear-chain behaviour: every boundary is legal.  The
    final layer is excluded: splitting after it is the All-Edge deployment.
    """
    candidates: List[int] = []
    last_index = len(summaries) - 1
    # Linear graphs allow every boundary — skip the per-boundary check so
    # chain architectures (the lens-vgg hot path) cost exactly what they
    # did under the original linear enumeration.
    check_graph = graph is not None and not graph.is_linear
    for summary in summaries:
        if summary.index >= last_index:
            continue
        if not summary.is_partition_candidate:
            continue
        if require_shrinkage and summary.output_bytes >= input_bytes:
            continue
        if check_graph and not graph.allows_cut_after(summary.index):
            continue
        candidates.append(summary.index)
    return candidates


class PartitionEvaluation(NamedTuple):
    """Result of evaluating every deployment option for one architecture.

    Attributes
    ----------
    architecture_name:
        Name of the evaluated architecture.
    options:
        One :class:`DeploymentMetrics` per considered deployment option
        (All-Cloud, All-Edge and every candidate split), in that order.
    layer_latencies_s / layer_energies_j / layer_output_bytes:
        Per-layer predictions the costing was derived from, exposed for the
        per-layer analyses (Fig. 1) and the runtime threshold study.
    partition_point_indices:
        Indices returned by :func:`identify_partition_points`.
    """

    architecture_name: str
    options: Tuple[DeploymentMetrics, ...]
    layer_latencies_s: Tuple[float, ...]
    layer_energies_j: Tuple[float, ...]
    layer_output_bytes: Tuple[int, ...]
    partition_point_indices: Tuple[int, ...]

    def metrics_for(self, option: DeploymentOption) -> DeploymentMetrics:
        """Metrics of a specific deployment option."""
        for metrics in self.options:
            if metrics.option == option:
                return metrics
        raise KeyError(f"option {option.label} was not evaluated")

    @property
    def all_edge(self) -> DeploymentMetrics:
        """Metrics of the All-Edge deployment."""
        return self.metrics_for(DeploymentOption.all_edge())

    @property
    def all_cloud(self) -> DeploymentMetrics:
        """Metrics of the All-Cloud deployment."""
        return self.metrics_for(DeploymentOption.all_cloud())

    @property
    def split_options(self) -> Tuple[DeploymentMetrics, ...]:
        """Metrics of every genuine split option."""
        return tuple(m for m in self.options if m.option.is_split)

    @property
    def best_latency(self) -> DeploymentMetrics:
        """Deployment option minimising end-to-end latency."""
        return min(self.options, key=lambda m: m.latency_s)

    @property
    def best_energy(self) -> DeploymentMetrics:
        """Deployment option minimising edge energy."""
        return min(self.options, key=lambda m: m.energy_j)

    def best_for(self, metric: str) -> DeploymentMetrics:
        """Best deployment for ``"latency"`` or ``"energy"``."""
        if metric == "latency":
            return self.best_latency
        if metric == "energy":
            return self.best_energy
        raise ValueError(f"metric must be 'latency' or 'energy', got {metric!r}")

    def to_dict(self) -> Dict:
        return {
            "architecture_name": self.architecture_name,
            "options": [m.to_dict() for m in self.options],
            "partition_point_indices": list(self.partition_point_indices),
            "best_latency": self.best_latency.to_dict(),
            "best_energy": self.best_energy.to_dict(),
        }


class PartitionAnalyzer:
    """Evaluates all deployment options of an architecture (Algorithm 1).

    Parameters
    ----------
    predictor:
        Edge-device per-layer latency/power predictor.
    channel:
        Wireless channel carrying the expected design-time conditions
        (technology, uplink throughput, round-trip time).
    cloud_predictor:
        Optional cloud-side predictor.  When provided, the cloud compute
        latency of the offloaded suffix is added to split / All-Cloud
        latencies (cloud *energy* is never charged to the edge device).  The
        paper neglects cloud compute entirely, which is the default.
    require_shrinkage:
        Whether split candidates must shrink the data below the input size
        (the paper's rule).
    """

    def __init__(
        self,
        predictor: BaseLayerPredictor,
        channel: WirelessChannel,
        cloud_predictor: Optional[BaseLayerPredictor] = None,
        require_shrinkage: bool = True,
    ):
        self.predictor = predictor
        self.channel = channel
        self.cloud_predictor = cloud_predictor
        self.require_shrinkage = bool(require_shrinkage)

    # ------------------------------------------------------------------ helpers
    def _cloud_suffix_latencies(
        self, architecture: Architecture
    ) -> Optional[np.ndarray]:
        """Cloud compute latency of every layer suffix, or ``None``.

        ``suffix[i]`` is the summed cloud latency of layers ``i..end``
        (``suffix[num_layers] == 0``), computed as a single reversed
        cumulative sum of the cloud predictor's per-layer latencies instead
        of a ``summarize()[first:]`` re-walk per cut point.  Shared by the
        scalar and batched costing paths.
        """
        if self.cloud_predictor is None:
            return None
        predictions = self.cloud_predictor.predict_architecture(architecture)
        latencies = np.array([p.latency_s for p in predictions])
        suffix = np.zeros(latencies.shape[0] + 1)
        suffix[:-1] = latencies[::-1].cumsum()[::-1]
        return suffix

    # ------------------------------------------------------------------ evaluation
    def evaluate(
        self,
        architecture: Architecture,
        predictions: Optional[Sequence[LayerPrediction]] = None,
        graph: Optional[PartitionGraph] = None,
    ) -> PartitionEvaluation:
        """Cost every deployment option of ``architecture``.

        Parameters
        ----------
        architecture:
            The candidate model, decoded with the *performance* input shape.
        predictions:
            Optional pre-computed per-layer predictions (used by the NAS loop
            to avoid re-running the predictors when evaluating the same
            architecture under several channels).
        graph:
            Optional cut-legality graph overriding the architecture's own
            (used by search spaces that constrain cuts beyond what the
            decoded skip edges express, via
            :meth:`repro.nn.spaces.SearchSpace.partition_graph`).
        """
        summaries = architecture.summarize()
        if predictions is None:
            predictions = self.predictor.predict_architecture(architecture)
        if len(predictions) != len(summaries):
            raise ValueError(
                f"expected {len(summaries)} layer predictions, got {len(predictions)}"
            )

        latencies = np.array([p.latency_s for p in predictions])
        energies = np.array([p.energy_j for p in predictions])
        output_bytes = np.array([s.output_bytes for s in summaries])
        cumulative_latency = np.cumsum(latencies)
        cumulative_energy = np.cumsum(energies)
        input_bytes = architecture.input_bytes
        cloud_suffix = self._cloud_suffix_latencies(architecture)

        options: List[DeploymentMetrics] = []

        # --- All-Cloud: upload the raw input, no edge compute.
        cloud_cost = self.channel.cost(input_bytes)
        options.append(
            DeploymentMetrics(
                option=DeploymentOption.all_cloud(),
                latency_s=cloud_cost.latency_s
                + (float(cloud_suffix[0]) if cloud_suffix is not None else 0.0),
                energy_j=cloud_cost.energy_j,
                edge_latency_s=0.0,
                edge_energy_j=0.0,
                comm_latency_s=cloud_cost.latency_s,
                comm_energy_j=cloud_cost.energy_j,
                transferred_bytes=float(input_bytes),
            )
        )

        # --- All-Edge: run everything locally, no transmission.
        options.append(
            DeploymentMetrics(
                option=DeploymentOption.all_edge(),
                latency_s=float(cumulative_latency[-1]),
                energy_j=float(cumulative_energy[-1]),
                edge_latency_s=float(cumulative_latency[-1]),
                edge_energy_j=float(cumulative_energy[-1]),
                comm_latency_s=0.0,
                comm_energy_j=0.0,
                transferred_bytes=0.0,
            )
        )

        # --- Splits at every candidate partition point (graph-aware: cuts
        # that would split a skip connection are never proposed).
        partition_points = identify_partition_points(
            summaries,
            input_bytes,
            require_shrinkage=self.require_shrinkage,
            graph=graph if graph is not None else architecture.partition_graph(),
        )
        for index in partition_points:
            transfer_bytes = float(output_bytes[index])
            comm_cost = self.channel.cost(transfer_bytes)
            edge_latency = float(cumulative_latency[index])
            edge_energy = float(cumulative_energy[index])
            options.append(
                DeploymentMetrics(
                    option=DeploymentOption.split_after(index, summaries[index].name),
                    latency_s=edge_latency
                    + comm_cost.latency_s
                    + (
                        float(cloud_suffix[index + 1])
                        if cloud_suffix is not None
                        else 0.0
                    ),
                    energy_j=edge_energy + comm_cost.energy_j,
                    edge_latency_s=edge_latency,
                    edge_energy_j=edge_energy,
                    comm_latency_s=comm_cost.latency_s,
                    comm_energy_j=comm_cost.energy_j,
                    transferred_bytes=transfer_bytes,
                )
            )

        return PartitionEvaluation(
            architecture_name=architecture.name,
            options=tuple(options),
            layer_latencies_s=tuple(float(v) for v in latencies),
            layer_energies_j=tuple(float(v) for v in energies),
            layer_output_bytes=tuple(int(v) for v in output_bytes),
            partition_point_indices=tuple(partition_points),
        )

    def evaluate_batch(
        self,
        architectures: Sequence[Architecture],
        channels: Optional[Sequence[WirelessChannel]] = None,
        predictions_list: Optional[Sequence[Sequence[LayerPrediction]]] = None,
        graphs: Optional[Sequence[Optional[PartitionGraph]]] = None,
        predictions_array: Optional[np.ndarray] = None,
    ) -> List[List[PartitionEvaluation]]:
        """Array-based costing of a candidate pool under many channels.

        Semantically equivalent to calling :meth:`evaluate` (the scalar
        reference implementation) for every ``(architecture, channel)`` pair,
        but computed end to end on arrays: per-candidate latency/energy/
        output-byte vectors concatenate into one flat pool-wide axis, split
        costing (prefix sums, the shrinkage rule, the
        :class:`~repro.nn.graph.PartitionGraph` legal-cut mask and the
        channel cost model) is broadcast across every cut point of every
        candidate at once, and cloud-suffix latencies come from one reversed
        cumulative sum per candidate instead of a ``summarize()`` re-walk
        per cut.  Results match the scalar path to floating-point roundoff
        (<= 1e-9, asserted by ``benchmarks/bench_eval_batch.py`` and the
        hypothesis parity suite).

        Parameters
        ----------
        architectures:
            The candidate pool.
        channels:
            Wireless channels to cost under; defaults to the analyzer's own
            channel.  The per-candidate arrays are built once and shared.
        predictions_list:
            Optional pre-computed per-layer predictions, one sequence per
            architecture (e.g. from
            :meth:`~repro.hardware.predictors.BaseLayerPredictor.predict_batch`).
        graphs:
            Optional per-architecture cut-legality overrides (``None``
            entries fall back to each architecture's own graph).
        predictions_array:
            Optional raw ``(total_layers, 2)`` latency/power array matching
            ``predictions_list`` (the second return of
            :meth:`~repro.hardware.predictors.LayerPerformancePredictor.predict_pool`);
            skips the prediction-tuple-to-array conversion.

        Returns
        -------
        ``results[i][j]`` is the :class:`PartitionEvaluation` of
        ``architectures[i]`` under ``channels[j]``.
        """
        architectures = list(architectures)
        channels = [self.channel] if channels is None else list(channels)
        n = len(architectures)
        if n == 0 or not channels:
            return [[] for _ in range(n)]
        if predictions_list is None:
            predict_pool = getattr(self.predictor, "predict_pool", None)
            if predict_pool is not None:
                predictions_list, predictions_array = predict_pool(architectures)
            else:
                predictions_list = self.predictor.predict_batch(architectures)
        if graphs is None:
            graphs = [None] * n
        if len(predictions_list) != n or len(graphs) != n:
            raise ValueError(
                f"expected {n} prediction sequences and graphs, got "
                f"{len(predictions_list)} and {len(graphs)}"
            )

        # ---- channel-independent pool arrays (flat layer axis) ----------
        # All per-layer quantities are concatenated along one flat axis
        # (candidate i owns positions offsets[i]:offsets[i+1]) so every
        # numpy operation below runs once for the whole pool; per-candidate
        # 2-D padding would cost one small-array operation per candidate.
        summary_lists = [a.summarize() for a in architectures]
        lengths = [len(s) for s in summary_lists]
        offsets = [0]
        for count in lengths:
            offsets.append(offsets[-1] + count)
        for architecture, predictions, count in zip(
            architectures, predictions_list, lengths
        ):
            if len(predictions) != count:
                raise ValueError(
                    f"expected {count} layer predictions for "
                    f"{architecture.name}, got {len(predictions)}"
                )
        # The per-layer (latency, power) stream as a (total_layers, 2)
        # array: the predictor's raw pool array when supplied, otherwise one
        # conversion of the prediction tuples (LayerPrediction is a named
        # tuple; duck-typed prediction objects fall back to attribute access).
        if predictions_array is not None and predictions_array.shape == (
            offsets[-1],
            2,
        ):
            pairs = predictions_array
        else:
            flat_predictions = [
                p for predictions in predictions_list for p in predictions
            ]
            try:
                pairs = np.asarray(flat_predictions, dtype=float)
            except (TypeError, ValueError):
                pairs = None
            if pairs is None or pairs.ndim != 2 or pairs.shape[1] != 2:
                pairs = np.array(
                    [(p.latency_s, p.power_w) for p in flat_predictions],
                    dtype=float,
                )
        flat_latency = pairs[:, 0]
        # Per-layer energy is latency * power (LayerPrediction.energy_j),
        # one elementwise product for the whole pool.
        flat_energy = flat_latency * pairs[:, 1]

        # Per-candidate prefix sums: one flat cumsum, then subtract each
        # candidate's starting total.
        starts = np.array(offsets[:-1])
        last_positions = np.array(offsets[1:]) - 1
        cum_lat_all = np.cumsum(flat_latency)
        cum_en_all = np.cumsum(flat_energy)
        base_lat = np.repeat(np.concatenate(([0.0], cum_lat_all))[starts], lengths)
        base_en = np.repeat(np.concatenate(([0.0], cum_en_all))[starts], lengths)
        cumulative_latency = cum_lat_all - base_lat
        cumulative_energy = cum_en_all - base_en

        flat_bytes: List[int] = []
        flat_flags: List[bool] = []
        for summaries in summary_lists:
            for summary in summaries:
                flat_bytes.append(summary.output_bytes)
                flat_flags.append(summary.is_partition_candidate)
        bytes_array = np.array(flat_bytes, dtype=float)
        input_bytes = np.array(
            [a.input_bytes for a in architectures], dtype=float
        )

        # Legal-cut mask: the structural flag, the final-boundary exclusion,
        # the paper's shrinkage rule and the graph's single-tensor-cut mask,
        # all as pool-wide boolean vector operations.
        mask = np.array(flat_flags, dtype=bool)
        mask[last_positions] = False  # cutting after the last layer is All-Edge
        if self.require_shrinkage:
            mask &= bytes_array < np.repeat(input_bytes, lengths)
        for i, architecture in enumerate(architectures):
            graph = graphs[i]
            if graph is None:
                graph = architecture.partition_graph()
            if not graph.is_linear:
                mask[offsets[i] : offsets[i + 1] - 1] &= graph.legal_cut_mask()
        flat_cuts = np.flatnonzero(mask).tolist()

        # Cloud-suffix latencies for the whole pool: one batched cloud
        # prediction pass, then one reversed cumsum per candidate.
        if self.cloud_predictor is not None:
            cloud_suffixes: List[Optional[List[float]]] = []
            for cloud_preds in self.cloud_predictor.predict_batch(architectures):
                cloud_latencies = np.array([p.latency_s for p in cloud_preds])
                suffix = np.zeros(cloud_latencies.shape[0] + 1)
                suffix[:-1] = cloud_latencies[::-1].cumsum()[::-1]
                cloud_suffixes.append(suffix.tolist())
        else:
            cloud_suffixes = [None] * n

        # Per-candidate cut segments: flat positions (for array indexing),
        # relative indices (the split points) and shared DeploymentOptions,
        # concatenated pool-wide so each flat per-cut value list is later
        # extracted with a single itemgetter call per channel.
        split_option_cache: Dict[Tuple[int, str], DeploymentOption] = {}
        flat_split_options: List[DeploymentOption] = []
        cut_offsets: List[int] = [0]
        cut_tuples: List[Tuple[int, ...]] = []
        cursor = 0
        num_cuts = len(flat_cuts)
        for i in range(n):
            start = offsets[i]
            end = offsets[i + 1]
            summaries = summary_lists[i]
            rel_cuts: List[int] = []
            while cursor < num_cuts and flat_cuts[cursor] < end:
                index = flat_cuts[cursor] - start
                key = (index, summaries[index].name)
                option = split_option_cache.get(key)
                if option is None:
                    option = DeploymentOption.split_after(index, summaries[index].name)
                    split_option_cache[key] = option
                flat_split_options.append(option)
                rel_cuts.append(index)
                cursor += 1
            cut_offsets.append(cursor)
            cut_tuples.append(tuple(rel_cuts))
        if num_cuts == 1:
            only = flat_cuts[0]

            def flat_getter(values, _p=only):
                return (values[_p],)

        elif num_cuts:
            flat_getter = itemgetter(*flat_cuts)
        else:
            flat_getter = None

        lat_list = flat_latency.tolist()
        en_list = flat_energy.tolist()
        layer_latency_tuples = [
            tuple(lat_list[offsets[i] : offsets[i + 1]]) for i in range(n)
        ]
        layer_energy_tuples = [
            tuple(en_list[offsets[i] : offsets[i + 1]]) for i in range(n)
        ]
        layer_byte_tuples = [
            tuple(flat_bytes[offsets[i] : offsets[i + 1]]) for i in range(n)
        ]
        cum_lat_list = cumulative_latency.tolist()
        cum_en_list = cumulative_energy.tolist()
        all_edge_latency = cumulative_latency[last_positions].tolist()
        all_edge_energy = cumulative_energy[last_positions].tolist()
        bytes_floats = bytes_array.tolist()
        input_bytes_floats = input_bytes.tolist()
        names = [a.name for a in architectures]
        all_cloud_option = DeploymentOption.all_cloud()
        all_edge_option = DeploymentOption.all_edge()
        # Channel-independent per-cut value streams, extracted pool-wide in
        # one itemgetter call each.
        if flat_getter is not None:
            transferred_cuts = flat_getter(bytes_floats)
            edge_latency_cuts = flat_getter(cum_lat_list)
            edge_energy_cuts = flat_getter(cum_en_list)
        metrics = DeploymentMetrics._make
        has_cloud_suffix = self.cloud_predictor is not None

        # ---- per-channel broadcast costing ------------------------------
        results: List[List[PartitionEvaluation]] = [
            [None] * len(channels) for _ in range(n)  # type: ignore[list-item]
        ]
        for ci, channel in enumerate(channels):
            rate = mbps_to_bytes_per_second(channel.uplink_mbps)
            round_trip = channel.round_trip_s
            power = channel.transmission_power_w()
            transmission = bytes_array / rate
            comm_latency = transmission + round_trip
            comm_energy = power * transmission
            split_latency = (cumulative_latency + comm_latency).tolist()
            split_energy = (cumulative_energy + comm_energy).tolist()
            comm_latency_list = comm_latency.tolist()
            comm_energy_list = comm_energy.tolist()
            cloud_transmission = input_bytes / rate
            cloud_latency = (cloud_transmission + round_trip).tolist()
            cloud_energy = (power * cloud_transmission).tolist()

            # Every split option of every candidate, one map over the
            # pool-wide per-cut value streams; candidate i's splits are
            # flat_split_metrics[cut_offsets[i]:cut_offsets[i + 1]].
            if flat_getter is not None:
                split_latency_cuts = flat_getter(split_latency)
                if has_cloud_suffix:
                    split_latency_cuts = tuple(
                        value + cloud_suffixes[i][index + 1]
                        for i in range(n)
                        for value, index in zip(
                            split_latency_cuts[
                                cut_offsets[i] : cut_offsets[i + 1]
                            ],
                            cut_tuples[i],
                        )
                    )
                flat_split_metrics = list(
                    map(
                        metrics,
                        zip(
                            flat_split_options,
                            split_latency_cuts,
                            flat_getter(split_energy),
                            edge_latency_cuts,
                            edge_energy_cuts,
                            flat_getter(comm_latency_list),
                            flat_getter(comm_energy_list),
                            transferred_cuts,
                        ),
                    )
                )
            else:
                flat_split_metrics = []

            for i in range(n):
                suffix = cloud_suffixes[i]
                results[i][ci] = PartitionEvaluation(
                    names[i],
                    (
                        DeploymentMetrics(
                            all_cloud_option,
                            cloud_latency[i]
                            + (suffix[0] if suffix is not None else 0.0),
                            cloud_energy[i],
                            0.0,
                            0.0,
                            cloud_latency[i],
                            cloud_energy[i],
                            input_bytes_floats[i],
                        ),
                        DeploymentMetrics(
                            all_edge_option,
                            all_edge_latency[i],
                            all_edge_energy[i],
                            all_edge_latency[i],
                            all_edge_energy[i],
                            0.0,
                            0.0,
                            0.0,
                        ),
                        *flat_split_metrics[cut_offsets[i] : cut_offsets[i + 1]],
                    ),
                    layer_latency_tuples[i],
                    layer_energy_tuples[i],
                    layer_byte_tuples[i],
                    cut_tuples[i],
                )
        return results

    def with_channel(self, channel: WirelessChannel) -> "PartitionAnalyzer":
        """Copy of this analyzer bound to a different wireless channel."""
        return PartitionAnalyzer(
            predictor=self.predictor,
            channel=channel,
            cloud_predictor=self.cloud_predictor,
            require_shrinkage=self.require_shrinkage,
        )
