"""Edge/cloud layer-partitioning engine."""

from repro.nn.graph import PartitionGraph
from repro.partition.deployment import (
    ALL_CLOUD,
    ALL_EDGE,
    DEPLOYMENT_KINDS,
    SPLIT,
    DeploymentMetrics,
    DeploymentOption,
)
from repro.partition.partitioner import (
    PartitionAnalyzer,
    PartitionEvaluation,
    identify_partition_points,
)

__all__ = [
    "ALL_CLOUD",
    "ALL_EDGE",
    "DEPLOYMENT_KINDS",
    "SPLIT",
    "DeploymentMetrics",
    "DeploymentOption",
    "PartitionAnalyzer",
    "PartitionEvaluation",
    "PartitionGraph",
    "identify_partition_points",
]
