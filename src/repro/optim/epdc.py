"""Expected Pareto Distance Change acquisition and q-point batch selection.

The strategies in :mod:`repro.optim.acquisition` score candidates objective
by objective and never look at the front the search is actually trying to
grow.  EPDC (Valladares & Tovar's Expected Pareto Distance Change family)
closes that gap: it draws Monte-Carlo samples from the surrogate posterior
and scores each candidate by how far its sampled objective vectors are
expected to *move* the current non-dominated front — samples that fall
inside the dominated region contribute nothing, samples that would join the
front contribute their distance to it.

Two pieces live here:

* :func:`epdc_scores` — the front-aware acquisition value per pool
  candidate, computed from shared posterior draws
  (:func:`~repro.optim.acquisition.thompson_scores`, so the
  :class:`~repro.optim.gp_bank.GPBank` fast path is reused and bank-vs-list
  parity carries over);
* :func:`select_batch` — greedy sequential selection of ``q`` diverse
  candidates per iteration: each pick pays a similar-design penalty against
  the already-selected set (squared-exponential in encoding space), so one
  iteration emits a whole pool for
  :meth:`~repro.api.engine.EvaluationEngine.evaluate_batch` instead of a
  batch of one.

Both operate on *normalised* objectives (the MOBO loop fits its surrogates
on :func:`~repro.optim.scalarization.normalize_objectives` output), so
distances weigh every objective equally regardless of raw units.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.optim.acquisition import Models, thompson_scores
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive

#: Posterior draws per EPDC evaluation.  Each draw is one joint Thompson
#: sample over the whole pool, so the cost is ``num_samples`` bank draws —
#: cheap on the shared-Cholesky fast path.
DEFAULT_EPDC_SAMPLES = 16

#: Default similar-design penalty weight for :func:`select_batch`.  Tuned
#: (with the lengthscale below) on seeded full-budget lens-vgg searches:
#: half-weight penalties keep enough acquisition pressure that q-batches
#: beat one-at-a-time Thompson sampling at equal budget, where a full-unit
#: penalty over-diversifies (see ``benchmarks/bench_epdc.py``).
DEFAULT_BATCH_PENALTY = 0.5


def pareto_distance_contributions(
    samples: np.ndarray, front: np.ndarray
) -> np.ndarray:
    """Per-point expected-front-movement contribution of sampled objectives.

    ``samples`` is an ``(n, k)`` matrix of objective vectors and ``front``
    an ``(m, k)`` non-dominated reference front (both minimised, same
    units).  A sample dominated by — or equal to — some front point sits
    inside the already-claimed region and contributes ``0``; any other
    sample would join the front, and contributes its Euclidean distance to
    the nearest front point (how far it drags the front).  An empty front
    means everything is new territory: the contribution is then the
    sample's distance to the origin-anchored ideal, i.e. its norm.
    """
    S = np.atleast_2d(np.asarray(samples, dtype=float))
    F = np.atleast_2d(np.asarray(front, dtype=float))
    if F.size == 0:
        return np.linalg.norm(S, axis=1)
    if S.shape[1] != F.shape[1]:
        raise ValueError(
            f"samples have {S.shape[1]} objectives but the front has {F.shape[1]}"
        )
    # (n, m, k) pairwise differences drive both the dominance test and the
    # distance; fronts are small (tens of points), so this stays tiny.
    diff = S[:, None, :] - F[None, :, :]
    dominated = np.any(
        np.all(diff >= 0.0, axis=2), axis=1
    )  # some front point is <= the sample everywhere
    distances = np.sqrt(np.sum(diff * diff, axis=2)).min(axis=1)
    return np.where(dominated, 0.0, distances)


def epdc_scores(
    models: Models,
    pool_features: np.ndarray,
    front: np.ndarray,
    rng: SeedLike = None,
    num_samples: int = DEFAULT_EPDC_SAMPLES,
) -> np.ndarray:
    """Expected Pareto Distance Change per pool candidate (*higher* is better).

    Draws ``num_samples`` joint posterior samples over the pool (one
    :func:`~repro.optim.acquisition.thompson_scores` call each, so
    :class:`~repro.optim.gp_bank.GPBank` and per-model sequences give the
    same decisions) and averages each candidate's
    :func:`pareto_distance_contributions` against the current front.
    Returns an ``(n_pool,)`` vector.
    """
    require_positive(num_samples, "num_samples")
    rng = ensure_rng(rng)
    pool_features = np.atleast_2d(np.asarray(pool_features, dtype=float))
    front = np.atleast_2d(np.asarray(front, dtype=float))
    total = np.zeros(pool_features.shape[0])
    for _ in range(num_samples):
        sample = thompson_scores(models, pool_features, rng=rng)
        total += pareto_distance_contributions(sample, front)
    return total / float(num_samples)


def epdc_score_matrix(
    models: Models,
    pool_features: np.ndarray,
    front: np.ndarray,
    rng: SeedLike = None,
    num_samples: int = DEFAULT_EPDC_SAMPLES,
) -> np.ndarray:
    """EPDC as an ``(n_pool, k)`` *lower-is-better* score matrix.

    Adapter for the :func:`~repro.optim.acquisition.acquisition_scores`
    contract: the negated EPDC value is tiled across the objective columns.
    Chebyshev scalarisation of identical columns is monotone in the value,
    so the MOBO loop's ``argmin`` picks the candidate with the *largest*
    expected front movement without any special-casing downstream.
    """
    scores = epdc_scores(
        models, pool_features, front, rng=rng, num_samples=num_samples
    )
    front = np.atleast_2d(np.asarray(front, dtype=float))
    num_objectives = front.shape[1] if front.size else len(models)
    return np.tile(-scores[:, None], (1, num_objectives))


def select_batch(
    scores: np.ndarray,
    features: np.ndarray,
    batch_size: int,
    lengthscale: Optional[float] = None,
    penalty_weight: float = DEFAULT_BATCH_PENALTY,
) -> List[int]:
    """Greedy q-point selection: best scores, penalised for similar designs.

    ``scores`` are scalarised acquisition values (*lower* is better, the
    MOBO loop's convention) and ``features`` the candidates' unit-cube
    encodings.  Scores are normalised to a ``[0, 1]`` utility; each pick
    takes the highest remaining utility minus a squared-exponential
    similarity penalty against everything already selected
    (``penalty_weight * exp(-d^2 / (2 * lengthscale^2))``), so the returned
    batch trades pure acquisition value for coverage of the design space —
    the q points one iteration sends through the batched evaluator.

    Returns ``min(batch_size, n)`` distinct indices, deterministically
    (ties break toward the lower index).
    """
    require_positive(batch_size, "batch_size")
    scores = np.asarray(scores, dtype=float).ravel()
    X = np.atleast_2d(np.asarray(features, dtype=float))
    n = scores.shape[0]
    if X.shape[0] != n:
        raise ValueError(
            f"{n} scores but {X.shape[0]} feature rows"
        )
    if n == 0:
        return []
    if lengthscale is None:
        # Half of the typical unit-cube diameter: a broad repulsion field
        # whose gentle slope (paired with the half-unit default penalty)
        # nudges batches apart without drowning the acquisition signal.
        lengthscale = 0.5 * float(np.sqrt(X.shape[1]))
    span = scores.max() - scores.min()
    if span > 1e-12:
        utility = (scores.max() - scores) / span  # 1 = best score, 0 = worst
    else:
        utility = np.zeros(n)  # degenerate scores: selection is maximin-diversity
    selected: List[int] = [int(np.argmax(utility))]
    available = np.ones(n, dtype=bool)
    available[selected[0]] = False
    penalty = np.zeros(n)
    while len(selected) < min(batch_size, n):
        last = X[selected[-1]]
        distances_sq = np.sum((X - last) ** 2, axis=1)
        penalty = np.maximum(
            penalty,
            penalty_weight * np.exp(-distances_sq / (2.0 * lengthscale**2)),
        )
        adjusted = np.where(available, utility - penalty, -np.inf)
        selected.append(int(np.argmax(adjusted)))
        available[selected[-1]] = False
    return selected
