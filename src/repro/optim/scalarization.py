"""Objective normalisation and scalarisation for multi-objective acquisition.

The MOBO loop turns the vector of per-objective surrogate values into a single
acquisition score using randomly-weighted augmented Chebyshev scalarisation
(the ParEGO strategy).  Random weights are re-drawn every iteration so the
search sweeps across the whole Pareto frontier instead of collapsing onto a
single trade-off point.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng

#: Augmentation coefficient for the augmented Chebyshev scalarisation.
DEFAULT_RHO = 0.05


def random_weights(num_objectives: int, rng: SeedLike = None) -> np.ndarray:
    """Draw a weight vector uniformly from the probability simplex."""
    if num_objectives < 1:
        raise ValueError(f"num_objectives must be >= 1, got {num_objectives}")
    rng = ensure_rng(rng)
    # Exponential spacings give a uniform Dirichlet(1, ..., 1) sample.
    raw = rng.exponential(scale=1.0, size=num_objectives)
    total = float(raw.sum())
    if total <= 0.0:
        return np.full(num_objectives, 1.0 / num_objectives)
    return raw / total


def normalize_objectives(
    values: np.ndarray,
    lower: Optional[np.ndarray] = None,
    upper: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scale an ``(n, k)`` objective matrix to roughly ``[0, 1]`` per column.

    Returns the normalised matrix together with the lower/upper bounds used,
    so the same transformation can be applied to new points.  Degenerate
    columns (constant objectives) map to 0.5.
    """
    Y = np.atleast_2d(np.asarray(values, dtype=float))
    lower = Y.min(axis=0) if lower is None else np.asarray(lower, dtype=float)
    upper = Y.max(axis=0) if upper is None else np.asarray(upper, dtype=float)
    span = upper - lower
    safe_span = np.where(span > 1e-12, span, 1.0)
    normalised = (Y - lower) / safe_span
    normalised = np.where(span > 1e-12, normalised, 0.5)
    return normalised, lower, upper


def chebyshev_scalarize(
    values: np.ndarray,
    weights: np.ndarray,
    rho: float = DEFAULT_RHO,
) -> np.ndarray:
    """Augmented Chebyshev scalarisation of normalised objective vectors.

    ``scalar = max_k(w_k * y_k) + rho * sum_k(w_k * y_k)`` — smaller is better
    (objectives are minimised).  ``values`` may be a single vector or an
    ``(n, k)`` matrix; the return has shape ``()`` or ``(n,)`` accordingly.
    """
    Y = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float).ravel()
    single = Y.ndim == 1
    Y = np.atleast_2d(Y)
    if Y.shape[1] != w.shape[0]:
        raise ValueError(
            f"values have {Y.shape[1]} objectives but weights have {w.shape[0]}"
        )
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    weighted = Y * w[None, :]
    scalar = weighted.max(axis=1) + rho * weighted.sum(axis=1)
    return scalar[0] if single else scalar


def weighted_sum_scalarize(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Plain weighted-sum scalarisation (cannot reach non-convex frontier parts)."""
    Y = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float).ravel()
    single = Y.ndim == 1
    Y = np.atleast_2d(Y)
    if Y.shape[1] != w.shape[0]:
        raise ValueError(
            f"values have {Y.shape[1]} objectives but weights have {w.shape[0]}"
        )
    scalar = Y @ w
    return scalar[0] if single else scalar
