"""Generic multi-objective Bayesian optimization loop (paper Algorithm 2).

The optimizer is agnostic to what a "candidate" is: the LENS search plugs in
architecture genotypes, but the same loop drives the ablation studies and the
unit tests (which use synthetic objective functions).  The loop follows the
paper's Algorithm 2:

1. evaluate ``num_initial`` random candidates (lines 2-6);
2. each iteration, condition one Gaussian-process surrogate per objective on
   all evaluations so far, score a sampled candidate pool with the chosen
   acquisition strategy, scalarise the per-objective scores with random
   Chebyshev weights, and evaluate the best-scoring unseen candidate
   (lines 7-13);
3. maintain the Pareto archive of all evaluations (line 14).

The surrogates live in a persistent shared-Cholesky
:class:`~repro.optim.gp_bank.GPBank`: each new evaluation is absorbed with a
rank-1 Cholesky append and the per-iteration objective re-normalisation only
recomputes the ``alpha`` vectors, so the surrogate phase costs O(n^2) per
iteration instead of the O(k n^3) of refitting every model from scratch (see
``benchmarks/bench_gp_hotpath.py``; ``gp_update="exact-refit"`` restores the
cold-refit behaviour).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.optim.acquisition import ACQUISITION_STRATEGIES, acquisition_scores
from repro.optim.epdc import select_batch
from repro.optim.gp import UPDATE_MODES
from repro.optim.gp_bank import GPBank
from repro.optim.kernels import kernel_by_name
from repro.optim.pareto import ParetoArchive, pareto_front_mask
from repro.optim.scalarization import (
    chebyshev_scalarize,
    normalize_objectives,
    random_weights,
)
from repro.resilience import faults
from repro.resilience.health import HealthLog
from repro.utils.rng import SeedLike, ensure_rng

#: Default surrogate update mode for new optimizers (see ``gp_update``).
#: Module-level so profiling/benchmark harnesses can flip every search in a
#: process onto the ``"exact-refit"`` fallback without threading a parameter
#: through the request envelopes.
DEFAULT_GP_UPDATE = "incremental"

#: Callable turning a candidate into its GP feature vector.
FeatureFn = Callable[[Any], np.ndarray]
#: Callable sampling a random candidate.
SampleFn = Callable[[np.random.Generator], Any]
#: Callable evaluating a candidate; returns objectives or (objectives, metadata).
ObjectiveFn = Callable[[Any], Any]
#: Callable evaluating a candidate pool; returns one objective output per candidate.
BatchObjectiveFn = Callable[[Sequence[Any]], Sequence[Any]]
#: Optional callable proposing neighbours of a candidate.
NeighborFn = Callable[[Any, int, np.random.Generator], Sequence[Any]]
#: Optional per-evaluation callback.
CallbackFn = Callable[[int, "ObservedPoint", ParetoArchive], None]


@dataclass
class ObservedPoint:
    """One evaluated candidate with its objectives and bookkeeping metadata."""

    candidate: Any
    features: np.ndarray
    objectives: np.ndarray
    iteration: int
    phase: str
    metadata: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        candidate = self.candidate
        if isinstance(candidate, np.ndarray):
            candidate = candidate.tolist()
        elif hasattr(candidate, "to_dict"):
            candidate = candidate.to_dict()
        return {
            "candidate": candidate,
            "objectives": [float(v) for v in self.objectives],
            "iteration": self.iteration,
            "phase": self.phase,
            "metadata": self.metadata,
        }


class OptimizationResult:
    """All evaluations of one optimization run plus Pareto-set helpers."""

    def __init__(self, points: Sequence[ObservedPoint], num_objectives: int):
        self.points: Tuple[ObservedPoint, ...] = tuple(points)
        self.num_objectives = int(num_objectives)

    def __len__(self) -> int:
        return len(self.points)

    def objective_matrix(self) -> np.ndarray:
        """``(n, k)`` matrix of all observed objective vectors."""
        if not self.points:
            return np.empty((0, self.num_objectives))
        return np.vstack([p.objectives for p in self.points])

    def pareto_mask(self) -> np.ndarray:
        """Boolean mask of non-dominated observations."""
        if not self.points:
            return np.zeros(0, dtype=bool)
        return pareto_front_mask(self.objective_matrix())

    def pareto_points(self) -> List[ObservedPoint]:
        """The non-dominated observations."""
        mask = self.pareto_mask()
        return [p for p, keep in zip(self.points, mask) if keep]

    def pareto_objectives(self) -> np.ndarray:
        """Objective matrix restricted to the Pareto front."""
        matrix = self.objective_matrix()
        if matrix.size == 0:
            return matrix
        return matrix[self.pareto_mask()]

    def best_for_objective(self, index: int) -> ObservedPoint:
        """Observation minimising a single objective."""
        if not self.points:
            raise ValueError("the optimization produced no observations")
        if not 0 <= index < self.num_objectives:
            raise IndexError(f"objective index {index} out of range")
        matrix = self.objective_matrix()
        return self.points[int(np.argmin(matrix[:, index]))]

    def to_dict(self) -> Dict:
        return {
            "num_objectives": self.num_objectives,
            "points": [p.to_dict() for p in self.points],
        }


def _normalize_objective_output(output: Any) -> Tuple[np.ndarray, Dict]:
    """Accept ``objectives`` or ``(objectives, metadata)`` from objective functions.

    Shape coercion only — finite-ness is policed by the caller
    (:meth:`MultiObjectiveBayesianOptimizer._record`), whose ``strict``
    flag decides between raising and quarantining.
    """
    metadata: Dict = {}
    if isinstance(output, tuple) and len(output) == 2 and isinstance(output[1], dict):
        objectives, metadata = output
    else:
        objectives = output
    objectives = np.asarray(objectives, dtype=float).ravel()
    return objectives, metadata


def _default_key(candidate: Any) -> bytes:
    if isinstance(candidate, np.ndarray):
        return candidate.tobytes()
    return repr(candidate).encode()


class MultiObjectiveBayesianOptimizer:
    """MOBO over a discrete candidate space defined by sampling callables.

    Parameters
    ----------
    sample_fn:
        ``sample_fn(rng) -> candidate`` — draws a random valid candidate.
    feature_fn:
        ``feature_fn(candidate) -> 1-D array`` — unit-cube features for the GPs.
    objective_fn:
        ``objective_fn(candidate) -> objectives`` (all minimised) or
        ``(objectives, metadata)``.
    batch_objective_fn:
        Optional ``batch_objective_fn(candidates) -> outputs`` evaluating a
        whole candidate pool at once (one ``objective_fn``-style output per
        candidate, in order).  When supplied, the random-initialisation pool
        and each iteration's selected candidate are costed through it —
        e.g. :meth:`repro.core.evaluation.PartitionAwareEvaluator.evaluate_pool`,
        which batches the per-layer predictors and the partition costing
        across the pool.  Results, bookkeeping order and callbacks are
        identical to the scalar path.
    num_objectives:
        Number of objectives returned by ``objective_fn``.
    num_initial / num_iterations:
        Random-initialisation budget and Bayesian-optimization budget
        (``C_init`` and ``N_iter`` in Algorithm 2).
    candidate_pool_size:
        Size of the pool over which the acquisition is maximised each
        iteration.
    acquisition:
        ``"ts"`` (Thompson sampling, default), ``"ucb"``, ``"mean"``,
        ``"random"`` or ``"epdc"`` (front-aware Expected Pareto Distance
        Change, see :mod:`repro.optim.epdc`).
    batch_size:
        Candidates proposed (and evaluated) per BO iteration.  ``1`` (the
        default) reproduces the classic one-point loop bit-for-bit; with
        ``q > 1`` each iteration greedily selects ``q`` diverse candidates
        from the scored pool (:func:`repro.optim.epdc.select_batch`) and
        costs them in one ``batch_objective_fn`` call, so the PR 5 batched
        evaluator runs at full width during search.  The total BO budget
        stays ``num_iterations`` *evaluations* either way (the last batch
        shrinks to fit).
    kernel / lengthscale / gp_noise:
        Surrogate-model hyperparameters.  ``lengthscale=None`` (the default)
        scales the lengthscale with the feature dimensionality
        (``0.5 * sqrt(d)``), which keeps points at typical unit-cube distances
        meaningfully correlated even for high-dimensional genotypes.
    optimize_lengthscale_every:
        Period (in iterations) of the marginal-likelihood lengthscale refresh;
        0 disables it.
    gp_update:
        Surrogate conditioning mode: ``"incremental"`` (the default, via
        :data:`DEFAULT_GP_UPDATE`) maintains a persistent shared-Cholesky
        :class:`~repro.optim.gp_bank.GPBank` grown with rank-1 appends —
        O(n^2) surrogate work per iteration instead of O(k n^3);
        ``"exact-refit"`` refactorises from scratch every iteration (the
        numerically-exact fallback).  Both modes select the same candidates
        for the same seed (up to floating-point roundoff of the factor).
    neighbor_fn:
        Optional ``neighbor_fn(candidate, count, rng) -> candidates`` used to
        add neighbours of current Pareto-optimal candidates to the pool
        (local exploitation).
    key_fn:
        Hashable key extractor used to avoid re-evaluating duplicates.
    seed:
        Seed or generator for all stochastic components.
    callback:
        Optional ``callback(evaluation_index, point, archive)`` invoked after
        every evaluation.
    strict:
        When ``False`` (the default) evaluations returning non-finite (or
        empty) objective vectors are *quarantined*: recorded in
        :attr:`quarantined` (and as an ``H_OBJECTIVE_QUARANTINED`` health
        event) but excluded from the Pareto archive and the surrogates, and
        the search continues.  ``strict=True`` restores the historical
        fail-fast :class:`ValueError`.
    objective_retries / retry_backoff_s:
        Retry budget for flaky objective functions: a raising
        ``objective_fn`` / ``batch_objective_fn`` call is retried up to
        ``objective_retries`` times (default 0 — off), sleeping
        ``retry_backoff_s * 2**(attempt-1)`` between attempts and recording
        each retry as an ``H_OBJECTIVE_RETRY`` health event.
    health:
        Optional :class:`~repro.resilience.health.HealthLog` receiving the
        degradation-ladder events of this run (shared with the surrogate
        bank).
    """

    def __init__(
        self,
        sample_fn: SampleFn,
        feature_fn: FeatureFn,
        objective_fn: ObjectiveFn,
        num_objectives: int,
        batch_objective_fn: Optional[BatchObjectiveFn] = None,
        num_initial: int = 10,
        num_iterations: int = 50,
        candidate_pool_size: int = 128,
        acquisition: str = "ts",
        batch_size: int = 1,
        kernel: str = "matern52",
        lengthscale: Optional[float] = None,
        gp_noise: float = 1e-4,
        ucb_beta: float = 2.0,
        optimize_lengthscale_every: int = 0,
        gp_update: Optional[str] = None,
        neighbor_fn: Optional[NeighborFn] = None,
        key_fn: Callable[[Any], Any] = _default_key,
        seed: SeedLike = None,
        callback: Optional[CallbackFn] = None,
        strict: bool = False,
        objective_retries: int = 0,
        retry_backoff_s: float = 0.0,
        health: Optional[HealthLog] = None,
    ):
        if num_objectives < 1:
            raise ValueError(f"num_objectives must be >= 1, got {num_objectives}")
        if num_initial < 2:
            raise ValueError(f"num_initial must be >= 2, got {num_initial}")
        if num_iterations < 0:
            raise ValueError(f"num_iterations must be >= 0, got {num_iterations}")
        if candidate_pool_size < 2:
            raise ValueError(
                f"candidate_pool_size must be >= 2, got {candidate_pool_size}"
            )
        if acquisition not in ACQUISITION_STRATEGIES:
            raise ValueError(
                f"acquisition must be one of {ACQUISITION_STRATEGIES}, got {acquisition!r}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        gp_update = DEFAULT_GP_UPDATE if gp_update is None else gp_update
        if gp_update not in UPDATE_MODES:
            raise ValueError(
                f"gp_update must be one of {UPDATE_MODES}, got {gp_update!r}"
            )
        self.sample_fn = sample_fn
        self.feature_fn = feature_fn
        self.objective_fn = objective_fn
        self.batch_objective_fn = batch_objective_fn
        self.num_objectives = int(num_objectives)
        self.num_initial = int(num_initial)
        self.num_iterations = int(num_iterations)
        self.candidate_pool_size = int(candidate_pool_size)
        self.acquisition = acquisition
        self.batch_size = int(batch_size)
        self.kernel_name = kernel
        self.lengthscale = None if lengthscale is None else float(lengthscale)
        self.gp_noise = float(gp_noise)
        self.ucb_beta = float(ucb_beta)
        self.optimize_lengthscale_every = int(optimize_lengthscale_every)
        self.gp_update = gp_update
        if objective_retries < 0:
            raise ValueError(
                f"objective_retries must be >= 0, got {objective_retries}"
            )
        if retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        self.neighbor_fn = neighbor_fn
        self.key_fn = key_fn
        self.callback = callback
        self.strict = bool(strict)
        self.objective_retries = int(objective_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.health = health
        self._rng = ensure_rng(seed)

        self._points: List[ObservedPoint] = []
        #: Evaluations with non-finite objectives, kept out of the archive
        #: and the surrogates (``strict=False`` only; see the class docs).
        self.quarantined: List[ObservedPoint] = []
        self._evaluation_count = 0
        self._seen: set = set()
        self.archive = ParetoArchive(self.num_objectives)
        # Growing feature/objective matrices (capacity-doubling) so surrogate
        # fits never re-vstack the whole history, plus the persistent
        # shared-Cholesky model bank behind the incremental fast path.
        self._feature_buf: Optional[np.ndarray] = None
        self._objective_buf: Optional[np.ndarray] = None
        self._num_rows: int = 0
        self._bank: Optional[GPBank] = None

    # ------------------------------------------------------------------ evaluation
    def _record(
        self, candidate: Any, output: Any, iteration: int, phase: str
    ) -> ObservedPoint:
        """Book-keep one evaluated candidate (shared by both evaluation paths)."""
        objectives, metadata = _normalize_objective_output(output)
        ordinal = self._evaluation_count
        self._evaluation_count += 1
        injector = faults.active()
        if injector is not None and injector.take_nan_objectives(ordinal):
            objectives = np.full(max(objectives.size, 1), np.nan)
        if objectives.size == 0 or not np.all(np.isfinite(objectives)):
            if self.strict:
                if objectives.size == 0:
                    raise ValueError("objective function returned no objectives")
                raise ValueError(
                    f"objective function returned non-finite values: {objectives}"
                )
            return self._quarantine(candidate, objectives, metadata, iteration, phase)
        if objectives.shape != (self.num_objectives,):
            raise ValueError(
                f"objective function returned {objectives.shape[0]} objectives, "
                f"expected {self.num_objectives}"
            )
        features = np.asarray(self.feature_fn(candidate), dtype=float).ravel()
        point = ObservedPoint(
            candidate=candidate,
            features=features,
            objectives=objectives,
            iteration=iteration,
            phase=phase,
            metadata=metadata,
        )
        self._points.append(point)
        self._append_row(features, objectives)
        self._seen.add(self.key_fn(candidate))
        self.archive.add(point, objectives)
        if self.callback is not None:
            self.callback(len(self._points) - 1, point, self.archive)
        return point

    def _quarantine(
        self,
        candidate: Any,
        objectives: np.ndarray,
        metadata: Dict,
        iteration: int,
        phase: str,
    ) -> ObservedPoint:
        """Record a non-finite evaluation without poisoning archive or GPs.

        The candidate still counts against the budget and is marked seen
        (re-evaluating it would fail the same way), but its objectives
        enter neither the Pareto archive nor the surrogate matrices, so
        pareto masks and kernel factors stay NaN-free.  No per-evaluation
        callback fires: quarantined points are not replayable outcomes.
        """
        features = np.asarray(self.feature_fn(candidate), dtype=float).ravel()
        point = ObservedPoint(
            candidate=candidate,
            features=features,
            objectives=np.asarray(objectives, dtype=float),
            iteration=iteration,
            phase=phase,
            metadata={**metadata, "quarantined": True},
        )
        self.quarantined.append(point)
        self._seen.add(self.key_fn(candidate))
        if self.health is not None:
            self.health.record(
                "H_OBJECTIVE_QUARANTINED",
                f"evaluation {iteration} ({phase}) returned non-finite objectives",
                iteration=iteration,
                phase=phase,
            )
        return point

    def _call_objective(self, fn: Callable[[Any], Any], argument: Any) -> Any:
        """Call an objective function with optional retry-with-backoff."""
        attempt = 0
        while True:
            try:
                injector = faults.active()
                if injector is not None and injector.take_objective_fault():
                    raise RuntimeError("injected objective failure")
                return fn(argument)
            except Exception as error:
                attempt += 1
                if attempt > self.objective_retries:
                    raise
                if self.health is not None:
                    self.health.record(
                        "H_OBJECTIVE_RETRY",
                        f"objective call failed ({error}); "
                        f"retry {attempt}/{self.objective_retries}",
                        attempt=attempt,
                    )
                if self.retry_backoff_s > 0:
                    time.sleep(self.retry_backoff_s * 2 ** (attempt - 1))

    def _evaluate(self, candidate: Any, iteration: int, phase: str) -> ObservedPoint:
        output = self._call_objective(self.objective_fn, candidate)
        return self._record(candidate, output, iteration, phase)

    def _evaluate_batch(
        self, candidates: Sequence[Any], first_iteration: int, phase: str
    ) -> List[ObservedPoint]:
        """Evaluate a pool through ``batch_objective_fn``, book-keeping in order."""
        outputs = self._call_objective(self.batch_objective_fn, candidates)
        if len(outputs) != len(candidates):
            raise ValueError(
                f"batch objective function returned {len(outputs)} outputs "
                f"for {len(candidates)} candidates"
            )
        return [
            self._record(candidate, output, first_iteration + offset, phase)
            for offset, (candidate, output) in enumerate(zip(candidates, outputs))
        ]

    def _append_row(self, features: np.ndarray, objectives: np.ndarray) -> None:
        """Append one evaluation to the growing feature/objective matrices."""
        if self._feature_buf is None:
            capacity = max(16, self.num_initial + self.num_iterations)
            self._feature_buf = np.zeros((capacity, features.shape[0]))
            self._objective_buf = np.zeros((capacity, self.num_objectives))
        elif self._num_rows == self._feature_buf.shape[0]:
            self._feature_buf = np.vstack([self._feature_buf, np.zeros_like(self._feature_buf)])
            self._objective_buf = np.vstack([self._objective_buf, np.zeros_like(self._objective_buf)])
        if features.shape[0] != self._feature_buf.shape[1]:
            raise ValueError(
                f"feature function returned {features.shape[0]} features, "
                f"expected {self._feature_buf.shape[1]}"
            )
        self._feature_buf[self._num_rows] = features
        self._objective_buf[self._num_rows] = objectives
        self._num_rows += 1

    def _feature_matrix(self) -> np.ndarray:
        """View of all observed feature vectors, ``(n, d)``."""
        return self._feature_buf[: self._num_rows]

    def _objective_matrix(self) -> np.ndarray:
        """View of all observed objective vectors, ``(n, k)``."""
        return self._objective_buf[: self._num_rows]

    def _sample_unseen(
        self, max_attempts: int = 50, pending: Optional[set] = None
    ) -> Any:
        """Sample a candidate not yet evaluated (nor in ``pending``).

        ``pending`` lets the pool-evaluation path pre-sample a whole batch
        with exactly the rejection behaviour of interleaved
        sample-then-evaluate: sampling consumes the generator, evaluation
        never does, so the draw sequence is identical either way.
        """
        for _ in range(max_attempts):
            candidate = self.sample_fn(self._rng)
            key = self.key_fn(candidate)
            if key not in self._seen and (pending is None or key not in pending):
                return candidate
        # The space may be nearly exhausted; accept a duplicate rather than stall.
        return self.sample_fn(self._rng)

    # ------------------------------------------------------------------ pool construction
    def _build_pool(self) -> List[Any]:
        pool: List[Any] = []
        keys: set = set()
        target = self.candidate_pool_size
        attempts = 0
        while len(pool) < target and attempts < target * 10:
            candidate = self.sample_fn(self._rng)
            key = self.key_fn(candidate)
            attempts += 1
            if key in self._seen or key in keys:
                continue
            pool.append(candidate)
            keys.add(key)
        if self.neighbor_fn is not None and len(self.archive) > 0:
            per_entry = max(1, target // (4 * max(len(self.archive), 1)))
            for entry in self.archive.entries:
                neighbours = self.neighbor_fn(
                    entry.payload.candidate, per_entry, self._rng
                )
                for candidate in neighbours:
                    key = self.key_fn(candidate)
                    if key in self._seen or key in keys:
                        continue
                    pool.append(candidate)
                    keys.add(key)
        if not pool:
            pool.append(self._sample_unseen())
        return pool

    # ------------------------------------------------------------------ surrogate models
    def _fit_models(self, refresh_lengthscale: bool) -> Tuple[GPBank, np.ndarray, np.ndarray]:
        """Condition the per-objective surrogate bank on all evaluations so far.

        The bank persists across iterations: new evaluations arrive as rank-1
        Cholesky appends and the per-iteration objective re-normalisation only
        recomputes each model's ``alpha`` (``gp_update="exact-refit"`` instead
        refits from scratch every call).  Returns the bank — iterable as the
        per-objective model sequence — plus the normalisation bounds.
        """
        X = self._feature_matrix()
        Y = self._objective_matrix()
        Y_norm, lower, upper = normalize_objectives(Y)
        if self._bank is None:
            if self.lengthscale is not None:
                lengthscale = self.lengthscale
            else:
                # Typical pairwise distance in the unit cube grows like sqrt(d);
                # scale the lengthscale accordingly so the surrogate carries signal.
                lengthscale = 0.5 * float(np.sqrt(X.shape[1]))
            self._bank = GPBank(
                num_objectives=self.num_objectives,
                kernel=kernel_by_name(self.kernel_name, lengthscale=lengthscale),
                noise_variance=self.gp_noise,
                normalize_y=True,
                update_mode=self.gp_update,
                health=self.health,
            )
        self._bank.update(X, Y_norm)
        if refresh_lengthscale:
            self._bank.refresh_lengthscales()
        return self._bank, lower, upper

    # ------------------------------------------------------------------ main loop
    def run(self) -> OptimizationResult:
        """Execute the full optimization and return every observation."""
        # Random initialisation (Algorithm 2, lines 2-6).  With a batch
        # objective the whole initial pool is sampled up front (the draw
        # sequence is identical — evaluation never consumes the generator)
        # and costed in one batched evaluation.
        if self.batch_objective_fn is not None:
            initial: List[Any] = []
            pending: set = set()
            for _ in range(self.num_initial):
                candidate = self._sample_unseen(pending=pending)
                pending.add(self.key_fn(candidate))
                initial.append(candidate)
            self._evaluate_batch(initial, first_iteration=0, phase="init")
        else:
            for i in range(self.num_initial):
                candidate = self._sample_unseen()
                self._evaluate(candidate, iteration=i, phase="init")

        # MOBO iterations (Algorithm 2, lines 7-14).  The BO budget is
        # num_iterations *evaluations*; each step proposes min(batch_size,
        # remaining) candidates, so batch_size=1 walks the exact per-step
        # RNG/bookkeeping sequence of the classic loop (goldens pinned by
        # tests/test_incremental_regression.py), while q > 1 fills the
        # batched evaluator per step.
        consumed = 0
        step = 0
        while consumed < self.num_iterations:
            refresh = (
                self.optimize_lengthscale_every > 0
                and step % self.optimize_lengthscale_every == 0
            )
            # Final rung of the degradation ladder: if the surrogate stage
            # fails despite jitter escalation, exact refits and the
            # heterogeneous fallback (or quarantine left too few rows to fit
            # on), this iteration's acquisition degrades to random scores —
            # the search keeps spending its budget instead of crashing.
            # The healthy path is byte-identical to the pre-ladder loop: the
            # fallback draw only consumes the generator when a rung fired.
            models = None
            if self._num_rows > 0:
                try:
                    models, _, _ = self._fit_models(refresh_lengthscale=refresh)
                except np.linalg.LinAlgError as error:
                    self._record_random_acquisition("surrogate fit failed", error)
            else:
                self._record_random_acquisition(
                    "no finite evaluations to fit surrogates on", None
                )
            pool = self._build_pool()
            pool_features = np.vstack([self.feature_fn(c) for c in pool])
            scores = None
            if models is not None:
                front = None
                if self.acquisition == "epdc":
                    # The surrogates are fit on normalised objectives; hand the
                    # front over in the same units so EPDC distances line up
                    # with the posterior samples.
                    Y = self._objective_matrix()
                    Y_norm, _, _ = normalize_objectives(Y)
                    front = Y_norm[pareto_front_mask(Y)]
                try:
                    scores = acquisition_scores(
                        self.acquisition,
                        models,
                        pool_features,
                        rng=self._rng,
                        beta=self.ucb_beta,
                        front=front,
                    )
                except np.linalg.LinAlgError as error:
                    self._record_random_acquisition("acquisition scoring failed", error)
            if scores is None:
                scores = self._rng.uniform(
                    size=(pool_features.shape[0], self.num_objectives)
                )
            scores_norm, _, _ = normalize_objectives(scores)
            weights = random_weights(self.num_objectives, self._rng)
            scalar = chebyshev_scalarize(scores_norm, weights)
            q = min(self.batch_size, self.num_iterations - consumed)
            if q == 1:
                chosen = [pool[int(np.argmin(scalar))]]
            else:
                indices = select_batch(scalar, pool_features, q)
                chosen = [pool[index] for index in indices]
            if self.batch_objective_fn is not None:
                self._evaluate_batch(
                    chosen,
                    first_iteration=self.num_initial + consumed,
                    phase="bo",
                )
            else:
                for offset, candidate in enumerate(chosen):
                    self._evaluate(
                        candidate,
                        iteration=self.num_initial + consumed + offset,
                        phase="bo",
                    )
            consumed += len(chosen)
            step += 1

        return OptimizationResult(self._points, self.num_objectives)

    def _record_random_acquisition(self, reason: str, error: Optional[Exception]) -> None:
        if self.health is not None:
            detail = f" ({error})" if error is not None else ""
            self.health.record(
                "H_RANDOM_ACQUISITION",
                f"{reason}{detail}; falling back to random candidate selection",
            )
