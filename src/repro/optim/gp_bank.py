"""Shared-Cholesky bank of per-objective Gaussian processes.

The MOBO loop (paper Algorithm 2) maintains one GP surrogate per objective.
All of them condition on the *same* feature matrix with the *same* kernel
hyperparameters — only the targets differ — so the kernel matrix, its
Cholesky factor and the cross-covariance against a candidate pool are
identical across objectives.  :class:`GPBank` computes those shared pieces
once and reuses them for fitting, prediction and acquisition scoring:

* **fit** — one kernel matrix + one O(n^3) factorisation for all ``k``
  objectives (the factor is *adopted* by every member model); per-objective
  work is only the O(n^2) ``alpha`` solves;
* **extend** — one rank-1/block Cholesky append per new observation
  (O(n^2)), again shared across objectives;
* **predict / Thompson sampling** — the candidate cross-covariance ``Ks``,
  the triangular solve ``v = L^-1 Ks`` and (for sampling) the posterior
  covariance factor are computed once; per-objective means/samples are cheap
  mat-vecs against each model's ``alpha`` plus a rescale by its target std.

When per-objective lengthscale refreshes diverge the hyperparameters
(:meth:`refresh_lengthscales`), the bank transparently falls back to
per-model computation for that generation and re-homogenises on the next
:meth:`update`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.optim.gp import (
    DEFAULT_JITTER,
    GaussianProcess,
    escalating_cholesky,
    triangular_solve,
)
from repro.optim.kernels import (
    Kernel,
    Matern52Kernel,
    pairwise_distances,
    supports_distance_reuse,
)
from repro.resilience.health import HealthLog
from repro.utils.rng import SeedLike, ensure_rng

#: Ceiling of the per-objective noise escalation in the heterogeneous
#: fallback (targets are standardised, so noise 1.0 means "all noise").
MAX_FALLBACK_NOISE = 1.0


class GPBank:
    """A bank of ``k`` exact GPs sharing features and kernel hyperparameters.

    Parameters
    ----------
    num_objectives:
        Number of member models (one per objective).
    kernel:
        Shared base kernel; defaults to Matérn-5/2.  Each member holds the
        same hyperparameters until :meth:`refresh_lengthscales` diverges them.
    noise_variance / normalize_y:
        Forwarded to every member :class:`GaussianProcess`.
    update_mode:
        ``"incremental"`` (default) grows the shared factor with rank-1
        appends on :meth:`update`; ``"exact-refit"`` refactorises from
        scratch every time (the numerical fallback — still sharing the one
        factorisation across objectives).
    health:
        Optional :class:`~repro.resilience.health.HealthLog` (shared with
        every member model) recording degradation-ladder events:
        ``H_JITTER_ESCALATED`` from the members' factorisations,
        ``H_EXACT_REFIT`` when an incremental append fails and the bank
        refits from scratch, ``H_HETEROGENEOUS_FALLBACK`` when even the
        shared fit fails and the members are fit independently with
        escalated noise.
    """

    def __init__(
        self,
        num_objectives: int,
        kernel: Optional[Kernel] = None,
        noise_variance: float = 1e-4,
        normalize_y: bool = True,
        update_mode: str = "incremental",
        health: Optional[HealthLog] = None,
    ):
        if num_objectives < 1:
            raise ValueError(f"num_objectives must be >= 1, got {num_objectives}")
        self.num_objectives = int(num_objectives)
        self.base_kernel = kernel if kernel is not None else Matern52Kernel()
        self.update_mode = update_mode
        self.health = health
        self.models: List[GaussianProcess] = [
            GaussianProcess(
                kernel=self.base_kernel,
                noise_variance=noise_variance,
                normalize_y=normalize_y,
                update_mode=update_mode,
                health=health,
            )
            for _ in range(self.num_objectives)
        ]
        #: False after a lengthscale refresh diverged the member kernels.
        self._homogeneous = True

    # ------------------------------------------------------------------ protocol
    def __len__(self) -> int:
        return self.num_objectives

    def __iter__(self) -> Iterator[GaussianProcess]:
        return iter(self.models)

    @property
    def is_fitted(self) -> bool:
        return self.models[0].is_fitted

    @property
    def num_observations(self) -> int:
        return self.models[0].num_observations

    @property
    def homogeneous(self) -> bool:
        """Whether all member models currently share kernel hyperparameters."""
        return self._homogeneous

    def _validate_targets(self, Y: np.ndarray, rows: int) -> np.ndarray:
        Y = np.atleast_2d(np.asarray(Y, dtype=float))
        if Y.shape != (rows, self.num_objectives):
            raise ValueError(
                f"expected a ({rows}, {self.num_objectives}) target matrix, "
                f"got shape {Y.shape}"
            )
        return Y

    # ------------------------------------------------------------------ conditioning
    def fit(self, X: np.ndarray, Y: np.ndarray) -> "GPBank":
        """Cold-fit every member on ``(X, Y[:, k])`` with one shared factorisation."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = self._validate_targets(Y, X.shape[0])
        if X.shape[0] < 1:
            raise ValueError("at least one observation is required")
        for model in self.models:
            model.kernel = self.base_kernel
        leader = self.models[0]
        # retarget=False: the batched set_targets below computes every
        # member's normalisation and alpha (the leader's included) together.
        K = self.base_kernel(X, X)
        leader._fit_with_kernel_matrix(X, Y[:, 0].copy(), K, retarget=False)
        for k, model in enumerate(self.models[1:], start=1):
            self._adopt_factor(model, leader, Y[:, k], retarget=False)
        self._homogeneous = True
        return self.set_targets(Y)

    @staticmethod
    def _adopt_factor(
        model: GaussianProcess,
        leader: GaussianProcess,
        y: np.ndarray,
        retarget: bool = True,
    ) -> None:
        """Install the leader's data/factor into ``model`` and retarget it.

        Sharing the factor *by reference* is safe: the incremental path never
        mutates the leading block of the Cholesky factor in place, and
        followers are re-pointed after every leader append.  ``retarget=False``
        skips the normalisation/``alpha`` solves when a :meth:`set_targets`
        immediately follows.
        """
        model._X = leader._X
        model._chol = leader._chol
        model._y_raw = np.asarray(y, dtype=float).ravel()
        model._n = leader.num_observations
        model._X_buf = None
        model._L_buf = None
        model._y_buf = None
        if retarget:
            model._refresh_target_normalization()
            model._recompute_alpha()

    def extend(self, x_new: np.ndarray, Y_new: np.ndarray) -> "GPBank":
        """Append observations: one shared block-Cholesky append, ``k`` retargets."""
        if not self.is_fitted:
            return self.fit(x_new, Y_new)
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        Y_new = self._validate_targets(Y_new, x_new.shape[0])

        def stacked():
            X = np.vstack([self.models[0]._X, x_new])
            Y_old = np.column_stack([m._y_raw for m in self.models])
            return X, np.vstack([Y_old, Y_new])

        if not self._homogeneous or self.update_mode == "exact-refit":
            return self._fit_resilient(*stacked())
        leader = self.models[0]
        try:
            leader.extend(x_new, Y_new[:, 0])
        except np.linalg.LinAlgError:
            # The append failed before any buffer write, so the stacked
            # history is still reconstructible from the members.
            self._record_exact_refit("extend")
            return self._fit_resilient(*stacked())
        for k, model in enumerate(self.models[1:], start=1):
            y = np.concatenate([model._y_raw, Y_new[:, k]])
            self._adopt_factor(model, leader, y)
        return self

    def set_targets(self, Y: np.ndarray) -> "GPBank":
        """Retarget every member (e.g. after objective re-normalisation).

        On the homogeneous path the ``k`` ``alpha`` vectors are recomputed
        with two *batched* multi-RHS triangular solves against the shared
        factor — one BLAS-3 call instead of ``2k`` separate back-solves.
        """
        if not self.is_fitted:
            raise RuntimeError("GPBank must be fitted before retargeting")
        Y = self._validate_targets(Y, self.num_observations)
        if not self._homogeneous:
            for k, model in enumerate(self.models):
                model.set_targets(Y[:, k])
            return self
        Y_std = np.empty_like(Y)
        for k, model in enumerate(self.models):
            model._install_raw_targets(Y[:, k])
            Y_std[:, k] = model._y
        L = self.models[0]._chol
        alphas = triangular_solve(L, triangular_solve(L, Y_std), trans=True)
        for k, model in enumerate(self.models):
            model._alpha = alphas[:, k]
        return self

    def update(self, X: np.ndarray, Y: np.ndarray) -> "GPBank":
        """Condition the bank on the full history ``(X, Y)``, incrementally.

        ``X``/``Y`` must extend the previously-seen rows (the MOBO loop only
        ever appends evaluations).  New rows are absorbed with the shared
        block append; already-seen rows get their (re-normalised) targets
        refreshed via :meth:`set_targets`.  After a lengthscale refresh — or
        in ``exact-refit`` mode — the bank re-homogenises with a cold fit.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = self._validate_targets(Y, X.shape[0])
        if not self.is_fitted:
            return self._fit_resilient(X, Y)
        n_seen = self.num_observations
        X_seen = self.models[0]._X
        if (
            not self._homogeneous
            or self.update_mode == "exact-refit"
            or X.shape[0] < n_seen
            or X.shape[1] != X_seen.shape[1]
            # Spot-check the "X extends the seen rows" contract (O(d)): a
            # different prefix must not silently reuse the stale factor.
            or not np.array_equal(X[0], X_seen[0])
            or not np.array_equal(X[n_seen - 1], X_seen[n_seen - 1])
        ):
            return self._fit_resilient(X, Y)
        try:
            if X.shape[0] > n_seen:
                leader = self.models[0]
                # retarget=False: set_targets below recomputes every alpha anyway.
                leader.extend(X[n_seen:], Y[n_seen:, 0], retarget=False)
                for model in self.models[1:]:
                    # Followers only adopt the grown factor here; set_targets
                    # below gives them their real targets and alpha.
                    self._adopt_factor(model, leader, leader._y_raw, retarget=False)
            return self.set_targets(Y)
        except np.linalg.LinAlgError:
            # Second rung of the degradation ladder: the incremental append
            # (or its follow-up solves) failed even with escalated jitter, so
            # refactorise the full history from scratch.
            self._record_exact_refit("update")
            return self._fit_resilient(X, Y)

    # ------------------------------------------------------------------ degradation ladder
    def _record_exact_refit(self, site: str) -> None:
        if self.health is not None:
            self.health.record(
                "H_EXACT_REFIT",
                f"{site}: incremental append failed; refitting from scratch",
                site=site,
            )

    def _fit_resilient(self, X: np.ndarray, Y: np.ndarray) -> "GPBank":
        """Cold fit, degrading to heterogeneous per-objective GPs on failure.

        Third rung of the ladder: when even the from-scratch shared
        factorisation fails (after :func:`~repro.optim.gp.escalating_cholesky`
        exhausted its jitter cap), each member model is fit independently
        with its own escalating noise floor — losing the shared-factor
        speedup but keeping the search alive.  Raises only when a member
        cannot be fit even at :data:`MAX_FALLBACK_NOISE`; the MOBO loop
        then degrades that iteration's acquisition to random sampling.
        """
        try:
            return self.fit(X, Y)
        except np.linalg.LinAlgError as error:
            if self.health is not None:
                self.health.record(
                    "H_HETEROGENEOUS_FALLBACK",
                    f"shared fit failed ({error}); fitting members independently",
                )
            return self._fit_heterogeneous(X, Y)

    def _fit_heterogeneous(self, X: np.ndarray, Y: np.ndarray) -> "GPBank":
        """Fit every member on its own, escalating per-model noise x10.

        The escalated ``noise_variance`` sticks to the member model — a
        degraded run stays degraded rather than thrashing between fallback
        and re-failure on every iteration.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = self._validate_targets(Y, X.shape[0])
        for k, model in enumerate(self.models):
            model.kernel = self.base_kernel
            while True:
                try:
                    model.fit(X, Y[:, k].copy())
                    break
                except np.linalg.LinAlgError:
                    if model.noise_variance >= MAX_FALLBACK_NOISE:
                        raise
                    model.noise_variance = min(
                        model.noise_variance * 10.0, MAX_FALLBACK_NOISE
                    )
        self._homogeneous = False
        return self

    # ------------------------------------------------------------------ model selection
    def refresh_lengthscales(
        self, candidates: Optional[Sequence[float]] = None
    ) -> List[float]:
        """Per-objective marginal-likelihood lengthscale grid search.

        The unscaled distance matrix is computed once and shared across all
        ``k`` grid searches (each of which also shares it across its grid
        points), so the whole refresh performs a single O(n^2 d) distance
        pass.  Diverges the member kernels: until the next :meth:`update`,
        shared-path prediction falls back to per-model computation.
        """
        if not self.is_fitted:
            raise RuntimeError("GPBank must be fitted before a lengthscale refresh")
        distances = None
        if supports_distance_reuse(self.base_kernel):
            distances = pairwise_distances(self.models[0]._X, self.models[0]._X)
        best: List[float] = []
        for model in self.models:
            if candidates is None:
                best.append(model.optimize_lengthscale(_distances=distances))
            else:
                best.append(
                    model.optimize_lengthscale(candidates, _distances=distances)
                )
        self._homogeneous = False
        return best

    # ------------------------------------------------------------------ prediction
    def _shared_solve(self, Xs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Cross-covariance ``Ks`` and whitened solve ``v`` shared by all members."""
        leader = self.models[0]
        Ks = leader.kernel(leader._X, Xs)
        v = triangular_solve(leader._chol, Ks)
        return Ks, v

    def predict(
        self, Xs: np.ndarray, return_std: bool = True
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Posterior means (and stds) of every member at ``Xs``.

        Returns ``(n, k)`` matrices.  On the homogeneous fast path the
        latent (standardised) posterior variance is identical for every
        member, so it is computed once and only rescaled by each member's
        target std.
        """
        if not self.is_fitted:
            raise RuntimeError("GPBank must be fitted before prediction")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        if not self._homogeneous:
            columns = [m.predict(Xs, return_std=return_std) for m in self.models]
            means = np.column_stack([c[0] for c in columns])
            if not return_std:
                return means, None
            return means, np.column_stack([c[1] for c in columns])
        leader = self.models[0]
        Ks, v = self._shared_solve(Xs)
        means = np.column_stack(
            [Ks.T @ m._alpha * m._y_std + m._y_mean for m in self.models]
        )
        if not return_std:
            return means, None
        var = leader.kernel.diag(Xs) - np.sum(v**2, axis=0)
        std_latent = np.sqrt(np.maximum(var, 1e-12))
        stds = np.column_stack([std_latent * m._y_std for m in self.models])
        return means, stds

    def thompson_matrix(self, Xs: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        """One joint posterior draw per objective — an ``(n, k)`` score matrix.

        On the homogeneous path the posterior covariance factor is computed
        once in standardised units and rescaled per objective (the latent
        covariances are proportional: ``cov_k = y_std_k^2 * cov_latent``).
        Random draws happen per objective, in objective order, with the same
        shapes as the per-model path, so a given RNG stream produces the
        same candidate decisions either way.
        """
        rng = ensure_rng(rng)
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        if not self.is_fitted:
            raise RuntimeError("GPBank must be fitted before sampling")
        if not self._homogeneous:
            return np.column_stack(
                [m.sample_posterior(Xs, rng=rng, num_samples=1)[0] for m in self.models]
            )
        leader = self.models[0]
        Ks, v = self._shared_solve(Xs)
        cov = leader.kernel(Xs, Xs) - v.T @ v
        cov[np.diag_indices_from(cov)] = np.maximum(np.diag(cov), 1e-12)
        cov[np.diag_indices_from(cov)] += DEFAULT_JITTER
        chol = escalating_cholesky(cov, health=self.health, site="thompson")
        columns = []
        for model in self.models:
            mean = Ks.T @ model._alpha * model._y_std + model._y_mean
            normals = rng.standard_normal((1, Xs.shape[0]))
            columns.append(mean + (normals @ chol.T)[0] * model._y_std)
        return np.column_stack(columns)
