"""Covariance kernels for Gaussian-process regression.

The Bayesian-optimization surrogates operate on the unit-cube projection of
the architecture genotype (see :mod:`repro.nn.encoding`), so stationary
kernels over ``[0, 1]^d`` with a moderate lengthscale are appropriate.  Both
the squared-exponential (RBF) kernel and the Matérn-5/2 kernel (Dragonfly's
default family) are provided.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from repro.utils.validation import require_positive

ArrayLike = Union[np.ndarray, list, tuple]


def _as_matrix(X: ArrayLike) -> np.ndarray:
    arr = np.asarray(X, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D array of points, got shape {arr.shape}")
    return arr


def pairwise_scaled_distances(
    X1: ArrayLike, X2: ArrayLike, lengthscale: Union[float, np.ndarray]
) -> np.ndarray:
    """Euclidean distances between rows of X1 and X2 after lengthscale scaling."""
    A = _as_matrix(X1)
    B = _as_matrix(X2)
    if A.shape[1] != B.shape[1]:
        raise ValueError(
            f"dimension mismatch: X1 has {A.shape[1]} columns, X2 has {B.shape[1]}"
        )
    scale = np.asarray(lengthscale, dtype=float)
    if scale.ndim == 0:
        scale = np.full(A.shape[1], float(scale))
    if scale.shape != (A.shape[1],):
        raise ValueError(
            f"lengthscale must be a scalar or a vector of length {A.shape[1]}, "
            f"got shape {scale.shape}"
        )
    if np.any(scale <= 0):
        raise ValueError("lengthscales must be positive")
    As = A / scale
    Bs = B / scale
    sq = (
        np.sum(As**2, axis=1)[:, None]
        + np.sum(Bs**2, axis=1)[None, :]
        - 2.0 * As @ Bs.T
    )
    return np.sqrt(np.maximum(sq, 0.0))


def pairwise_distances(X1: ArrayLike, X2: ArrayLike) -> np.ndarray:
    """Unscaled Euclidean distances between rows of ``X1`` and ``X2``.

    For a *scalar* lengthscale ``l`` the scaled distances are simply
    ``pairwise_distances(X1, X2) / l``, so one O(n^2 d) distance pass can be
    shared across a whole lengthscale grid (see
    :meth:`GaussianProcess.optimize_lengthscale`) and across the per-objective
    models of a :class:`~repro.optim.gp_bank.GPBank`.
    """
    return pairwise_scaled_distances(X1, X2, 1.0)


def is_scalar_lengthscale(lengthscale: Union[float, np.ndarray]) -> bool:
    """Whether a lengthscale admits the shared-distance fast path."""
    return np.asarray(lengthscale, dtype=float).ndim == 0


def supports_distance_reuse(kernel: "Kernel") -> bool:
    """Whether a kernel can be evaluated from a precomputed distance matrix.

    True only for scalar-lengthscale kernels that actually override
    :meth:`Kernel.from_scaled_distances` — custom subclasses implementing
    just the pre-existing ``__call__`` contract fall back to full kernel
    evaluations instead of crashing on the base-class hook.
    """
    return (
        is_scalar_lengthscale(getattr(kernel, "lengthscale", np.ones(1)))
        and type(kernel).from_scaled_distances is not Kernel.from_scaled_distances
    )


class Kernel:
    """Base class for covariance kernels."""

    def __call__(self, X1: ArrayLike, X2: ArrayLike) -> np.ndarray:
        """Covariance matrix between the rows of ``X1`` and ``X2``."""
        raise NotImplementedError

    def diag(self, X: ArrayLike) -> np.ndarray:
        """Diagonal of the covariance matrix of ``X`` with itself."""
        X = _as_matrix(X)
        return np.full(X.shape[0], self.variance)

    def from_scaled_distances(self, r: np.ndarray) -> np.ndarray:
        """Covariance from a matrix of already lengthscale-scaled distances.

        Lets callers that precompute one unscaled distance matrix (grid
        searches over scalar lengthscales, shared model banks) evaluate the
        kernel as a cheap elementwise transform instead of re-running the
        O(n^2 d) distance computation.
        """
        raise NotImplementedError

    def with_params(self, **kwargs) -> "Kernel":
        """Copy of the kernel with updated hyperparameters."""
        params = self.get_params()
        params.update(kwargs)
        return type(self)(**params)

    def get_params(self) -> Dict:
        """Kernel hyperparameters as a dictionary."""
        raise NotImplementedError


class RBFKernel(Kernel):
    """Squared-exponential kernel ``v * exp(-r^2 / 2)`` with scaled distance r."""

    def __init__(self, lengthscale: Union[float, np.ndarray] = 0.3, variance: float = 1.0):
        require_positive(variance, "variance")
        self.lengthscale = lengthscale
        self.variance = float(variance)

    def __call__(self, X1: ArrayLike, X2: ArrayLike) -> np.ndarray:
        return self.from_scaled_distances(
            pairwise_scaled_distances(X1, X2, self.lengthscale)
        )

    def from_scaled_distances(self, r: np.ndarray) -> np.ndarray:
        return self.variance * np.exp(-0.5 * r**2)

    def get_params(self) -> Dict:
        return {"lengthscale": self.lengthscale, "variance": self.variance}

    def __repr__(self) -> str:
        return f"RBFKernel(lengthscale={self.lengthscale}, variance={self.variance})"


class Matern52Kernel(Kernel):
    """Matérn kernel with smoothness 5/2 (twice-differentiable sample paths)."""

    def __init__(self, lengthscale: Union[float, np.ndarray] = 0.3, variance: float = 1.0):
        require_positive(variance, "variance")
        self.lengthscale = lengthscale
        self.variance = float(variance)

    def __call__(self, X1: ArrayLike, X2: ArrayLike) -> np.ndarray:
        return self.from_scaled_distances(
            pairwise_scaled_distances(X1, X2, self.lengthscale)
        )

    def from_scaled_distances(self, r: np.ndarray) -> np.ndarray:
        sqrt5_r = np.sqrt(5.0) * r
        return self.variance * (1.0 + sqrt5_r + (5.0 / 3.0) * r**2) * np.exp(-sqrt5_r)

    def get_params(self) -> Dict:
        return {"lengthscale": self.lengthscale, "variance": self.variance}

    def __repr__(self) -> str:
        return f"Matern52Kernel(lengthscale={self.lengthscale}, variance={self.variance})"


KERNELS = {"rbf": RBFKernel, "matern52": Matern52Kernel}


def kernel_by_name(name: str, **kwargs) -> Kernel:
    """Instantiate a kernel by name (``"rbf"`` or ``"matern52"``)."""
    key = name.strip().lower()
    if key not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; available: {sorted(KERNELS)}")
    return KERNELS[key](**kwargs)
