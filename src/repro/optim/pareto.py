"""Pareto-dominance utilities, archives and quality indicators.

All objectives in this library are *minimised*.  A point ``a`` dominates
``b`` when it is no worse in every objective and strictly better in at least
one — the definition in §III-B of the paper.  The module provides:

* :func:`dominates` and :func:`pareto_front_mask` — dominance primitives;
* :class:`ParetoArchive` — an incrementally-updated archive of non-dominated
  (payload, objectives) pairs, used by the search loops;
* quality indicators — the coverage (C-)metric used for the paper's
  "LENS dominates X % of the Traditional frontier" statements, and the
  hypervolume indicator for ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether objective vector ``a`` Pareto-dominates ``b`` (minimisation)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"objective vectors differ in shape: {a.shape} vs {b.shape}")
    return bool(np.all(a <= b) and np.any(a < b))


def pareto_front_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows of an ``(n, k)`` objective matrix.

    Duplicate rows are all retained (none of them dominates the others).

    Sort/block-dominance implementation: rows are lexicographically sorted,
    so every dominator of a row precedes it, and the scan repeatedly takes
    the first still-alive row (guaranteed non-dominated), removes the whole
    block of rows it dominates in one vectorised comparison, and jumps to
    the next survivor.  The number of passes equals the size of the front
    (plus duplicates), so typical inputs cost O(|front| * n * k) with NumPy
    kernels instead of the previous O(n^2 k) Python loop — ~100x faster on a
    50 000-point cloud (see ``benchmarks/bench_gp_hotpath.py``).
    """
    Y = np.atleast_2d(np.asarray(objectives, dtype=float))
    n = Y.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    if n == 1:
        return np.ones(1, dtype=bool)
    if np.isnan(Y).any():
        # NaN comparisons would let a NaN pivot eliminate finite rows; the
        # loop implementation instead leaves non-dominated finite rows alone.
        return _pareto_front_mask_reference(Y)
    # Lexicographic sort: primary key column 0, then column 1, ...
    order = np.lexsort(Y.T[::-1])
    rows = Y[order]
    surviving = np.arange(n)  # positions into the sorted rows
    pointer = 0
    while pointer < rows.shape[0]:
        pivot = rows[pointer]
        # Keep rows with some coordinate strictly better than the pivot
        # (they are not dominated by it) and exact duplicates of the pivot
        # (mutually non-dominated by definition).
        alive = np.any(rows < pivot, axis=1) | np.all(rows == pivot, axis=1)
        alive[pointer] = True
        if alive.all():
            pointer += 1
            continue
        surviving = surviving[alive]
        rows = rows[alive]
        pointer = int(np.count_nonzero(alive[:pointer])) + 1
    mask = np.zeros(n, dtype=bool)
    mask[order[surviving]] = True
    return mask


def _pareto_front_mask_reference(objectives: np.ndarray) -> np.ndarray:
    """O(n^2 k) loop reference implementation (kept for equivalence tests)."""
    Y = np.atleast_2d(np.asarray(objectives, dtype=float))
    n = Y.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominated_by_i = np.all(Y >= Y[i], axis=1) & np.any(Y > Y[i], axis=1)
        mask &= ~dominated_by_i
        mask[i] = True
        # If someone else dominates i, drop it.
        dominates_i = np.all(Y <= Y[i], axis=1) & np.any(Y < Y[i], axis=1)
        if np.any(dominates_i & mask):
            mask[i] = False
    return mask


def pareto_front_indices(objectives: np.ndarray) -> np.ndarray:
    """Indices of non-dominated rows, in their original order."""
    return np.nonzero(pareto_front_mask(objectives))[0]


@dataclass
class ArchiveEntry:
    """One non-dominated entry of a :class:`ParetoArchive`."""

    payload: Any
    objectives: np.ndarray

    def to_dict(self) -> Dict:
        payload = self.payload
        if hasattr(payload, "to_dict"):
            payload = payload.to_dict()
        return {"payload": payload, "objectives": list(map(float, self.objectives))}


class ParetoArchive:
    """Incrementally-maintained set of mutually non-dominated entries.

    The archive accepts (payload, objectives) pairs; on each insertion it
    removes entries dominated by the newcomer and rejects the newcomer if an
    existing entry dominates it.  Exact duplicates of an existing objective
    vector are accepted (they are mutually non-dominated), which matches how
    the paper counts frontier members.
    """

    def __init__(self, num_objectives: int):
        if num_objectives < 1:
            raise ValueError(f"num_objectives must be >= 1, got {num_objectives}")
        self.num_objectives = int(num_objectives)
        self._entries: List[ArchiveEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def entries(self) -> Tuple[ArchiveEntry, ...]:
        """Current non-dominated entries."""
        return tuple(self._entries)

    @property
    def payloads(self) -> List[Any]:
        """Payloads of the current entries."""
        return [entry.payload for entry in self._entries]

    def objective_matrix(self) -> np.ndarray:
        """``(len(archive), num_objectives)`` matrix of objective vectors."""
        if not self._entries:
            return np.empty((0, self.num_objectives))
        return np.vstack([entry.objectives for entry in self._entries])

    def add(self, payload: Any, objectives: Sequence[float]) -> bool:
        """Offer a new entry; returns ``True`` if it joins the archive."""
        objectives = np.asarray(objectives, dtype=float).ravel()
        if objectives.shape != (self.num_objectives,):
            raise ValueError(
                f"expected {self.num_objectives} objectives, got shape {objectives.shape}"
            )
        for entry in self._entries:
            if dominates(entry.objectives, objectives):
                return False
        self._entries = [
            entry
            for entry in self._entries
            if not dominates(objectives, entry.objectives)
        ]
        self._entries.append(ArchiveEntry(payload=payload, objectives=objectives))
        return True

    def update_many(self, items: Iterable[Tuple[Any, Sequence[float]]]) -> int:
        """Offer many entries; returns how many were accepted."""
        return sum(1 for payload, objectives in items if self.add(payload, objectives))

    def to_dict(self) -> Dict:
        return {
            "num_objectives": self.num_objectives,
            "entries": [entry.to_dict() for entry in self._entries],
        }


# ---------------------------------------------------------------------------
# Quality indicators
# ---------------------------------------------------------------------------
def coverage(front_a: np.ndarray, front_b: np.ndarray) -> float:
    """C-metric: fraction of points in ``front_b`` dominated by some point of ``front_a``.

    This is the statistic behind the paper's Fig. 6 claims ("LENS's frontier
    dominates 60% of the new Traditional's frontier").  Returns 0.0 when
    ``front_b`` is empty.
    """
    A = np.atleast_2d(np.asarray(front_a, dtype=float))
    B = np.atleast_2d(np.asarray(front_b, dtype=float))
    if B.size == 0:
        return 0.0
    if A.size == 0:
        return 0.0
    dominated = 0
    for b in B:
        if any(dominates(a, b) for a in A):
            dominated += 1
    return dominated / B.shape[0]


def combined_front_composition(
    front_a: np.ndarray, front_b: np.ndarray
) -> Dict[str, float]:
    """Compose a joint Pareto frontier and report each source's share.

    Mirrors the paper's "a combined frontier made from both sets would
    constitute 76.47% candidates from LENS's optimal set".  Points from A and
    B are pooled, the joint non-dominated set is extracted, and the fraction
    of joint-front members originating from each source is returned.  Ties
    (identical objective vectors from both sources) count for both.
    """
    A = np.atleast_2d(np.asarray(front_a, dtype=float))
    B = np.atleast_2d(np.asarray(front_b, dtype=float))
    if A.size == 0 and B.size == 0:
        return {"fraction_a": 0.0, "fraction_b": 0.0, "combined_size": 0.0}
    if A.size == 0:
        return {"fraction_a": 0.0, "fraction_b": 1.0, "combined_size": float(B.shape[0])}
    if B.size == 0:
        return {"fraction_a": 1.0, "fraction_b": 0.0, "combined_size": float(A.shape[0])}
    pooled = np.vstack([A, B])
    origins = np.array(["a"] * A.shape[0] + ["b"] * B.shape[0])
    mask = pareto_front_mask(pooled)
    selected = origins[mask]
    total = int(mask.sum())
    count_a = int(np.sum(selected == "a"))
    count_b = int(np.sum(selected == "b"))
    return {
        "fraction_a": count_a / total,
        "fraction_b": count_b / total,
        "combined_size": float(total),
    }


def hypervolume_2d(points: np.ndarray, reference: Sequence[float]) -> float:
    """Exact hypervolume (area) dominated by a 2-D point set w.r.t. a reference.

    Points outside the reference box contribute nothing.  Minimisation is
    assumed: the dominated region lies between each point and the reference.
    """
    P = np.atleast_2d(np.asarray(points, dtype=float))
    ref = np.asarray(reference, dtype=float).ravel()
    if P.shape[1] != 2 or ref.shape != (2,):
        raise ValueError("hypervolume_2d requires 2-D points and a 2-D reference")
    inside = P[np.all(P <= ref, axis=1)]
    if inside.size == 0:
        return 0.0
    front = inside[pareto_front_mask(inside)]
    order = np.argsort(front[:, 0])
    front = front[order]
    volume = 0.0
    previous_y = ref[1]
    for x, y in front:
        width = ref[0] - x
        height = previous_y - y
        if width > 0 and height > 0:
            volume += width * height
        previous_y = min(previous_y, y)
    return float(volume)


def hypervolume_3d(points: np.ndarray, reference: Sequence[float]) -> float:
    """Exact hypervolume dominated by a 3-D point set w.r.t. a reference.

    Dimension-sweep algorithm: points inside the reference box are sorted by
    their third objective; the dominated volume is the sum of slabs, each the
    exact 2-D area (:func:`hypervolume_2d`) dominated by the projections of
    every point at or below the slab, times the slab's height.  Runs in
    O(m^2 log m) for a front of m points — exact where the old Monte-Carlo
    path only estimated.
    """
    P = np.atleast_2d(np.asarray(points, dtype=float))
    ref = np.asarray(reference, dtype=float).ravel()
    if P.shape[1] != 3 or ref.shape != (3,):
        raise ValueError("hypervolume_3d requires 3-D points and a 3-D reference")
    inside = P[np.all(P <= ref, axis=1)]
    if inside.size == 0:
        return 0.0
    front = inside[pareto_front_mask(inside)]
    order = np.argsort(front[:, 2], kind="stable")
    front = front[order]
    volume = 0.0
    heights = np.append(front[1:, 2], ref[2]) - front[:, 2]
    for index, height in enumerate(heights):
        if height <= 0.0:
            continue
        area = hypervolume_2d(front[: index + 1, :2], ref[:2])
        volume += area * float(height)
    return float(volume)


def hypervolume(
    points: np.ndarray,
    reference: Sequence[float],
    num_samples: int = 20000,
    seed: SeedLike = 0,
) -> float:
    """Hypervolume indicator: exact for 2-D/3-D, Monte Carlo beyond.

    Two and three objectives are computed exactly (:func:`hypervolume_2d`,
    :func:`hypervolume_3d`); with four or more the dominated fraction of the
    reference box is estimated with ``num_samples`` quasi-uniform samples,
    deterministic for a fixed ``seed``.
    """
    P = np.atleast_2d(np.asarray(points, dtype=float))
    ref = np.asarray(reference, dtype=float).ravel()
    if P.shape[1] != ref.shape[0]:
        raise ValueError(
            f"points have {P.shape[1]} objectives but reference has {ref.shape[0]}"
        )
    if P.shape[1] == 2:
        return hypervolume_2d(P, ref)
    if P.shape[1] == 3:
        return hypervolume_3d(P, ref)
    inside = P[np.all(P <= ref, axis=1)]
    if inside.size == 0:
        return 0.0
    lower = inside.min(axis=0)
    box_volume = float(np.prod(ref - lower))
    if box_volume <= 0.0:
        return 0.0
    rng = ensure_rng(seed)
    samples = rng.uniform(lower, ref, size=(num_samples, ref.shape[0]))
    dominated = np.zeros(num_samples, dtype=bool)
    for point in inside:
        dominated |= np.all(samples >= point, axis=1)
    return box_volume * float(dominated.mean())


# ---------------------------------------------------------------------------
# Front telemetry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FrontHistoryEntry:
    """Front state after one evaluation of a search run."""

    evaluation: int
    iteration: int
    front_size: int
    hypervolume: float
    joined_front: bool
    candidate: Optional[str] = None

    def to_dict(self) -> Dict:
        return {
            "evaluation": self.evaluation,
            "iteration": self.iteration,
            "front_size": self.front_size,
            "hypervolume": self.hypervolume,
            "joined_front": self.joined_front,
            "candidate": self.candidate,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FrontHistoryEntry":
        return cls(
            evaluation=int(data["evaluation"]),
            iteration=int(data.get("iteration", data["evaluation"])),
            front_size=int(data["front_size"]),
            hypervolume=float(data["hypervolume"]),
            joined_front=bool(data.get("joined_front", False)),
            candidate=data.get("candidate"),
        )


@dataclass(frozen=True)
class FrontHistory:
    """Per-evaluation Pareto-front trajectory of one search run.

    ``entries[t]`` describes the non-dominated front over the first ``t + 1``
    evaluations: its size, its exact hypervolume w.r.t. ``reference``
    (minimisation; exact for up to three objectives, see
    :func:`hypervolume`), and whether evaluation ``t`` joined the
    then-current front.  The history is a pure function of the candidate
    sequence and the reference point, so re-deriving it from a stored
    outcome reproduces it bit-for-bit.
    """

    metrics: Tuple[str, ...]
    reference: Tuple[float, ...]
    entries: Tuple[FrontHistoryEntry, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "metrics", tuple(str(m) for m in self.metrics))
        object.__setattr__(
            self, "reference", tuple(float(v) for v in self.reference)
        )
        object.__setattr__(self, "entries", tuple(self.entries))

    def __len__(self) -> int:
        return len(self.entries)

    def hypervolumes(self) -> np.ndarray:
        """Hypervolume after each evaluation, in evaluation order."""
        return np.array([entry.hypervolume for entry in self.entries])

    @property
    def final_hypervolume(self) -> float:
        """Hypervolume of the completed run's front (0.0 when empty)."""
        if not self.entries:
            return 0.0
        return self.entries[-1].hypervolume

    @property
    def final_front_size(self) -> int:
        """Size of the completed run's front (0 when empty)."""
        if not self.entries:
            return 0
        return self.entries[-1].front_size

    def front_advances(self) -> List[FrontHistoryEntry]:
        """The evaluations that joined the then-current front."""
        return [entry for entry in self.entries if entry.joined_front]

    def to_dict(self) -> Dict:
        return {
            "metrics": list(self.metrics),
            "reference": list(self.reference),
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FrontHistory":
        return cls(
            metrics=tuple(data.get("metrics", ())),
            reference=tuple(data.get("reference", ())),
            entries=tuple(
                FrontHistoryEntry.from_dict(entry)
                for entry in data.get("entries", ())
            ),
        )


def default_reference_point(objectives: np.ndarray) -> np.ndarray:
    """Deterministic hypervolume reference for a run's observed objectives.

    The nadir over every observation plus a 10 % margin of the observed
    range (and a tiny absolute epsilon so degenerate columns still enclose
    their points), matching the convention of
    :func:`repro.analysis.pareto_metrics.compare_fronts`.
    """
    Y = np.atleast_2d(np.asarray(objectives, dtype=float))
    if Y.size == 0:
        raise ValueError("cannot derive a reference point from no objectives")
    nadir = Y.max(axis=0)
    ideal = Y.min(axis=0)
    return nadir + 0.1 * (nadir - ideal) + 1e-9


def compute_front_history(
    objectives: np.ndarray,
    metrics: Sequence[str] = (),
    reference: Optional[Sequence[float]] = None,
    labels: Optional[Sequence[Optional[str]]] = None,
    iterations: Optional[Sequence[int]] = None,
) -> FrontHistory:
    """Derive the :class:`FrontHistory` of an evaluation sequence.

    Parameters
    ----------
    objectives:
        ``(n, k)`` matrix of observed objective vectors in evaluation order
        (all minimised).
    metrics:
        Optional objective names recorded in the history.
    reference:
        Hypervolume reference point; defaults to
        :func:`default_reference_point` over all observations, so the whole
        run is scored against one fixed box.
    labels / iterations:
        Optional per-evaluation candidate labels and iteration numbers.
    """
    Y = np.atleast_2d(np.asarray(objectives, dtype=float))
    n = Y.shape[0]
    if n == 0 or Y.size == 0:
        return FrontHistory(metrics=tuple(metrics), reference=(), entries=())
    ref = (
        default_reference_point(Y)
        if reference is None
        else np.asarray(reference, dtype=float).ravel()
    )
    if ref.shape[0] != Y.shape[1]:
        raise ValueError(
            f"reference has {ref.shape[0]} objectives but points have {Y.shape[1]}"
        )
    entries: List[FrontHistoryEntry] = []
    for t in range(n):
        prefix = Y[: t + 1]
        mask = pareto_front_mask(prefix)
        front = prefix[mask]
        entries.append(
            FrontHistoryEntry(
                evaluation=t,
                iteration=int(iterations[t]) if iterations is not None else t,
                front_size=int(mask.sum()),
                hypervolume=hypervolume(front, ref),
                joined_front=bool(mask[t]),
                candidate=None if labels is None else labels[t],
            )
        )
    return FrontHistory(
        metrics=tuple(metrics),
        reference=tuple(float(v) for v in ref),
        entries=tuple(entries),
    )


def non_dominated_sort(objectives: np.ndarray) -> List[np.ndarray]:
    """Partition points into successive non-dominated fronts (NSGA-style).

    Returns a list of index arrays: front 0 is the Pareto front, front 1 the
    Pareto front of the remainder, and so on.  Useful for ablation analyses
    of how deep the LENS frontier sits inside the explored population.
    """
    Y = np.atleast_2d(np.asarray(objectives, dtype=float))
    remaining = np.arange(Y.shape[0])
    fronts: List[np.ndarray] = []
    while remaining.size > 0:
        mask = pareto_front_mask(Y[remaining])
        fronts.append(remaining[mask])
        remaining = remaining[~mask]
    return fronts
