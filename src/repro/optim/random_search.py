"""Random-search baseline with the same interface as the MOBO optimizer.

Used by the ablation benchmarks to quantify how much of LENS's advantage comes
from the Bayesian search itself versus from partition-aware objectives.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.optim.mobo import (
    CallbackFn,
    FeatureFn,
    ObjectiveFn,
    ObservedPoint,
    OptimizationResult,
    SampleFn,
    _default_key,
    _normalize_objective_output,
)
from repro.optim.pareto import ParetoArchive
from repro.utils.rng import SeedLike, ensure_rng


class RandomSearch:
    """Uniform random search over the candidate space.

    Parameters mirror :class:`~repro.optim.mobo.MultiObjectiveBayesianOptimizer`
    where applicable; the total evaluation budget is ``num_evaluations``.
    """

    def __init__(
        self,
        sample_fn: SampleFn,
        feature_fn: FeatureFn,
        objective_fn: ObjectiveFn,
        num_objectives: int,
        num_evaluations: int = 60,
        key_fn: Callable[[Any], Any] = _default_key,
        seed: SeedLike = None,
        callback: Optional[CallbackFn] = None,
    ):
        if num_objectives < 1:
            raise ValueError(f"num_objectives must be >= 1, got {num_objectives}")
        if num_evaluations < 1:
            raise ValueError(f"num_evaluations must be >= 1, got {num_evaluations}")
        self.sample_fn = sample_fn
        self.feature_fn = feature_fn
        self.objective_fn = objective_fn
        self.num_objectives = int(num_objectives)
        self.num_evaluations = int(num_evaluations)
        self.key_fn = key_fn
        self.callback = callback
        self._rng = ensure_rng(seed)
        self.archive = ParetoArchive(self.num_objectives)

    def run(self) -> OptimizationResult:
        """Evaluate ``num_evaluations`` random candidates."""
        points = []
        seen = set()
        for iteration in range(self.num_evaluations):
            candidate = None
            for _ in range(50):
                proposal = self.sample_fn(self._rng)
                if self.key_fn(proposal) not in seen:
                    candidate = proposal
                    break
            if candidate is None:
                candidate = self.sample_fn(self._rng)
            seen.add(self.key_fn(candidate))
            objectives, metadata = _normalize_objective_output(
                self.objective_fn(candidate)
            )
            if objectives.shape != (self.num_objectives,):
                raise ValueError(
                    f"objective function returned {objectives.shape[0]} objectives, "
                    f"expected {self.num_objectives}"
                )
            features = np.asarray(self.feature_fn(candidate), dtype=float).ravel()
            point = ObservedPoint(
                candidate=candidate,
                features=features,
                objectives=objectives,
                iteration=iteration,
                phase="random",
                metadata=metadata,
            )
            points.append(point)
            self.archive.add(point, objectives)
            if self.callback is not None:
                self.callback(iteration, point, self.archive)
        return OptimizationResult(points, self.num_objectives)
