"""Exact Gaussian-process regression (the MOBO surrogate models).

Section III-B of the paper: each objective function ``f_k`` is approximated
by a surrogate Gaussian Process whose posterior is updated after every
evaluation, and an acquisition function built from the posteriors selects the
next query point.  This module provides the exact-GP machinery: Cholesky
based fitting, posterior mean/variance prediction, posterior function
sampling (for Thompson-sampling acquisitions) and a light-weight grid search
over kernel lengthscales driven by the log marginal likelihood.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.optim.kernels import Kernel, Matern52Kernel
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive

#: Jitter added to covariance diagonals for numerical stability.
DEFAULT_JITTER = 1e-8


class GaussianProcess:
    """Exact GP regression with a fixed kernel and Gaussian observation noise.

    Parameters
    ----------
    kernel:
        Covariance kernel; defaults to Matérn-5/2 with lengthscale 0.3.
    noise_variance:
        Variance of the i.i.d. Gaussian observation noise.
    normalize_y:
        Whether to standardise targets before fitting (recommended; the
        objective scales in this library span micro-seconds to joules).
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise_variance: float = 1e-4,
        normalize_y: bool = True,
    ):
        require_positive(noise_variance, "noise_variance")
        self.kernel = kernel if kernel is not None else Matern52Kernel()
        self.noise_variance = float(noise_variance)
        self.normalize_y = bool(normalize_y)
        self._X: Optional[np.ndarray] = None
        self._y_raw: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._y_mean: float = 0.0
        self._y_std: float = 1.0
        self._chol: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ fitting
    @property
    def is_fitted(self) -> bool:
        """Whether the GP has been conditioned on data."""
        return self._chol is not None

    @property
    def num_observations(self) -> int:
        """Number of training observations."""
        return 0 if self._X is None else self._X.shape[0]

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on observations ``(X, y)``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
            )
        if X.shape[0] < 1:
            raise ValueError("at least one observation is required")
        self._X = X
        self._y_raw = y
        if self.normalize_y:
            self._y_mean = float(y.mean())
            std = float(y.std())
            self._y_std = std if std > 1e-12 else 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._y = (y - self._y_mean) / self._y_std
        K = self.kernel(X, X)
        K[np.diag_indices_from(K)] += self.noise_variance + DEFAULT_JITTER
        self._chol = np.linalg.cholesky(K)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, self._y)
        )
        return self

    # ------------------------------------------------------------------ prediction
    def predict(
        self, Xs: np.ndarray, return_std: bool = True
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Posterior mean (and optionally standard deviation) at ``Xs``."""
        self._require_fitted()
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        Ks = self.kernel(self._X, Xs)
        mean = Ks.T @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean, None
        v = np.linalg.solve(self._chol, Ks)
        var = self.kernel.diag(Xs) - np.sum(v**2, axis=0)
        var = np.maximum(var, 1e-12)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def posterior_covariance(self, Xs: np.ndarray) -> np.ndarray:
        """Full posterior covariance matrix at ``Xs`` (in original y units)."""
        self._require_fitted()
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        Ks = self.kernel(self._X, Xs)
        v = np.linalg.solve(self._chol, Ks)
        cov = self.kernel(Xs, Xs) - v.T @ v
        cov[np.diag_indices_from(cov)] = np.maximum(np.diag(cov), 1e-12)
        return cov * self._y_std**2

    def sample_posterior(
        self, Xs: np.ndarray, rng: SeedLike = None, num_samples: int = 1
    ) -> np.ndarray:
        """Draw joint posterior function samples at ``Xs``.

        Returns an array of shape ``(num_samples, len(Xs))`` in original target
        units.  Used by Thompson-sampling acquisitions.
        """
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        rng = ensure_rng(rng)
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        mean, _ = self.predict(Xs, return_std=False)
        cov = self.posterior_covariance(Xs)
        cov[np.diag_indices_from(cov)] += DEFAULT_JITTER * self._y_std**2
        chol = np.linalg.cholesky(cov)
        normals = rng.standard_normal((num_samples, Xs.shape[0]))
        return mean[None, :] + normals @ chol.T

    # ------------------------------------------------------------------ model selection
    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood of the (normalised) training targets."""
        self._require_fitted()
        n = self._X.shape[0]
        data_fit = -0.5 * float(self._y @ self._alpha)
        complexity = -float(np.sum(np.log(np.diag(self._chol))))
        constant = -0.5 * n * np.log(2.0 * np.pi)
        return data_fit + complexity + constant

    def optimize_lengthscale(
        self, candidates: Sequence[float] = (0.1, 0.2, 0.3, 0.5, 0.8, 1.2, 2.0, 3.0)
    ) -> float:
        """Grid-search the kernel lengthscale by maximising the marginal likelihood.

        Refits the GP with the best lengthscale and returns it.  A simple grid
        is sufficient here: the genotype features live in the unit cube, so
        plausible lengthscales span roughly one order of magnitude.
        """
        self._require_fitted()
        X, y = self._X, self._y_raw
        best_score = -np.inf
        best_lengthscale = None
        for lengthscale in candidates:
            self.kernel = self.kernel.with_params(lengthscale=lengthscale)
            self.fit(X, y)
            score = self.log_marginal_likelihood()
            if score > best_score:
                best_score = score
                best_lengthscale = lengthscale
        self.kernel = self.kernel.with_params(lengthscale=best_lengthscale)
        self.fit(X, y)
        return float(best_lengthscale)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("GaussianProcess must be fitted before use")
