"""Exact Gaussian-process regression (the MOBO surrogate models).

Section III-B of the paper: each objective function ``f_k`` is approximated
by a surrogate Gaussian Process whose posterior is updated after every
evaluation, and an acquisition function built from the posteriors selects the
next query point.  This module provides the exact-GP machinery: Cholesky
based fitting, posterior mean/variance prediction, posterior function
sampling (for Thompson-sampling acquisitions) and a light-weight grid search
over kernel lengthscales driven by the log marginal likelihood.

Two conditioning paths are provided:

* :meth:`GaussianProcess.fit` — the cold path: build the full kernel matrix
  and factor it from scratch (O(n^3));
* :meth:`GaussianProcess.extend` — the incremental path: append new
  observations to an already-conditioned model with a rank-1/block Cholesky
  update (O(n^2 m) for ``m`` new rows) and recompute only the target
  normalisation and ``alpha``.  ``update_mode="exact-refit"`` turns every
  ``extend`` into a full refit, as a numerical fallback.

The incremental path is what makes long searches affordable: refitting after
every evaluation costs O(N^4) over an N-evaluation run on the cold path but
O(N^3) on the incremental one (see ``benchmarks/bench_gp_hotpath.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.optim.kernels import (
    Kernel,
    Matern52Kernel,
    pairwise_distances,
    supports_distance_reuse,
)
from repro.resilience import faults
from repro.resilience.health import HealthLog
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive

#: Jitter added to covariance diagonals for numerical stability.
DEFAULT_JITTER = 1e-8

#: Factor the jitter escalates by after a failed factorisation.
JITTER_ESCALATION = 10.0

#: Ceiling of the jitter escalation ladder.  Features live in the unit cube
#: and targets are standardised, so kernel diagonals are O(1): 1e-2 is the
#: largest diagonal inflation that still leaves a meaningful posterior.
MAX_JITTER = 1e-2


def _checked_cholesky(matrix: np.ndarray) -> np.ndarray:
    """``np.linalg.cholesky`` with a fault-injection consult (tests/drills)."""
    injector = faults.active()
    if injector is not None and injector.take_linalg_fault():
        raise np.linalg.LinAlgError("injected factorization failure")
    return np.linalg.cholesky(matrix)


def escalating_cholesky(
    matrix: np.ndarray,
    health: Optional[HealthLog] = None,
    site: str = "fit",
) -> np.ndarray:
    """Factor ``matrix``, escalating diagonal jitter x10 up to a cap on failure.

    ``matrix`` must already carry its base noise/jitter diagonal; it is
    modified in place when escalation occurs (additional jitter stacks on
    the diagonal).  This is the first rung of the numerical degradation
    ladder: a near-singular covariance (duplicate rows, collapsed
    lengthscales) gets progressively regularised instead of raising, and
    each successful recovery is recorded as an ``H_JITTER_ESCALATED``
    health event.  Raises :class:`numpy.linalg.LinAlgError` only once the
    :data:`MAX_JITTER` cap is exhausted — callers further up the ladder
    (the model bank, the MOBO loop) take over from there.
    """
    try:
        return _checked_cholesky(matrix)
    except np.linalg.LinAlgError:
        pass
    added = 0.0
    jitter = DEFAULT_JITTER * JITTER_ESCALATION
    diag = np.diag_indices_from(matrix)
    while jitter <= MAX_JITTER:
        matrix[diag] += jitter - added
        added = jitter
        try:
            factor = _checked_cholesky(matrix)
        except np.linalg.LinAlgError:
            jitter *= JITTER_ESCALATION
            continue
        if health is not None:
            health.record(
                "H_JITTER_ESCALATED",
                f"{site}: factorisation recovered with jitter {added:g}",
                site=site,
                jitter=added,
            )
        return factor
    raise np.linalg.LinAlgError(
        f"{site}: Cholesky factorisation failed even with jitter {added:g}"
    )

try:  # pragma: no cover - exercised implicitly everywhere
    # The raw LAPACK binding skips scipy.linalg.solve_triangular's python
    # validation layer, whose fixed ~0.1 ms/call overhead would otherwise
    # dominate the O(n^2) incremental updates this module is built around.
    from scipy.linalg.lapack import dtrtrs as _dtrtrs

    def triangular_solve(L: np.ndarray, b: np.ndarray, trans: bool = False) -> np.ndarray:
        """Solve ``L x = b`` (or ``L.T x = b``) for lower-triangular ``L`` in O(n^2)."""
        x, info = _dtrtrs(L, b, lower=1, trans=1 if trans else 0)
        if info != 0:
            raise np.linalg.LinAlgError(
                f"triangular solve failed (LAPACK dtrtrs info={info})"
            )
        return x

except ImportError:  # pragma: no cover - scipy is a declared dependency

    def triangular_solve(L: np.ndarray, b: np.ndarray, trans: bool = False) -> np.ndarray:
        """Generic-solver fallback when scipy is unavailable (O(n^3))."""
        return np.linalg.solve(L.T if trans else L, b)

#: Accepted values for the ``update_mode`` flag of :class:`GaussianProcess`.
UPDATE_MODES = ("incremental", "exact-refit")

#: Initial capacity of the growing observation buffers.
_MIN_CAPACITY = 16


class GaussianProcess:
    """Exact GP regression with a fixed kernel and Gaussian observation noise.

    Parameters
    ----------
    kernel:
        Covariance kernel; defaults to Matérn-5/2 with lengthscale 0.3.
    noise_variance:
        Variance of the i.i.d. Gaussian observation noise.
    normalize_y:
        Whether to standardise targets before fitting (recommended; the
        objective scales in this library span micro-seconds to joules).
    update_mode:
        ``"incremental"`` (default) makes :meth:`extend` perform a rank-1
        block Cholesky append; ``"exact-refit"`` makes it fall back to a full
        :meth:`fit` on the accumulated data (numerically identical to never
        having used the incremental path).
    health:
        Optional :class:`~repro.resilience.health.HealthLog` receiving an
        ``H_JITTER_ESCALATED`` event whenever a factorisation only succeeds
        with escalated jitter.  ``None`` (the default) records nothing; the
        healthy path is identical either way.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise_variance: float = 1e-4,
        normalize_y: bool = True,
        update_mode: str = "incremental",
        health: Optional[HealthLog] = None,
    ):
        require_positive(noise_variance, "noise_variance")
        if update_mode not in UPDATE_MODES:
            raise ValueError(
                f"update_mode must be one of {UPDATE_MODES}, got {update_mode!r}"
            )
        self.kernel = kernel if kernel is not None else Matern52Kernel()
        self.noise_variance = float(noise_variance)
        self.normalize_y = bool(normalize_y)
        self.update_mode = update_mode
        self.health = health
        self._X: Optional[np.ndarray] = None
        self._y_raw: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._y_mean: float = 0.0
        self._y_std: float = 1.0
        self._chol: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        # Capacity-doubling buffers backing the incremental path.  ``_X`` and
        # ``_chol`` are views into these when the model was grown via extend().
        self._n: int = 0
        self._X_buf: Optional[np.ndarray] = None
        self._L_buf: Optional[np.ndarray] = None
        self._y_buf: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ fitting
    @property
    def is_fitted(self) -> bool:
        """Whether the GP has been conditioned on data."""
        return self._chol is not None

    @property
    def num_observations(self) -> int:
        """Number of training observations."""
        return 0 if self._X is None else self._X.shape[0]

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on observations ``(X, y)`` (full O(n^3) factorisation)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
            )
        if X.shape[0] < 1:
            raise ValueError("at least one observation is required")
        K = self.kernel(X, X)
        return self._fit_with_kernel_matrix(X, y, K)

    def _fit_with_kernel_matrix(
        self, X: np.ndarray, y: np.ndarray, K: np.ndarray, retarget: bool = True
    ) -> "GaussianProcess":
        """Shared tail of :meth:`fit` given a precomputed noiseless ``K``.

        ``K`` is modified in place (the noise/jitter diagonal is added).
        ``retarget=False`` leaves normalisation/``alpha`` stale for callers
        (the model bank) that immediately batch-retarget.
        """
        self._X = X
        self._y_raw = y
        K[np.diag_indices_from(K)] += self.noise_variance + DEFAULT_JITTER
        self._chol = escalating_cholesky(K, health=self.health, site="fit")
        if retarget:
            self._refresh_target_normalization()
            self._recompute_alpha()
        # A cold fit owns exact-size arrays; the growing buffers are rebuilt
        # lazily on the next extend().
        self._n = X.shape[0]
        self._X_buf = None
        self._L_buf = None
        self._y_buf = None
        return self

    def _refresh_target_normalization(self) -> None:
        """Recompute ``y_mean``/``y_std`` and the standardised targets."""
        y = self._y_raw
        if self.normalize_y:
            self._y_mean = float(y.mean())
            std = float(y.std())
            self._y_std = std if std > 1e-12 else 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self._y = (y - self._y_mean) / self._y_std

    def _recompute_alpha(self) -> None:
        """Recompute ``alpha = K^-1 y`` from the current Cholesky factor (O(n^2))."""
        self._alpha = triangular_solve(
            self._chol, triangular_solve(self._chol, self._y), trans=True
        )

    # ------------------------------------------------------------------ incremental path
    def extend(
        self, x_new: np.ndarray, y_new: np.ndarray, retarget: bool = True
    ) -> "GaussianProcess":
        """Append observations to an already-fitted GP.

        On the ``"incremental"`` path the existing Cholesky factor is grown
        with a block append — ``L21 = solve(L11, K12).T`` and
        ``L22 = chol(K22 + noise I - L21 L21.T)`` — which costs O(n^2 m) for
        ``m`` new rows instead of the O(n^3) full refactorisation, and the
        target normalisation is refreshed by recomputing only ``alpha`` (two
        O(n^2) triangular solves).  Posterior mean/std agree with a full
        refit to floating-point roundoff (see the parity tests).

        On ``update_mode="exact-refit"`` this is literally ``fit`` on the
        stacked data.  Calling ``extend`` on an unfitted model is equivalent
        to ``fit``.  ``retarget=False`` grows the factor but leaves ``alpha``
        and the normalisation stale — for callers (the model bank) that
        immediately follow up with :meth:`set_targets`.
        """
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        y_new = np.asarray(y_new, dtype=float).ravel()
        if x_new.shape[0] != y_new.shape[0]:
            raise ValueError(
                f"x_new has {x_new.shape[0]} rows but y_new has {y_new.shape[0]} entries"
            )
        if x_new.shape[0] == 0:
            return self
        if not self.is_fitted:
            return self.fit(x_new, y_new)
        if x_new.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"x_new has {x_new.shape[1]} features, expected {self._X.shape[1]}"
            )
        if self.update_mode == "exact-refit":
            return self.fit(
                np.vstack([self._X, x_new]), np.concatenate([self._y_raw, y_new])
            )

        n, m = self._X.shape[0], x_new.shape[0]
        self._ensure_capacity(n + m)
        X_old = self._X_buf[:n]

        # Block Cholesky append: the leading n x n block of the factor is
        # untouched; only the m new rows are computed.
        K12 = self.kernel(X_old, x_new)  # (n, m)
        K22 = self.kernel(x_new, x_new)  # (m, m)
        K22[np.diag_indices_from(K22)] += self.noise_variance + DEFAULT_JITTER
        L11 = self._L_buf[:n, :n]
        L21 = triangular_solve(L11, K12).T  # (m, n)
        S = K22 - L21 @ L21.T
        L22 = escalating_cholesky(S, health=self.health, site="extend")

        self._X_buf[n : n + m] = x_new
        self._y_buf[n : n + m] = y_new
        self._L_buf[n : n + m, :n] = L21
        self._L_buf[n : n + m, n : n + m] = L22
        self._L_buf[:n, n : n + m] = 0.0
        self._n = n + m

        self._X = self._X_buf[: self._n]
        self._y_raw = self._y_buf[: self._n]
        self._chol = self._L_buf[: self._n, : self._n]
        if retarget:
            self.set_targets(self._y_raw)
        return self

    def set_targets(self, y: np.ndarray) -> "GaussianProcess":
        """Replace the training targets without touching the kernel factor.

        The covariance (and its Cholesky factor) depends only on ``X`` and the
        kernel hyperparameters, so retargeting — e.g. when the MOBO loop
        re-normalises all objectives after each evaluation — only needs the
        normalisation statistics and ``alpha`` recomputed: O(n^2) instead of
        O(n^3).
        """
        self._install_raw_targets(y)
        self._recompute_alpha()
        return self

    def _install_raw_targets(self, y: np.ndarray) -> None:
        """Store new raw targets and refresh normalisation, without ``alpha``.

        Split out so a :class:`~repro.optim.gp_bank.GPBank` can retarget all
        member models and then recompute every ``alpha`` in one batched
        multi-RHS triangular solve.
        """
        self._require_fitted()
        y = np.asarray(y, dtype=float).ravel()
        if y.shape[0] != self._X.shape[0]:
            raise ValueError(
                f"expected {self._X.shape[0]} targets, got {y.shape[0]}"
            )
        if self._y_buf is not None and y.base is not self._y_buf:
            self._y_buf[: self._n] = y
            self._y_raw = self._y_buf[: self._n]
        else:
            self._y_raw = y
        self._refresh_target_normalization()

    def _ensure_capacity(self, needed: int) -> None:
        """Grow the observation buffers to hold ``needed`` rows (amortised O(1))."""
        if self._X_buf is not None and self._X_buf.shape[0] >= needed:
            return
        capacity = max(_MIN_CAPACITY, needed)
        if self._X_buf is not None:
            capacity = max(capacity, 2 * self._X_buf.shape[0])
        elif self._X is not None:
            capacity = max(capacity, 2 * self._X.shape[0])
        d = self._X.shape[1]
        n = self._X.shape[0]
        X_buf = np.zeros((capacity, d))
        L_buf = np.zeros((capacity, capacity))
        y_buf = np.zeros(capacity)
        X_buf[:n] = self._X
        L_buf[:n, :n] = self._chol
        y_buf[:n] = self._y_raw
        self._X_buf, self._L_buf, self._y_buf = X_buf, L_buf, y_buf
        self._n = n
        self._X = self._X_buf[:n]
        self._y_raw = self._y_buf[:n]
        self._chol = self._L_buf[:n, :n]

    # ------------------------------------------------------------------ prediction
    def predict(
        self, Xs: np.ndarray, return_std: bool = True
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Posterior mean (and optionally standard deviation) at ``Xs``."""
        self._require_fitted()
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        Ks = self.kernel(self._X, Xs)
        mean = Ks.T @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean, None
        v = triangular_solve(self._chol, Ks)
        var = self.kernel.diag(Xs) - np.sum(v**2, axis=0)
        var = np.maximum(var, 1e-12)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def posterior_covariance(self, Xs: np.ndarray) -> np.ndarray:
        """Full posterior covariance matrix at ``Xs`` (in original y units)."""
        self._require_fitted()
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        Ks = self.kernel(self._X, Xs)
        v = triangular_solve(self._chol, Ks)
        cov = self.kernel(Xs, Xs) - v.T @ v
        cov[np.diag_indices_from(cov)] = np.maximum(np.diag(cov), 1e-12)
        return cov * self._y_std**2

    def sample_posterior(
        self, Xs: np.ndarray, rng: SeedLike = None, num_samples: int = 1
    ) -> np.ndarray:
        """Draw joint posterior function samples at ``Xs``.

        Returns an array of shape ``(num_samples, len(Xs))`` in original target
        units.  Used by Thompson-sampling acquisitions.
        """
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        rng = ensure_rng(rng)
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        mean, _ = self.predict(Xs, return_std=False)
        cov = self.posterior_covariance(Xs)
        cov[np.diag_indices_from(cov)] += DEFAULT_JITTER * self._y_std**2
        chol = escalating_cholesky(cov, health=self.health, site="sample_posterior")
        normals = rng.standard_normal((num_samples, Xs.shape[0]))
        return mean[None, :] + normals @ chol.T

    # ------------------------------------------------------------------ model selection
    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood of the (normalised) training targets."""
        self._require_fitted()
        n = self._X.shape[0]
        data_fit = -0.5 * float(self._y @ self._alpha)
        complexity = -float(np.sum(np.log(np.diag(self._chol))))
        constant = -0.5 * n * np.log(2.0 * np.pi)
        return data_fit + complexity + constant

    def optimize_lengthscale(
        self,
        candidates: Sequence[float] = (0.1, 0.2, 0.3, 0.5, 0.8, 1.2, 2.0, 3.0),
        _distances: Optional[np.ndarray] = None,
    ) -> float:
        """Grid-search the kernel lengthscale by maximising the marginal likelihood.

        Leaves the GP fitted with the best lengthscale and returns it.  A
        simple grid is sufficient here: the genotype features live in the unit
        cube, so plausible lengthscales span roughly one order of magnitude.

        For scalar lengthscales the unscaled pairwise distance matrix is
        computed once (or taken from ``_distances``, letting a model bank
        share it across objectives) and every grid point evaluates the kernel
        as an elementwise rescale — one O(n^2 d) distance pass for the whole
        grid instead of one per refit.  The winning grid iteration's factor is
        kept directly, so no redundant final refit is performed.
        """
        self._require_fitted()
        X, y = self._X, self._y_raw
        r0: Optional[np.ndarray] = None
        if supports_distance_reuse(self.kernel):
            r0 = pairwise_distances(X, X) if _distances is None else _distances
        best_score = -np.inf
        best_state = None
        for lengthscale in candidates:
            self.kernel = self.kernel.with_params(lengthscale=lengthscale)
            if r0 is not None:
                K = self.kernel.from_scaled_distances(r0 / float(lengthscale))
                self._fit_with_kernel_matrix(X, y, K)
            else:
                self.fit(X, y)
            score = self.log_marginal_likelihood()
            if score > best_score:
                best_score = score
                best_state = (
                    float(lengthscale),
                    self._chol,
                    self._alpha,
                    self._y,
                    self._y_mean,
                    self._y_std,
                )
        # Restore the winning iteration's factor instead of refitting it: the
        # grid already paid for that factorisation.
        lengthscale, chol, alpha, y_norm, y_mean, y_std = best_state
        self.kernel = self.kernel.with_params(lengthscale=lengthscale)
        self._chol = chol
        self._alpha = alpha
        self._y = y_norm
        self._y_mean, self._y_std = y_mean, y_std
        return float(lengthscale)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("GaussianProcess must be fitted before use")
