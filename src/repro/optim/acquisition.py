"""Acquisition strategies over a discrete candidate pool.

The architecture search space is finite and discrete, so the maximisation of
the acquisition function (Eq. 7 of the paper) is performed over a sampled
pool of candidate genotypes rather than by continuous optimisation.  Each
strategy scores every pool member per objective; the MOBO loop then
scalarises the per-objective scores and picks the pool member with the best
(lowest) scalarised value.

All objectives are minimised, so *lower scores are better* for every strategy.

Every strategy accepts either a plain sequence of per-objective
:class:`~repro.optim.gp.GaussianProcess` models or a
:class:`~repro.optim.gp_bank.GPBank`.  With a homogeneous bank the expensive
shared pieces — the pool cross-covariance, the triangular solve and (for
Thompson sampling) the posterior covariance factor — are computed once for
all objectives instead of once per objective, which is the acquisition-side
half of the incremental surrogate fast path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.optim.gp import GaussianProcess
from repro.optim.gp_bank import GPBank
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_non_negative

#: Acquisition strategy names accepted by the optimizers.
ACQUISITION_STRATEGIES = ("ts", "ucb", "mean", "random", "epdc")

#: Either a bank or a plain per-objective model sequence.
Models = Union[Sequence[GaussianProcess], GPBank]


def thompson_scores(
    models: Models,
    pool_features: np.ndarray,
    rng: SeedLike = None,
) -> np.ndarray:
    """Thompson-sampling scores: one joint posterior draw per objective.

    Returns an ``(n_pool, n_objectives)`` matrix of sampled objective values.
    Minimising a scalarisation of these samples implements multi-objective
    Thompson sampling, the strategy Dragonfly uses by default.
    """
    rng = ensure_rng(rng)
    pool_features = np.atleast_2d(np.asarray(pool_features, dtype=float))
    if isinstance(models, GPBank):
        return models.thompson_matrix(pool_features, rng=rng)
    columns: List[np.ndarray] = []
    for model in models:
        sample = model.sample_posterior(pool_features, rng=rng, num_samples=1)[0]
        columns.append(sample)
    return np.column_stack(columns)


def lcb_scores(
    models: Models,
    pool_features: np.ndarray,
    beta: float = 2.0,
) -> np.ndarray:
    """Lower-confidence-bound scores ``mean - beta * std`` per objective.

    Optimistic under minimisation: points with low predicted mean or high
    uncertainty receive low (attractive) scores.
    """
    require_non_negative(beta, "beta")
    pool_features = np.atleast_2d(np.asarray(pool_features, dtype=float))
    if isinstance(models, GPBank):
        mean, std = models.predict(pool_features, return_std=True)
        return mean - beta * std
    columns: List[np.ndarray] = []
    for model in models:
        mean, std = model.predict(pool_features, return_std=True)
        columns.append(mean - beta * std)
    return np.column_stack(columns)


def mean_scores(models: Models, pool_features: np.ndarray) -> np.ndarray:
    """Pure-exploitation scores: the posterior means."""
    pool_features = np.atleast_2d(np.asarray(pool_features, dtype=float))
    if isinstance(models, GPBank):
        mean, _ = models.predict(pool_features, return_std=False)
        return mean
    columns: List[np.ndarray] = []
    for model in models:
        mean, _ = model.predict(pool_features, return_std=False)
        columns.append(mean)
    return np.column_stack(columns)


def expected_improvement(
    model: GaussianProcess,
    pool_features: np.ndarray,
    best_observed: float,
) -> np.ndarray:
    """Single-objective expected improvement (for minimisation).

    Provided for the single-objective ablations; returns *negative* EI so the
    convention "lower score is better" holds for every strategy.
    """
    from scipy.stats import norm

    pool_features = np.atleast_2d(np.asarray(pool_features, dtype=float))
    mean, std = model.predict(pool_features, return_std=True)
    std = np.maximum(std, 1e-12)
    improvement = best_observed - mean
    z = improvement / std
    ei = improvement * norm.cdf(z) + std * norm.pdf(z)
    return -np.maximum(ei, 0.0)


def acquisition_scores(
    strategy: str,
    models: Models,
    pool_features: np.ndarray,
    rng: SeedLike = None,
    beta: float = 2.0,
    front: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Dispatch to the requested acquisition strategy.

    ``"random"`` returns i.i.d. uniform scores, yielding random search with
    the same bookkeeping as the model-based strategies (useful as a baseline).
    ``"epdc"`` (see :mod:`repro.optim.epdc`) additionally requires ``front``
    — the current non-dominated objective vectors, in the *normalised*
    units the surrogates were fit on.
    """
    strategy = strategy.strip().lower()
    if strategy not in ACQUISITION_STRATEGIES:
        raise ValueError(
            f"unknown acquisition strategy {strategy!r}; "
            f"available: {ACQUISITION_STRATEGIES}"
        )
    pool_features = np.atleast_2d(np.asarray(pool_features, dtype=float))
    if strategy == "random":
        rng = ensure_rng(rng)
        return rng.uniform(size=(pool_features.shape[0], len(models)))
    if strategy == "ts":
        return thompson_scores(models, pool_features, rng=rng)
    if strategy == "ucb":
        return lcb_scores(models, pool_features, beta=beta)
    if strategy == "epdc":
        from repro.optim.epdc import epdc_score_matrix  # local: avoids a cycle

        if front is None:
            raise ValueError(
                "the 'epdc' strategy needs the current Pareto front "
                "(pass front=...)"
            )
        return epdc_score_matrix(models, pool_features, front, rng=rng)
    return mean_scores(models, pool_features)
