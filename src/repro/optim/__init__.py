"""Multi-objective Bayesian optimization substrate."""

from repro.optim.acquisition import (
    ACQUISITION_STRATEGIES,
    acquisition_scores,
    expected_improvement,
    lcb_scores,
    mean_scores,
    thompson_scores,
)
from repro.optim.gp import UPDATE_MODES, GaussianProcess
from repro.optim.gp_bank import GPBank
from repro.optim.kernels import (
    Kernel,
    Matern52Kernel,
    RBFKernel,
    kernel_by_name,
    pairwise_distances,
    pairwise_scaled_distances,
)
from repro.optim.mobo import (
    DEFAULT_GP_UPDATE,
    MultiObjectiveBayesianOptimizer,
    ObservedPoint,
    OptimizationResult,
)
from repro.optim.pareto import (
    ArchiveEntry,
    ParetoArchive,
    combined_front_composition,
    coverage,
    dominates,
    hypervolume,
    hypervolume_2d,
    non_dominated_sort,
    pareto_front_indices,
    pareto_front_mask,
)
from repro.optim.random_search import RandomSearch
from repro.optim.scalarization import (
    chebyshev_scalarize,
    normalize_objectives,
    random_weights,
    weighted_sum_scalarize,
)

__all__ = [
    "ACQUISITION_STRATEGIES",
    "acquisition_scores",
    "expected_improvement",
    "lcb_scores",
    "mean_scores",
    "thompson_scores",
    "GaussianProcess",
    "GPBank",
    "UPDATE_MODES",
    "Kernel",
    "Matern52Kernel",
    "RBFKernel",
    "kernel_by_name",
    "pairwise_distances",
    "pairwise_scaled_distances",
    "DEFAULT_GP_UPDATE",
    "MultiObjectiveBayesianOptimizer",
    "ObservedPoint",
    "OptimizationResult",
    "ArchiveEntry",
    "ParetoArchive",
    "combined_front_composition",
    "coverage",
    "dominates",
    "hypervolume",
    "hypervolume_2d",
    "non_dominated_sort",
    "pareto_front_indices",
    "pareto_front_mask",
    "RandomSearch",
    "chebyshev_scalarize",
    "normalize_objectives",
    "random_weights",
    "weighted_sum_scalarize",
]
