"""Versioned request/outcome envelopes for search runs.

A :class:`SearchRequest` declares *what* to run — scenario, strategy and
budgets — entirely in plain data, so runs can be persisted, replayed and
compared; a :class:`SearchOutcome` pairs the request with every explored
candidate plus timing and cache statistics.  Both round-trip losslessly
through ``to_dict``/``from_dict`` and serialize with
:func:`repro.utils.serialization.to_jsonable` / :mod:`json` without custom
encoders.

Envelopes carry a ``schema_version``; :func:`check_schema_version` rejects
payloads written by a *newer* library (older versions are upgraded in
``from_dict`` as the schema evolves).

:func:`request_fingerprint` derives a deterministic hex key from a request's
computational content (everything except tag metadata); campaign run stores
(:mod:`repro.campaign.store`) key persisted outcomes by it so interrupted
grids can resume without re-running finished cells.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.scenario import DEFAULT_SCENARIO, SCENARIOS, Scenario, ScenarioRegistry
from repro.core.results import CandidateEvaluation, SearchResult
from repro.optim.pareto import FrontHistory
from repro.nn.spaces import DEFAULT_SEARCH_SPACE
from repro.utils.serialization import load_json
from repro.utils.validation import require_positive

#: Current envelope schema version.
#:
#: * **v1** — the original request/outcome envelopes.
#: * **v2** — requests gained ``search_space`` (the named workload to
#:   search, see :data:`repro.api.registry.SEARCH_SPACES`).  v1 payloads
#:   upgrade in ``from_dict`` by defaulting to
#:   :data:`~repro.nn.spaces.DEFAULT_SEARCH_SPACE`; their fingerprints are
#:   unchanged (see :func:`request_fingerprint`).
#: * **v3** — requests gained ``batch_size`` (candidates proposed per BO
#:   iteration, default :data:`DEFAULT_BATCH_SIZE`; dropped from
#:   fingerprints at the default so v1/v2 fingerprints are unchanged) and
#:   outcomes gained ``front_history`` (the per-evaluation hypervolume
#:   trajectory, :class:`repro.optim.pareto.FrontHistory`).  Older payloads
#:   upgrade with ``batch_size=1`` and no history.
#: * **v4** — outcomes gained ``health`` (resilience event counters by
#:   ``H_*`` code, see :mod:`repro.resilience.health`).  Requests are
#:   unchanged, so every fingerprint is unchanged; older outcome payloads
#:   upgrade with empty counters.
SCHEMA_VERSION = 4

#: Default candidates-per-iteration; requests at the default fingerprint
#: identically to pre-v3 requests.
DEFAULT_BATCH_SIZE = 1

#: Request fields excluded from fingerprints: pure metadata that cannot
#: change what a run computes.
FINGERPRINT_EXCLUDED_FIELDS = ("schema_version", "tags")

#: Hex digits kept in a request fingerprint (64 bits — ample for run stores).
FINGERPRINT_LENGTH = 16


def request_fingerprint(request: "SearchRequest") -> str:
    """Deterministic hex fingerprint of a request's computational content.

    The fingerprint is a truncated SHA-256 of the request's canonical JSON
    form with :data:`FINGERPRINT_EXCLUDED_FIELDS` removed, so two requests
    with the same *declared* content — regardless of tag metadata or the
    library version that wrote them — share one fingerprint.  Run stores key
    persisted outcomes by it to make campaigns resumable.

    Fields added by later schema versions are dropped from the payload while
    they hold their upgrade default (``search_space="lens-vgg"``,
    ``batch_size=1``), so a schema-v1 request keeps the exact fingerprint it
    had when v1 was current — pinned by the golden-file tests in
    ``tests/test_envelopes_golden.py`` — and stores written before the
    upgrade still resume correctly.  Non-default values hash normally, so
    requests targeting different spaces (or q-batch budgets) never collide.

    Declared content is hashed as-is: a scenario referenced *by name* is
    keyed by that name (its registry resolution may legitimately change),
    so it never shares a fingerprint with the same scenario passed inline.
    Stick to one form within a campaign — grids built from
    :class:`~repro.campaign.gridspec.CampaignSpec` always use names.
    """
    payload = request.to_dict()
    for name in FINGERPRINT_EXCLUDED_FIELDS:
        payload.pop(name, None)
    if payload.get("search_space") == DEFAULT_SEARCH_SPACE:
        payload.pop("search_space")
    if payload.get("batch_size") == DEFAULT_BATCH_SIZE:
        payload.pop("batch_size")
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:FINGERPRINT_LENGTH]


def check_schema_version(data: Mapping[str, Any], what: str) -> int:
    """Validate the ``schema_version`` field of a serialized envelope."""
    version = int(data.get("schema_version", SCHEMA_VERSION))
    if version < 1 or version > SCHEMA_VERSION:
        raise ValueError(
            f"cannot read {what} with schema_version={version}; "
            f"this library supports versions 1..{SCHEMA_VERSION}"
        )
    return version


@dataclass(frozen=True)
class SearchRequest:
    """Declarative description of one search run.

    Parameters
    ----------
    scenario:
        Scenario name (resolved through a :class:`ScenarioRegistry`) or an
        inline :class:`Scenario`.
    strategy:
        Search strategy name (``"lens"``, ``"traditional"`` or ``"random"``,
        see :data:`repro.api.session.STRATEGIES`).
    search_space:
        Named search space to explore (``"lens-vgg"``, ``"resnet-v1"``,
        ``"seq-conv1d"`` or anything registered in
        :data:`repro.api.registry.SEARCH_SPACES`).
    num_initial / num_iterations / candidate_pool_size / acquisition:
        Budgets and acquisition of the optimization loop (Algorithm 2).
    batch_size:
        Candidates proposed (and batch-evaluated) per BO iteration; the
        total budget stays ``num_iterations`` evaluations.  ``1`` is the
        classic one-point loop; pair ``q > 1`` with ``acquisition="epdc"``
        for hypervolume-driven q-batch selection.
    predictor_noise_std / predictor_samples_per_type:
        Performance-predictor training settings (ignored when a pre-trained
        predictor is supplied to :func:`repro.api.session.run_search`).
    seed:
        Master seed of the run.  Must be an integer (or ``None``) for the
        request to be serializable.
    tags:
        Free-form metadata carried through to the outcome.
    """

    scenario: Union[str, Scenario] = DEFAULT_SCENARIO
    strategy: str = "lens"
    search_space: str = DEFAULT_SEARCH_SPACE
    num_initial: int = 10
    num_iterations: int = 50
    candidate_pool_size: int = 128
    acquisition: str = "ts"
    batch_size: int = DEFAULT_BATCH_SIZE
    predictor_noise_std: float = 0.03
    predictor_samples_per_type: int = 200
    seed: Optional[int] = 0
    tags: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        require_positive(self.num_initial, "num_initial")
        if self.num_iterations < 0:
            raise ValueError(
                f"num_iterations must be >= 0, got {self.num_iterations}"
            )
        require_positive(self.candidate_pool_size, "candidate_pool_size")
        require_positive(self.batch_size, "batch_size")

    # ------------------------------------------------------------------ helpers
    @property
    def num_evaluations(self) -> int:
        """Total evaluation budget of the run."""
        return self.num_initial + self.num_iterations

    @property
    def scenario_name(self) -> str:
        """Name of the requested scenario."""
        if isinstance(self.scenario, Scenario):
            return self.scenario.name
        return str(self.scenario)

    def resolve_scenario(
        self, scenarios: Optional[ScenarioRegistry] = None
    ) -> Scenario:
        """The scenario object, resolved by name when necessary."""
        return (scenarios or SCENARIOS).resolve(self.scenario)

    def replace(self, **changes: Any) -> "SearchRequest":
        """Copy of this request with the given fields changed."""
        return replace(self, **changes)

    def fingerprint(self) -> str:
        """Deterministic run-store key; see :func:`request_fingerprint`."""
        return request_fingerprint(self)

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        scenario: Any = self.scenario
        if isinstance(scenario, Scenario):
            scenario = scenario.to_dict()
        seed = self.seed
        if seed is not None and not isinstance(seed, int):
            raise TypeError(
                f"only integer (or None) seeds are serializable, got {type(seed)!r}"
            )
        return {
            "schema_version": self.schema_version,
            "scenario": scenario,
            "strategy": self.strategy,
            "search_space": self.search_space,
            "num_initial": self.num_initial,
            "num_iterations": self.num_iterations,
            "candidate_pool_size": self.candidate_pool_size,
            "acquisition": self.acquisition,
            "batch_size": self.batch_size,
            "predictor_noise_std": self.predictor_noise_std,
            "predictor_samples_per_type": self.predictor_samples_per_type,
            "seed": seed,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchRequest":
        """Rebuild a request, upgrading older schema versions in place.

        v1 payloads predate the ``search_space`` field and upgrade to
        :data:`~repro.nn.spaces.DEFAULT_SEARCH_SPACE`; the returned request
        always carries the current :data:`SCHEMA_VERSION` (and the same
        fingerprint the payload had under the schema that wrote it).
        """
        check_schema_version(data, "SearchRequest")
        scenario = data.get("scenario", DEFAULT_SCENARIO)
        if isinstance(scenario, dict):
            scenario = Scenario.from_dict(scenario)
        seed = data.get("seed", 0)
        return cls(
            scenario=scenario,
            strategy=data.get("strategy", "lens"),
            search_space=str(data.get("search_space", DEFAULT_SEARCH_SPACE)),
            num_initial=int(data.get("num_initial", 10)),
            num_iterations=int(data.get("num_iterations", 50)),
            candidate_pool_size=int(data.get("candidate_pool_size", 128)),
            acquisition=data.get("acquisition", "ts"),
            batch_size=int(data.get("batch_size", DEFAULT_BATCH_SIZE)),
            predictor_noise_std=float(data.get("predictor_noise_std", 0.03)),
            predictor_samples_per_type=int(
                data.get("predictor_samples_per_type", 200)
            ),
            seed=None if seed is None else int(seed),
            tags=dict(data.get("tags", {})),
            schema_version=SCHEMA_VERSION,
        )


@dataclass
class SearchOutcome:
    """Everything one search run produced, paired with its request.

    Attributes
    ----------
    request:
        The request that was executed.
    scenario:
        The *resolved* scenario (inlined so the outcome stays interpretable
        even if the registry changes later).
    label:
        Result label (strategy name).
    candidates:
        Every explored :class:`CandidateEvaluation`, in evaluation order.
    wall_time_s:
        Wall-clock duration of the run.
    engine_stats:
        Cache statistics of the evaluation engine that backed the run.
    front_history:
        Per-evaluation Pareto-front trajectory
        (:class:`repro.optim.pareto.FrontHistory`) — hypervolume, front size
        and the joining candidate after each evaluation.  ``None`` for
        outcomes written before schema v3.
    health:
        Resilience event counters by ``H_*`` code (see
        :mod:`repro.resilience.health`): how often the degradation ladder
        fired, evaluations were quarantined, checkpoints were written or a
        resume replayed history.  Empty for healthy runs and for outcomes
        written before schema v4.  Like ``wall_time_s`` and
        ``engine_stats``, this describes *how* the run went, not *what* it
        computed — it never affects the request fingerprint.
    """

    request: SearchRequest
    scenario: Scenario
    label: str
    candidates: Tuple[CandidateEvaluation, ...]
    wall_time_s: float = 0.0
    engine_stats: Dict[str, int] = field(default_factory=dict)
    front_history: Optional[FrontHistory] = None
    health: Dict[str, int] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        self.candidates = tuple(self.candidates)

    # ------------------------------------------------------------------ views
    @property
    def result(self) -> SearchResult:
        """The candidates as a :class:`SearchResult` (Pareto helpers etc.)."""
        return SearchResult(self.candidates, label=self.label)

    def pareto_candidates(
        self, metrics: Sequence[str] = ("error_percent", "energy_j")
    ) -> List[CandidateEvaluation]:
        """Candidates on the Pareto front of the requested metrics."""
        return self.result.pareto_candidates(metrics)

    def best_by(self, metric: str) -> CandidateEvaluation:
        """Candidate minimising a single metric."""
        return self.result.best_by(metric)

    def __len__(self) -> int:
        return len(self.candidates)

    def summary(self) -> Dict[str, Any]:
        """Compact run summary (for logs and comparison tables)."""
        return {
            "scenario": self.scenario.name,
            "strategy": self.label,
            "num_candidates": len(self.candidates),
            "pareto_size": len(self.pareto_candidates()),
            "wall_time_s": self.wall_time_s,
        }

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "request": self.request.to_dict(),
            "scenario": self.scenario.to_dict(),
            "label": self.label,
            "candidates": [c.to_dict() for c in self.candidates],
            "wall_time_s": self.wall_time_s,
            "engine_stats": dict(self.engine_stats),
            "front_history": (
                None if self.front_history is None else self.front_history.to_dict()
            ),
            "health": dict(self.health),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchOutcome":
        version = check_schema_version(data, "SearchOutcome")
        return cls(
            request=SearchRequest.from_dict(data["request"]),
            scenario=Scenario.from_dict(data["scenario"]),
            label=data.get("label", "search"),
            candidates=tuple(
                CandidateEvaluation.from_dict(c) for c in data.get("candidates", [])
            ),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            engine_stats={
                str(k): int(v) for k, v in data.get("engine_stats", {}).items()
            },
            front_history=(
                None
                if data.get("front_history") is None
                else FrontHistory.from_dict(data["front_history"])
            ),
            health={str(k): int(v) for k, v in (data.get("health") or {}).items()},
            schema_version=version,
        )


# ---------------------------------------------------------------------- file loading

def load_request(path: Union[str, Path]) -> SearchRequest:
    """Load a :class:`SearchRequest` from a JSON file."""
    return SearchRequest.from_dict(load_json(path))


def load_outcome(path: Union[str, Path]) -> SearchOutcome:
    """Load a :class:`SearchOutcome` from a JSON file."""
    return SearchOutcome.from_dict(load_json(path))
