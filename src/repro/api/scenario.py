"""Named deployment scenarios: device + wireless channel + provenance.

A :class:`Scenario` bundles everything LENS treats as *design-time
expectation* — the edge device and the expected wireless conditions
(technology, uplink throughput, round-trip time) — into one named,
serializable object.  Experiments reference scenarios by name
(``"wifi-3mbps/jetson-tx2-gpu"``) through a :class:`ScenarioRegistry`, so a
multi-scenario sweep is a list of strings rather than a pile of constructor
calls.

The default registry :data:`SCENARIOS` ships with

* a technology grid — wifi / lte / 3g at the paper's 3 Mbps expectation,
  crossed with both Jetson TX2 execution modes
  (``"<tech>-3mbps/<device>"``);
* one preset per region of the Table I throughput catalogue, crossed with
  both devices (``"region-<name>-lte/<device>"``), using the region's
  average experienced uplink over LTE.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Union

from repro.api.registry import DEVICES, Registry
from repro.hardware.device import DeviceProfile
from repro.utils.validation import require_non_negative, require_positive
from repro.wireless.channel import WirelessChannel
from repro.wireless.power_models import SUPPORTED_TECHNOLOGIES
from repro.wireless.regions import Region, all_regions

#: Devices crossed into the built-in scenario grid.
GRID_DEVICES = ("jetson-tx2-gpu", "jetson-tx2-cpu")

#: The paper's main design-time throughput expectation (Mbps).
PAPER_UPLINK_MBPS = 3.0

#: Name of the paper's main experimental scenario.
DEFAULT_SCENARIO = "wifi-3mbps/jetson-tx2-gpu"


def _slugify(name: str) -> str:
    return "-".join(name.strip().lower().split())


@dataclass(frozen=True)
class Scenario:
    """One named deployment context for a search or analysis run.

    Parameters
    ----------
    name:
        Registry key and display name.
    device:
        Device name resolved through the device registry, or an inline
        :class:`DeviceProfile` for custom hardware.
    wireless_technology:
        Radio technology (``"wifi"`` / ``"lte"`` / ``"3g"``).
    uplink_mbps / round_trip_s:
        Expected upload throughput and round-trip time folded into the
        partition-aware objectives.
    region:
        Optional name of the region the throughput expectation came from.
    description:
        Free-form provenance note.
    """

    name: str
    device: Union[str, DeviceProfile] = "jetson-tx2-gpu"
    wireless_technology: str = "wifi"
    uplink_mbps: float = PAPER_UPLINK_MBPS
    round_trip_s: float = 0.01
    region: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise ValueError("scenario name must be a non-empty string")
        require_positive(self.uplink_mbps, "uplink_mbps")
        require_non_negative(self.round_trip_s, "round_trip_s")

    # ------------------------------------------------------------------ resolution
    @property
    def device_name(self) -> str:
        """Name of the scenario's device."""
        if isinstance(self.device, DeviceProfile):
            return self.device.name
        return str(self.device)

    def resolve_device(self) -> DeviceProfile:
        """The device profile, instantiating registered devices by name."""
        if isinstance(self.device, DeviceProfile):
            return self.device
        return DEVICES.create(str(self.device))

    def build_channel(self) -> WirelessChannel:
        """Wireless channel carrying this scenario's expected conditions."""
        return WirelessChannel.create(
            technology=self.wireless_technology,
            uplink_mbps=self.uplink_mbps,
            round_trip_s=self.round_trip_s,
        )

    def with_uplink(self, uplink_mbps: float, name: Optional[str] = None) -> "Scenario":
        """Copy of this scenario with a different throughput expectation."""
        return replace(
            self, uplink_mbps=float(uplink_mbps), name=name or self.name
        )

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_region(
        cls,
        region: Region,
        device: Union[str, DeviceProfile] = "jetson-tx2-gpu",
        wireless_technology: str = "lte",
        round_trip_s: float = 0.01,
    ) -> "Scenario":
        """Scenario at a region's average experienced upload throughput.

        The generated name carries the technology
        (``region-<name>-<tech>/<device>``) so e.g. WiFi and LTE variants of
        the same region never collide in a registry.
        """
        device_name = device.name if isinstance(device, DeviceProfile) else str(device)
        return cls(
            name=f"region-{_slugify(region.name)}-{wireless_technology}/{device_name}",
            device=device,
            wireless_technology=wireless_technology,
            uplink_mbps=region.avg_uplink_mbps,
            round_trip_s=round_trip_s,
            region=region.name,
            description=f"{region.name} average uplink ({region.source})",
        )

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        device: Any = self.device
        if isinstance(device, DeviceProfile):
            device = device.to_dict()
        return {
            "name": self.name,
            "device": device,
            "wireless_technology": self.wireless_technology,
            "uplink_mbps": self.uplink_mbps,
            "round_trip_s": self.round_trip_s,
            "region": self.region,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        device = data["device"]
        if isinstance(device, dict):
            device = DeviceProfile.from_dict(device)
        return cls(
            name=data["name"],
            device=device,
            wireless_technology=data.get("wireless_technology", "wifi"),
            uplink_mbps=float(data.get("uplink_mbps", PAPER_UPLINK_MBPS)),
            round_trip_s=float(data.get("round_trip_s", 0.01)),
            region=data.get("region"),
            description=data.get("description", ""),
        )


class ScenarioRegistry(Registry):
    """Registry holding :class:`Scenario` instances directly.

    ``register(scenario)`` keys the scenario by its own name; ``get(name)``
    returns the scenario object (scenarios are frozen, so no factory
    indirection is needed).
    """

    def __init__(self, entries: Optional[Dict[str, Scenario]] = None):
        super().__init__("scenario", entries)

    def add(self, scenario: Scenario, *, overwrite: bool = False) -> Scenario:
        """Register ``scenario`` under its own name and return it."""
        if not isinstance(scenario, Scenario):
            raise TypeError(f"expected a Scenario, got {type(scenario)!r}")
        self.register(scenario.name, scenario, overwrite=overwrite)
        return scenario

    def resolve(self, scenario: Union[str, Scenario]) -> Scenario:
        """Return ``scenario`` itself, or look it up when given a name."""
        if isinstance(scenario, Scenario):
            return scenario
        return self.get(scenario)

    def scenarios(self) -> List[Scenario]:
        """Every registered scenario, sorted by name."""
        return [scenario for _, scenario in self.items()]


def builtin_scenarios() -> List[Scenario]:
    """The built-in scenario catalogue (technology grid + regional presets)."""
    catalogue: List[Scenario] = []
    for technology in SUPPORTED_TECHNOLOGIES:
        for device in GRID_DEVICES:
            catalogue.append(
                Scenario(
                    name=f"{technology}-3mbps/{device}",
                    device=device,
                    wireless_technology=technology,
                    uplink_mbps=PAPER_UPLINK_MBPS,
                    description=(
                        f"{technology} at the paper's {PAPER_UPLINK_MBPS:g} Mbps "
                        "design-time expectation"
                    ),
                )
            )
    for region in all_regions():
        for device in GRID_DEVICES:
            catalogue.append(Scenario.from_region(region, device=device))
    return catalogue


#: Default scenario registry, pre-populated with the built-ins.
SCENARIOS = ScenarioRegistry()
for _scenario in builtin_scenarios():
    SCENARIOS.add(_scenario)
del _scenario


def scenario_by_name(name: str) -> Scenario:
    """Look up a scenario in the default registry."""
    return SCENARIOS.get(name)
