"""String-keyed component registries for the experiment API.

Every pluggable component of the library — edge devices, wireless
technologies, acquisition strategies and search strategies — is addressable
by a short string key, so experiments can be declared with names
(``device="jetson-tx2-gpu"``, ``strategy="lens"``) instead of constructor
wiring, and persisted request envelopes stay meaningful across processes.

:class:`Registry` is the generic container; the module-level instances

* :data:`DEVICES` — device-profile factories (seeded from
  :data:`repro.hardware.device.BUILTIN_DEVICES`);
* :data:`WIRELESS_TECHNOLOGIES` — radio power-model factories, one per
  technology of Huang et al.'s power study;
* :data:`ACQUISITIONS` — acquisition strategies of the MOBO loop;
* :data:`SEARCH_SPACES` — named search-space factories
  (``"lens-vgg"``, ``"resnet-v1"``, ``"seq-conv1d"``), the workloads a
  :class:`~repro.api.envelopes.SearchRequest` can target;

hold the built-ins.  Search strategies live in
:data:`repro.api.session.STRATEGIES` and scenarios in
:data:`repro.api.scenario.SCENARIOS`, next to the code that runs them.
"""

from __future__ import annotations

import difflib
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.hardware.device import BUILTIN_DEVICES, DeviceProfile
from repro.nn.resnet_space import ResNetSearchSpace
from repro.nn.search_space import LensSearchSpace
from repro.nn.seq_space import SeqConv1DSearchSpace
from repro.nn.spaces import DEFAULT_SEARCH_SPACE, SearchSpace
from repro.optim.acquisition import ACQUISITION_STRATEGIES
from repro.wireless.power_models import SUPPORTED_TECHNOLOGIES, RadioPowerModel


class RegistryError(KeyError):
    """Lookup of an unknown registry key.

    Subclasses :class:`KeyError` so existing ``except KeyError`` callers keep
    working, but carries a readable, suggestion-bearing message.
    """

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.message


class Registry:
    """A case-preserving, string-keyed registry of named components.

    Parameters
    ----------
    kind:
        Human-readable description of what is registered (used in error
        messages, e.g. ``"device"`` or ``"search strategy"``).
    entries:
        Optional initial ``{name: entry}`` mapping.

    Entries are usually zero-argument (or keyword-argument) factories, but
    any object may be registered; :meth:`create` calls the entry while
    :meth:`get` returns it untouched.
    """

    def __init__(self, kind: str, entries: Optional[Dict[str, Any]] = None):
        self.kind = str(kind)
        self._entries: Dict[str, Any] = {}
        for name, entry in (entries or {}).items():
            self.register(name, entry)

    # ------------------------------------------------------------------ registration
    def register(
        self, name: str, entry: Any = None, *, overwrite: bool = False
    ) -> Any:
        """Register ``entry`` under ``name``.

        Can be used directly (``registry.register("x", factory)``) or as a
        decorator (``@registry.register("x")``).  Re-registering an existing
        name requires ``overwrite=True`` so built-ins are not shadowed by
        accident.
        """
        if entry is None:
            def decorator(obj: Any) -> Any:
                self.register(name, obj, overwrite=overwrite)
                return obj

            return decorator
        key = self._normalize(name)
        if key in self._entries and not overwrite:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        self._entries[key] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove a registered entry (no-op message if absent)."""
        self._entries.pop(self._normalize(name), None)

    # ------------------------------------------------------------------ lookup
    def get(self, name: str) -> Any:
        """Return the entry registered under ``name``.

        Raises :class:`RegistryError` (a :class:`KeyError`) listing every
        registered name — and the closest match, when one exists — on unknown
        input.
        """
        key = self._normalize(name)
        try:
            return self._entries[key]
        except KeyError:
            raise RegistryError(self._unknown_message(name)) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Look up ``name`` and call the registered factory."""
        entry = self.get(name)
        if not callable(entry):
            raise TypeError(
                f"{self.kind} {name!r} is not callable and cannot be created"
            )
        return entry(*args, **kwargs)

    # ------------------------------------------------------------------ introspection
    def names(self) -> List[str]:
        """Sorted list of registered names."""
        return sorted(self._entries)

    def items(self) -> List[Tuple[str, Any]]:
        """Sorted ``(name, entry)`` pairs."""
        return sorted(self._entries.items())

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._normalize(name) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:
        return f"Registry(kind={self.kind!r}, names={self.names()})"

    # ------------------------------------------------------------------ internals
    @staticmethod
    def _normalize(name: str) -> str:
        if not isinstance(name, str):
            raise TypeError(f"registry keys must be strings, got {type(name)!r}")
        return name.strip()

    def _unknown_message(self, name: str) -> str:
        names = self.names()
        message = f"unknown {self.kind} {name!r}; registered: {names}"
        close = difflib.get_close_matches(self._normalize(name), names, n=1)
        if close:
            message += f". Did you mean {close[0]!r}?"
        return message


# ---------------------------------------------------------------------- built-in registries

#: Edge/cloud device profiles, keyed by name (``registry.create(name)`` returns
#: a fresh :class:`~repro.hardware.device.DeviceProfile`).
DEVICES = Registry("device", dict(BUILTIN_DEVICES))

#: Wireless technologies, keyed by name; factories return the technology's
#: :class:`~repro.wireless.power_models.RadioPowerModel`.
WIRELESS_TECHNOLOGIES = Registry(
    "wireless technology",
    {
        technology: (
            lambda technology=technology: RadioPowerModel.for_technology(technology)
        )
        for technology in SUPPORTED_TECHNOLOGIES
    },
)

#: Acquisition strategies of the MOBO loop.  Entries are descriptor strings;
#: the names are what :class:`~repro.api.envelopes.SearchRequest` accepts.
ACQUISITIONS = Registry(
    "acquisition",
    {
        "ts": "Thompson sampling (one joint posterior draw per objective)",
        "ucb": "lower-confidence-bound scores (mean - beta * std)",
        "mean": "posterior-mean exploitation",
        "random": "uniform-random scores (ablation baseline)",
        "epdc": "expected Pareto distance change (front-aware, q-batch capable)",
    },
)
assert set(ACQUISITIONS.names()) == set(ACQUISITION_STRATEGIES)


#: Named search spaces — the workloads a request can target.  Entries are
#: zero-argument factories returning a fresh
#: :class:`~repro.nn.spaces.SearchSpace`; ``SEARCH_SPACES.create(name)`` is
#: how :func:`repro.api.session.build_context` resolves
#: ``SearchRequest.search_space``.
SEARCH_SPACES = Registry(
    "search space",
    {
        LensSearchSpace.space_name: LensSearchSpace,
        ResNetSearchSpace.space_name: ResNetSearchSpace,
        SeqConv1DSearchSpace.space_name: SeqConv1DSearchSpace,
    },
)
assert DEFAULT_SEARCH_SPACE in SEARCH_SPACES


def register_device(profile: DeviceProfile, *, overwrite: bool = False) -> DeviceProfile:
    """Register a custom device profile under its own name.

    The profile becomes addressable by every by-name entry point
    (``device_by_name``, scenarios, request envelopes).
    """
    DEVICES.register(profile.name, lambda profile=profile: profile, overwrite=overwrite)
    return profile


def register_search_space(
    name: str,
    factory: Callable[[], SearchSpace],
    *,
    overwrite: bool = False,
) -> Callable[[], SearchSpace]:
    """Register a custom search-space factory under ``name``.

    ``factory`` is called once per run that requests the space (a
    :class:`~repro.nn.spaces.SearchSpace` subclass works directly).  The
    space becomes addressable from request envelopes, campaign grids and the
    CLI immediately; give instances a matching ``space_name`` so decoded
    candidate names carry the registry key.
    """
    SEARCH_SPACES.register(name, factory, overwrite=overwrite)
    return factory
