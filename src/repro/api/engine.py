"""Shared evaluation engine: predictor, layer-cost and partition caches.

Every search strategy and analysis sweep ultimately does the same two things:
(1) run a per-layer performance predictor over an architecture, and (2) cost
that architecture's deployment options under a wireless channel.  Step (1)
depends only on ``(predictor, architecture)`` and step (2) only on
``(predictor, architecture, channel)`` — so a multi-scenario sweep that
re-evaluates the same architecture under thirty throughput values used to
re-run the predictors thirty times.

:class:`EvaluationEngine` memoises both steps:

* ``predictor_for`` caches *trained* predictors per
  ``(device, training settings, seed)`` — training is seconds of work and is
  deterministic for integer seeds, so sharing is safe;
* ``layer_predictions`` caches per-layer predictions per
  ``(predictor, architecture)`` — architectures hash by structure, so
  genotype duplicates across strategies and scenarios hit the cache;
* ``evaluate_partitions`` / ``sweep_channels`` cost deployment options on
  top of the cached predictions, caching full
  :class:`~repro.partition.partitioner.PartitionEvaluation` records per
  ``(channel, effective cut-legality graph)`` — runs over different search
  spaces never share partition records unless they request the identical
  computation;
* ``evaluate_batch`` is the pool-level entry point behind the search loop
  and the sweeps: it dedups a whole candidate pool against the caches,
  evaluates only the misses through the vectorised
  ``predict_batch`` / ``PartitionAnalyzer.evaluate_batch`` path, and
  backfills the caches so scalar callers keep hitting.

One engine can (and should) back many runs: pass the same instance to
:func:`repro.api.session.run_search`, the deployment sweeps and the
benchmarks, and consult :meth:`EvaluationEngine.stats` to see the reuse.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.hardware.device import DeviceProfile
from repro.hardware.predictors import (
    BaseLayerPredictor,
    LayerPerformancePredictor,
    LayerPrediction,
    OracleLayerPredictor,
)
from repro.nn.architecture import Architecture
from repro.nn.graph import PartitionGraph
from repro.partition.partitioner import PartitionAnalyzer, PartitionEvaluation
from repro.wireless.channel import WirelessChannel

#: Cache key of a wireless channel: everything that affects costing,
#: including the power-model coefficients (custom models may reuse a
#: built-in technology label).
ChannelKey = Tuple[str, float, float, float, float]


def _channel_key(channel: WirelessChannel) -> ChannelKey:
    return (
        channel.technology,
        float(channel.power_model.alpha_w_per_mbps),
        float(channel.power_model.beta_w),
        float(channel.uplink_mbps),
        float(channel.round_trip_s),
    )


def _device_key(device: DeviceProfile) -> tuple:
    """Full identity of a device profile (names alone may be reused)."""
    return (
        device.name,
        device.kind,
        tuple(sorted(device.compute_rate_flops.items())),
        float(device.memory_bandwidth_bps),
        float(device.layer_overhead_s),
        float(device.idle_power_w),
        float(device.busy_power_w),
    )


@dataclass
class EngineStats:
    """Hit/miss counters of every engine cache."""

    predictor_hits: int = 0
    predictor_misses: int = 0
    layer_hits: int = 0
    layer_misses: int = 0
    partition_hits: int = 0
    partition_misses: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "predictor_hits": self.predictor_hits,
            "predictor_misses": self.predictor_misses,
            "layer_hits": self.layer_hits,
            "layer_misses": self.layer_misses,
            "partition_hits": self.partition_hits,
            "partition_misses": self.partition_misses,
        }

    def since(self, earlier: "EngineStats") -> Dict[str, int]:
        """Counter increments between an earlier snapshot and this one."""
        before = earlier.to_dict()
        return {name: count - before[name] for name, count in self.to_dict().items()}

    def snapshot(self) -> "EngineStats":
        """Copy of the current counters."""
        return EngineStats(**self.to_dict())


class EvaluationEngine:
    """Caching, batching back-end for partition-aware evaluation.

    The engine is deliberately *stateful but deterministic*: every cached
    value is a pure function of its key (predictor training is seeded), so
    runs backed by a warm engine produce bit-identical results to cold runs.

    Cached :class:`PartitionEvaluation` records are shared between callers
    and must be treated as read-only.
    """

    def __init__(self):
        self._predictors: Dict[tuple, BaseLayerPredictor] = {}
        # predictor -> {architecture: per-layer predictions}; weak keys so
        # discarding a predictor releases its cached predictions too.
        self._layer_cache: "weakref.WeakKeyDictionary[BaseLayerPredictor, Dict[Architecture, Tuple[LayerPrediction, ...]]]" = (
            weakref.WeakKeyDictionary()
        )
        # predictor -> {(channel key, require_shrinkage):
        #                {(architecture, partition graph): evaluation}};
        # nested so pool-level lookups hash the channel context once.
        self._partition_cache: "weakref.WeakKeyDictionary[BaseLayerPredictor, Dict[tuple, Dict[tuple, PartitionEvaluation]]]" = (
            weakref.WeakKeyDictionary()
        )
        self.stats = EngineStats()

    # ------------------------------------------------------------------ predictors
    def predictor_for(
        self,
        device: DeviceProfile,
        *,
        noise_std: float = 0.03,
        samples_per_type: int = 200,
        seed: Union[int, None] = 0,
        oracle: bool = False,
    ) -> BaseLayerPredictor:
        """A (cached) per-layer predictor for ``device``.

        Training is deterministic for integer seeds, so repeated requests
        with the same settings share one predictor.  Non-integer seeds (live
        generators) bypass the cache.
        """
        if oracle:
            key = (_device_key(device), "oracle")
            if key in self._predictors:
                self.stats.predictor_hits += 1
                return self._predictors[key]
            self.stats.predictor_misses += 1
            predictor: BaseLayerPredictor = OracleLayerPredictor(device)
            self._predictors[key] = predictor
            return predictor

        cacheable = seed is None or isinstance(seed, (int, np.integer))
        key = (
            _device_key(device),
            float(noise_std),
            int(samples_per_type),
            None if seed is None else int(seed) if cacheable else None,
        )
        if cacheable and key in self._predictors:
            self.stats.predictor_hits += 1
            return self._predictors[key]
        self.stats.predictor_misses += 1
        predictor = LayerPerformancePredictor.train_for_device(
            device,
            noise_std=noise_std,
            samples_per_type=samples_per_type,
            seed=seed,
        )
        if cacheable:
            self._predictors[key] = predictor
        return predictor

    # ------------------------------------------------------------------ layer costs
    def layer_predictions(
        self, predictor: BaseLayerPredictor, architecture: Architecture
    ) -> Tuple[LayerPrediction, ...]:
        """Per-layer predictions, cached per ``(predictor, architecture)``."""
        per_predictor = self._layer_cache.setdefault(predictor, {})
        cached = per_predictor.get(architecture)
        if cached is not None:
            self.stats.layer_hits += 1
            return cached
        self.stats.layer_misses += 1
        predictions = tuple(predictor.predict_architecture(architecture))
        per_predictor[architecture] = predictions
        return predictions

    def architecture_totals(
        self, predictor: BaseLayerPredictor, architecture: Architecture
    ) -> Tuple[float, float]:
        """``(total latency, total energy)`` through the layer cache.

        One cached prediction pass yields both totals — the engine-aware
        replacement for calling ``predictor.total_latency`` and
        ``predictor.total_energy`` back to back (which would run the
        predictor twice when uncached).
        """
        predictions = self.layer_predictions(predictor, architecture)
        return predictor.totals(architecture, predictions)

    # ------------------------------------------------------------------ partition costing
    def evaluate_partitions(
        self,
        architecture: Architecture,
        analyzer: PartitionAnalyzer,
        graph: Optional["PartitionGraph"] = None,
    ) -> PartitionEvaluation:
        """Cost every deployment option, reusing cached layer predictions.

        Equivalent to ``analyzer.evaluate(architecture)`` but both the layer
        predictions and the resulting evaluation are memoised.  ``graph``
        optionally overrides the architecture's own cut-legality graph (the
        hook behind :meth:`repro.nn.spaces.SearchSpace.partition_graph`).

        The cache is keyed per search space *by value*: the architecture
        (which hashes over its structure, including skip edges) and the
        *effective* graph (override or the architecture's own —
        :class:`~repro.nn.graph.PartitionGraph` is a frozen dataclass
        hashing by value) are both in the key, so runs over different
        spaces can never serve each other stale evaluations, while
        space-less callers (the deployment sweeps) still hit entries warmed
        by a search over the identical computation.  Analyzers with a cloud
        predictor are passed through uncached (their costing depends on
        state the cache key does not capture).
        """
        if graph is None:
            graph = architecture.partition_graph()
        if analyzer.cloud_predictor is not None:
            return analyzer.evaluate(
                architecture,
                predictions=self.layer_predictions(analyzer.predictor, architecture),
                graph=graph,
            )
        per_predictor = self._partition_cache.setdefault(analyzer.predictor, {})
        per_channel = per_predictor.setdefault(
            (_channel_key(analyzer.channel), analyzer.require_shrinkage), {}
        )
        key = (architecture, graph)
        cached = per_channel.get(key)
        if cached is not None:
            self.stats.partition_hits += 1
            return cached
        self.stats.partition_misses += 1
        evaluation = analyzer.evaluate(
            architecture,
            predictions=self.layer_predictions(analyzer.predictor, architecture),
            graph=graph,
        )
        per_channel[key] = evaluation
        return evaluation

    def evaluate_batch(
        self,
        architectures: Sequence[Architecture],
        analyzer: PartitionAnalyzer,
        *,
        channels: Optional[Sequence[WirelessChannel]] = None,
        graphs: Optional[Sequence[Optional["PartitionGraph"]]] = None,
    ) -> List[List[PartitionEvaluation]]:
        """Pool-level costing: dedup against the caches, batch the misses.

        The candidate pool is first deduplicated (architectures hash by
        structure, so genotype duplicates collapse) and checked against the
        layer and partition caches; only genuine misses run through the
        vectorised :meth:`~repro.hardware.predictors.BaseLayerPredictor.predict_batch`
        /:meth:`~repro.partition.partitioner.PartitionAnalyzer.evaluate_batch`
        path, and their results backfill the caches so later scalar or
        batched calls hit.  Stats mirror the work actually saved: every
        pool position counts one partition hit or miss per channel
        (duplicates and cached ``(architecture, channel, graph)`` cells are
        hits), and each distinct architecture that needs costing counts one
        layer hit or miss — fully cached pools touch the layer cache not at
        all, exactly like the scalar path.

        ``results[i][j]`` is the evaluation of ``architectures[i]`` under
        ``channels[j]`` (``channels`` defaults to the analyzer's own
        channel).  Results are cache-shared records — treat them as
        read-only.  Analyzers with a cloud predictor bypass the partition
        cache, exactly like :meth:`evaluate_partitions`.
        """
        architectures = list(architectures)
        channels = (
            [analyzer.channel] if channels is None else list(channels)
        )
        n = len(architectures)
        num_channels = len(channels)
        if n == 0 or not channels:
            return [[] for _ in range(n)]
        # Dedup channels by cache key; repeated channels are pure re-use.
        channel_index: Dict[ChannelKey, int] = {}
        channel_owners: List[int] = []
        unique_channels: List[WirelessChannel] = []
        unique_channel_keys: List[ChannelKey] = []
        for channel in channels:
            channel_key = _channel_key(channel)
            index = channel_index.get(channel_key)
            if index is None:
                index = len(unique_channels)
                channel_index[channel_key] = index
                unique_channels.append(channel)
                unique_channel_keys.append(channel_key)
            channel_owners.append(index)
        channels = unique_channels
        if graphs is None:
            graphs = [None] * n
        if len(graphs) != n:
            raise ValueError(f"expected {n} graphs, got {len(graphs)}")
        effective_graphs = [
            graph if graph is not None else architecture.partition_graph()
            for architecture, graph in zip(architectures, graphs)
        ]

        # ---- dedup the pool (architectures hash by structure) -----------
        unique_index: Dict[tuple, int] = {}
        unique_positions: List[int] = []
        unique_keys: List[tuple] = []
        owners: List[int] = []
        for position, architecture in enumerate(architectures):
            key = (architecture, effective_graphs[position])
            index = unique_index.get(key)
            if index is None:
                index = len(unique_positions)
                unique_index[key] = index
                unique_positions.append(position)
                unique_keys.append(key)
            owners.append(index)
        unique_archs = [architectures[p] for p in unique_positions]
        unique_graphs = [effective_graphs[p] for p in unique_positions]

        predictor = analyzer.predictor

        def resolve_predictions(
            indices: Sequence[int],
        ) -> Tuple[List[Tuple[LayerPrediction, ...]], Optional[np.ndarray]]:
            """Layer predictions for the given unique-arch indices.

            Cached entries are re-used (one layer hit per distinct
            architecture), the rest run through one
            :meth:`~repro.hardware.predictors.BaseLayerPredictor.predict_batch`
            call and backfill the layer cache.  When the whole request is a
            cold stream of distinct architectures the predictor's raw pool
            array rides along (second return) so the partition costing can
            skip re-converting the prediction tuples.
            """
            per_predictor = self._layer_cache.setdefault(predictor, {})
            resolved: Dict[
                Architecture, Optional[Tuple[LayerPrediction, ...]]
            ] = {}
            for index in indices:
                architecture = unique_archs[index]
                if architecture in resolved:
                    continue
                cached = per_predictor.get(architecture)
                resolved[architecture] = cached
                if cached is not None:
                    self.stats.layer_hits += 1
                else:
                    self.stats.layer_misses += 1
            missing = [a for a, value in resolved.items() if value is None]
            pairs: Optional[np.ndarray] = None
            if missing:
                predict_pool = getattr(predictor, "predict_pool", None)
                if predict_pool is not None:
                    batch, batch_pairs = predict_pool(missing)
                else:
                    batch, batch_pairs = predictor.predict_batch(missing), None
                for architecture, predicted in zip(missing, batch):
                    per_predictor[architecture] = predicted
                    resolved[architecture] = predicted
                if batch_pairs is not None and len(missing) == len(indices):
                    # All-miss, all-distinct request: the pool array's layer
                    # stream lines up with `indices` exactly.
                    pairs = batch_pairs
            return [resolved[unique_archs[index]] for index in indices], pairs

        # ---- partition costing: cached cells re-used, misses batched ----
        results: List[List[Optional[PartitionEvaluation]]] = [
            [None] * len(channels) for _ in range(len(unique_archs))
        ]
        if analyzer.cloud_predictor is not None:
            # Cloud-predictor costing depends on state the cache key does
            # not capture — batch it, but never cache (same contract as the
            # scalar path).
            predictions, pairs = resolve_predictions(range(len(unique_archs)))
            results = analyzer.evaluate_batch(
                unique_archs,
                channels=channels,
                predictions_list=predictions,
                graphs=unique_graphs,
                predictions_array=pairs,
            )
        else:
            per_predictor_partitions = self._partition_cache.setdefault(predictor, {})
            shrinkage = analyzer.require_shrinkage
            per_channel_dicts = [
                per_predictor_partitions.setdefault((channel_key, shrinkage), {})
                for channel_key in unique_channel_keys
            ]
            miss_archs: List[int] = []
            hits = 0
            misses = 0
            for i in range(len(unique_archs)):
                key = unique_keys[i]
                row_missing = False
                row = results[i]
                for ci, per_channel in enumerate(per_channel_dicts):
                    cached = per_channel.get(key)
                    if cached is not None:
                        hits += 1
                        row[ci] = cached
                    else:
                        misses += 1
                        row_missing = True
                if row_missing:
                    miss_archs.append(i)
            self.stats.partition_hits += hits
            self.stats.partition_misses += misses
            if miss_archs:
                # Group miss rows by their missing-channel signature so only
                # genuinely uncached (architecture, channel) cells are
                # computed — a rectangular batch over all miss channels
                # would redo cached cells on partial overlap.  Signatures
                # are usually homogeneous (one group).
                by_signature: Dict[tuple, List[int]] = {}
                for i in miss_archs:
                    signature = tuple(
                        ci
                        for ci in range(len(channels))
                        if results[i][ci] is None
                    )
                    by_signature.setdefault(signature, []).append(i)
                for signature, arch_indices in by_signature.items():
                    predictions, pairs = resolve_predictions(arch_indices)
                    fresh = analyzer.evaluate_batch(
                        [unique_archs[i] for i in arch_indices],
                        channels=[channels[ci] for ci in signature],
                        predictions_list=predictions,
                        graphs=[unique_graphs[i] for i in arch_indices],
                        predictions_array=pairs,
                    )
                    for row_index, i in enumerate(arch_indices):
                        key = unique_keys[i]
                        for column, ci in enumerate(signature):
                            evaluation = fresh[row_index][column]
                            per_channel_dicts[ci][key] = evaluation
                            results[i][ci] = evaluation
            # Duplicate pool positions and repeated channels are cache-level
            # re-use: every cell beyond the unique (arch, channel) grid is a
            # hit.
            self.stats.partition_hits += (
                n * num_channels - len(unique_archs) * len(channels)
            )

        return [
            [results[owner][channel_owners[ci]] for ci in range(num_channels)]
            for owner in owners
        ]

    def sweep_channels(
        self,
        architecture: Architecture,
        predictor: BaseLayerPredictor,
        channels: Sequence[WirelessChannel],
        require_shrinkage: bool = True,
    ) -> List[PartitionEvaluation]:
        """Batched costing of one architecture under many channels.

        A thin wrapper over :meth:`evaluate_batch`: the per-layer
        predictions are fetched once and every channel is costed in one
        broadcast pass — the hot path of the Fig. 2 / Table I sweeps.
        """
        channels = list(channels)
        if not channels:
            return []
        analyzer = PartitionAnalyzer(
            predictor, channels[0], require_shrinkage=require_shrinkage
        )
        return self.evaluate_batch([architecture], analyzer, channels=channels)[0]

    # ------------------------------------------------------------------ maintenance
    def cache_sizes(self) -> Dict[str, int]:
        """Number of live entries per cache."""
        return {
            "predictors": len(self._predictors),
            "layer_predictions": sum(
                len(entries) for entries in self._layer_cache.values()
            ),
            "partition_evaluations": sum(
                len(per_channel)
                for per_predictor in self._partition_cache.values()
                for per_channel in per_predictor.values()
            ),
        }

    def stats_dict(self) -> Dict[str, int]:
        """Hit/miss counters plus live cache sizes."""
        merged = self.stats.to_dict()
        merged.update(self.cache_sizes())
        return merged

    def clear(self) -> None:
        """Drop every cached value and reset the counters."""
        self._predictors.clear()
        self._layer_cache.clear()
        self._partition_cache.clear()
        self.stats = EngineStats()


#: Process-wide default engine used when callers do not supply one.
_DEFAULT_ENGINE: Optional[EvaluationEngine] = None


def default_engine() -> EvaluationEngine:
    """The lazily-created process-wide :class:`EvaluationEngine`."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = EvaluationEngine()
    return _DEFAULT_ENGINE
