"""Shared evaluation engine: predictor, layer-cost and partition caches.

Every search strategy and analysis sweep ultimately does the same two things:
(1) run a per-layer performance predictor over an architecture, and (2) cost
that architecture's deployment options under a wireless channel.  Step (1)
depends only on ``(predictor, architecture)`` and step (2) only on
``(predictor, architecture, channel)`` — so a multi-scenario sweep that
re-evaluates the same architecture under thirty throughput values used to
re-run the predictors thirty times.

:class:`EvaluationEngine` memoises both steps:

* ``predictor_for`` caches *trained* predictors per
  ``(device, training settings, seed)`` — training is seconds of work and is
  deterministic for integer seeds, so sharing is safe;
* ``layer_predictions`` caches per-layer predictions per
  ``(predictor, architecture)`` — architectures hash by structure, so
  genotype duplicates across strategies and scenarios hit the cache;
* ``evaluate_partitions`` / ``sweep_channels`` cost deployment options on
  top of the cached predictions, caching full
  :class:`~repro.partition.partitioner.PartitionEvaluation` records per
  ``(channel, effective cut-legality graph)`` — runs over different search
  spaces never share partition records unless they request the identical
  computation.

One engine can (and should) back many runs: pass the same instance to
:func:`repro.api.session.run_search`, the deployment sweeps and the
benchmarks, and consult :meth:`EvaluationEngine.stats` to see the reuse.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.hardware.device import DeviceProfile
from repro.hardware.predictors import (
    BaseLayerPredictor,
    LayerPerformancePredictor,
    LayerPrediction,
    OracleLayerPredictor,
)
from repro.nn.architecture import Architecture
from repro.nn.graph import PartitionGraph
from repro.partition.partitioner import PartitionAnalyzer, PartitionEvaluation
from repro.wireless.channel import WirelessChannel

#: Cache key of a wireless channel: everything that affects costing,
#: including the power-model coefficients (custom models may reuse a
#: built-in technology label).
ChannelKey = Tuple[str, float, float, float, float]


def _channel_key(channel: WirelessChannel) -> ChannelKey:
    return (
        channel.technology,
        float(channel.power_model.alpha_w_per_mbps),
        float(channel.power_model.beta_w),
        float(channel.uplink_mbps),
        float(channel.round_trip_s),
    )


def _device_key(device: DeviceProfile) -> tuple:
    """Full identity of a device profile (names alone may be reused)."""
    return (
        device.name,
        device.kind,
        tuple(sorted(device.compute_rate_flops.items())),
        float(device.memory_bandwidth_bps),
        float(device.layer_overhead_s),
        float(device.idle_power_w),
        float(device.busy_power_w),
    )


@dataclass
class EngineStats:
    """Hit/miss counters of every engine cache."""

    predictor_hits: int = 0
    predictor_misses: int = 0
    layer_hits: int = 0
    layer_misses: int = 0
    partition_hits: int = 0
    partition_misses: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "predictor_hits": self.predictor_hits,
            "predictor_misses": self.predictor_misses,
            "layer_hits": self.layer_hits,
            "layer_misses": self.layer_misses,
            "partition_hits": self.partition_hits,
            "partition_misses": self.partition_misses,
        }

    def since(self, earlier: "EngineStats") -> Dict[str, int]:
        """Counter increments between an earlier snapshot and this one."""
        before = earlier.to_dict()
        return {name: count - before[name] for name, count in self.to_dict().items()}

    def snapshot(self) -> "EngineStats":
        """Copy of the current counters."""
        return EngineStats(**self.to_dict())


class EvaluationEngine:
    """Caching, batching back-end for partition-aware evaluation.

    The engine is deliberately *stateful but deterministic*: every cached
    value is a pure function of its key (predictor training is seeded), so
    runs backed by a warm engine produce bit-identical results to cold runs.

    Cached :class:`PartitionEvaluation` records are shared between callers
    and must be treated as read-only.
    """

    def __init__(self):
        self._predictors: Dict[tuple, BaseLayerPredictor] = {}
        # predictor -> {architecture: per-layer predictions}; weak keys so
        # discarding a predictor releases its cached predictions too.
        self._layer_cache: "weakref.WeakKeyDictionary[BaseLayerPredictor, Dict[Architecture, Tuple[LayerPrediction, ...]]]" = (
            weakref.WeakKeyDictionary()
        )
        # predictor -> {(architecture, channel key, require_shrinkage,
        #                partition graph): evaluation}
        self._partition_cache: "weakref.WeakKeyDictionary[BaseLayerPredictor, Dict[tuple, PartitionEvaluation]]" = (
            weakref.WeakKeyDictionary()
        )
        self.stats = EngineStats()

    # ------------------------------------------------------------------ predictors
    def predictor_for(
        self,
        device: DeviceProfile,
        *,
        noise_std: float = 0.03,
        samples_per_type: int = 200,
        seed: Union[int, None] = 0,
        oracle: bool = False,
    ) -> BaseLayerPredictor:
        """A (cached) per-layer predictor for ``device``.

        Training is deterministic for integer seeds, so repeated requests
        with the same settings share one predictor.  Non-integer seeds (live
        generators) bypass the cache.
        """
        if oracle:
            key = (_device_key(device), "oracle")
            if key in self._predictors:
                self.stats.predictor_hits += 1
                return self._predictors[key]
            self.stats.predictor_misses += 1
            predictor: BaseLayerPredictor = OracleLayerPredictor(device)
            self._predictors[key] = predictor
            return predictor

        cacheable = seed is None or isinstance(seed, (int, np.integer))
        key = (
            _device_key(device),
            float(noise_std),
            int(samples_per_type),
            None if seed is None else int(seed) if cacheable else None,
        )
        if cacheable and key in self._predictors:
            self.stats.predictor_hits += 1
            return self._predictors[key]
        self.stats.predictor_misses += 1
        predictor = LayerPerformancePredictor.train_for_device(
            device,
            noise_std=noise_std,
            samples_per_type=samples_per_type,
            seed=seed,
        )
        if cacheable:
            self._predictors[key] = predictor
        return predictor

    # ------------------------------------------------------------------ layer costs
    def layer_predictions(
        self, predictor: BaseLayerPredictor, architecture: Architecture
    ) -> Tuple[LayerPrediction, ...]:
        """Per-layer predictions, cached per ``(predictor, architecture)``."""
        per_predictor = self._layer_cache.setdefault(predictor, {})
        cached = per_predictor.get(architecture)
        if cached is not None:
            self.stats.layer_hits += 1
            return cached
        self.stats.layer_misses += 1
        predictions = tuple(predictor.predict_architecture(architecture))
        per_predictor[architecture] = predictions
        return predictions

    # ------------------------------------------------------------------ partition costing
    def evaluate_partitions(
        self,
        architecture: Architecture,
        analyzer: PartitionAnalyzer,
        graph: Optional["PartitionGraph"] = None,
    ) -> PartitionEvaluation:
        """Cost every deployment option, reusing cached layer predictions.

        Equivalent to ``analyzer.evaluate(architecture)`` but both the layer
        predictions and the resulting evaluation are memoised.  ``graph``
        optionally overrides the architecture's own cut-legality graph (the
        hook behind :meth:`repro.nn.spaces.SearchSpace.partition_graph`).

        The cache is keyed per search space *by value*: the architecture
        (which hashes over its structure, including skip edges) and the
        *effective* graph (override or the architecture's own —
        :class:`~repro.nn.graph.PartitionGraph` is a frozen dataclass
        hashing by value) are both in the key, so runs over different
        spaces can never serve each other stale evaluations, while
        space-less callers (the deployment sweeps) still hit entries warmed
        by a search over the identical computation.  Analyzers with a cloud
        predictor are passed through uncached (their costing depends on
        state the cache key does not capture).
        """
        if graph is None:
            graph = architecture.partition_graph()
        if analyzer.cloud_predictor is not None:
            return analyzer.evaluate(
                architecture,
                predictions=self.layer_predictions(analyzer.predictor, architecture),
                graph=graph,
            )
        per_predictor = self._partition_cache.setdefault(analyzer.predictor, {})
        key = (
            architecture,
            _channel_key(analyzer.channel),
            analyzer.require_shrinkage,
            graph,
        )
        cached = per_predictor.get(key)
        if cached is not None:
            self.stats.partition_hits += 1
            return cached
        self.stats.partition_misses += 1
        evaluation = analyzer.evaluate(
            architecture,
            predictions=self.layer_predictions(analyzer.predictor, architecture),
            graph=graph,
        )
        per_predictor[key] = evaluation
        return evaluation

    def sweep_channels(
        self,
        architecture: Architecture,
        predictor: BaseLayerPredictor,
        channels: Sequence[WirelessChannel],
        require_shrinkage: bool = True,
    ) -> List[PartitionEvaluation]:
        """Batched costing of one architecture under many channels.

        The per-layer predictions are computed (or fetched) once and shared
        across every channel — the hot path of the Fig. 2 / Table I sweeps.
        """
        evaluations: List[PartitionEvaluation] = []
        for channel in channels:
            analyzer = PartitionAnalyzer(
                predictor, channel, require_shrinkage=require_shrinkage
            )
            evaluations.append(self.evaluate_partitions(architecture, analyzer))
        return evaluations

    # ------------------------------------------------------------------ maintenance
    def cache_sizes(self) -> Dict[str, int]:
        """Number of live entries per cache."""
        return {
            "predictors": len(self._predictors),
            "layer_predictions": sum(
                len(entries) for entries in self._layer_cache.values()
            ),
            "partition_evaluations": sum(
                len(entries) for entries in self._partition_cache.values()
            ),
        }

    def stats_dict(self) -> Dict[str, int]:
        """Hit/miss counters plus live cache sizes."""
        merged = self.stats.to_dict()
        merged.update(self.cache_sizes())
        return merged

    def clear(self) -> None:
        """Drop every cached value and reset the counters."""
        self._predictors.clear()
        self._layer_cache.clear()
        self._partition_cache.clear()
        self.stats = EngineStats()


#: Process-wide default engine used when callers do not supply one.
_DEFAULT_ENGINE: Optional[EvaluationEngine] = None


def default_engine() -> EvaluationEngine:
    """The lazily-created process-wide :class:`EvaluationEngine`."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = EvaluationEngine()
    return _DEFAULT_ENGINE
