"""repro.api — the unified experiment API.

The canonical way to define and run experiments:

* :mod:`repro.api.registry` — string-keyed registries for devices, wireless
  technologies and acquisitions (:data:`DEVICES`,
  :data:`WIRELESS_TECHNOLOGIES`, :data:`ACQUISITIONS`);
* :mod:`repro.api.scenario` — :class:`Scenario` (device + channel +
  provenance) and the :data:`SCENARIOS` registry of built-ins;
* :mod:`repro.api.envelopes` — versioned :class:`SearchRequest` /
  :class:`SearchOutcome` envelopes that persist and replay runs;
* :mod:`repro.api.engine` — the shared, caching :class:`EvaluationEngine`;
* :mod:`repro.api.session` — the :data:`STRATEGIES` registry and
  :func:`run_search`.

Quickstart::

    from repro.api import run_search

    outcome = run_search(
        strategy="lens",
        scenario="wifi-3mbps/jetson-tx2-gpu",
        num_initial=10,
        num_iterations=30,
        seed=0,
    )
    for candidate in outcome.pareto_candidates(("error_percent", "energy_j")):
        print(candidate.architecture_name, candidate.best_energy_option.label)
"""

from repro.api.engine import EngineStats, EvaluationEngine, default_engine
from repro.api.envelopes import (
    SCHEMA_VERSION,
    SearchOutcome,
    SearchRequest,
    check_schema_version,
    load_outcome,
    load_request,
    request_fingerprint,
)
from repro.api.registry import (
    ACQUISITIONS,
    DEVICES,
    SEARCH_SPACES,
    WIRELESS_TECHNOLOGIES,
    Registry,
    RegistryError,
    register_device,
    register_search_space,
)
from repro.api.scenario import (
    DEFAULT_SCENARIO,
    SCENARIOS,
    Scenario,
    ScenarioRegistry,
    builtin_scenarios,
    scenario_by_name,
)
from repro.api.session import (
    OBJECTIVES,
    STRATEGIES,
    SearchContext,
    build_context,
    execute_strategy,
    run_search,
)

__all__ = [
    "EngineStats",
    "EvaluationEngine",
    "default_engine",
    "SCHEMA_VERSION",
    "SearchOutcome",
    "SearchRequest",
    "check_schema_version",
    "load_outcome",
    "load_request",
    "request_fingerprint",
    "ACQUISITIONS",
    "DEVICES",
    "SEARCH_SPACES",
    "WIRELESS_TECHNOLOGIES",
    "Registry",
    "RegistryError",
    "register_device",
    "register_search_space",
    "DEFAULT_SCENARIO",
    "SCENARIOS",
    "Scenario",
    "ScenarioRegistry",
    "builtin_scenarios",
    "scenario_by_name",
    "OBJECTIVES",
    "STRATEGIES",
    "SearchContext",
    "build_context",
    "execute_strategy",
    "run_search",
]
