"""Running declared experiments: strategy registry and ``run_search``.

This module is the execution half of the experiment API: it resolves a
:class:`~repro.api.envelopes.SearchRequest` into concrete components
(scenario → device, channel, predictor; strategy → search loop), runs the
strategy, and wraps everything into a
:class:`~repro.api.envelopes.SearchOutcome`.

Strategies are registered by name in :data:`STRATEGIES`:

* ``"lens"`` — partition-aware MOBO (the paper's Algorithm 2);
* ``"traditional"`` — platform-aware MOBO using the All-Edge objectives;
* ``"random"`` — uniform-random sampling with the same evaluation budget.

A strategy is a callable ``strategy(context) -> (SearchResult,
OptimizationResult | None)``; registering a new one makes it addressable
from request envelopes immediately.

The legacy entry points (:class:`repro.core.lens.LensSearch`,
:class:`repro.core.traditional.TraditionalSearch`) are thin wrappers over
:func:`build_context` and :func:`execute_strategy`, so both API generations
share one code path and produce identical results for identical seeds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.accuracy.surrogate import AccuracyModel, AccuracySurrogate
from repro.api.engine import EvaluationEngine, default_engine
from repro.api.envelopes import SearchOutcome, SearchRequest
from repro.api.registry import ACQUISITIONS, SEARCH_SPACES, Registry
from repro.api.scenario import Scenario, ScenarioRegistry
from repro.core.evaluation import PartitionAwareEvaluator
from repro.core.results import CandidateEvaluation, SearchResult
from repro.hardware.device import DeviceProfile
from repro.hardware.predictors import BaseLayerPredictor
from repro.nn.spaces import SearchSpace
from repro.optim.mobo import MultiObjectiveBayesianOptimizer, OptimizationResult
from repro.optim.pareto import FrontHistory, compute_front_history
from repro.partition.partitioner import PartitionAnalyzer
from repro.resilience import faults
from repro.resilience.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    HEALTH_LOG_FILENAME,
    CheckpointRecorder,
    SearchCheckpoint,
)
from repro.resilience.health import HealthLog
from repro.utils.rng import ensure_rng
from repro.wireless.channel import WirelessChannel

#: The three objectives every strategy minimises, in order.
OBJECTIVES = ("error_percent", "latency_s", "energy_j")

#: Optional ``callback(evaluation_index, candidate_evaluation)``.
ProgressCallback = Callable[[int, CandidateEvaluation], None]


@dataclass
class SearchContext:
    """Fully-resolved components of one search run.

    The trailing resilience fields are optional wiring installed by
    :func:`run_search`: a :class:`~repro.resilience.health.HealthLog`
    collecting degradation events, an optional
    :class:`~repro.resilience.checkpoint.CheckpointRecorder` (strategies
    :meth:`~repro.resilience.checkpoint.CheckpointRecorder.bind_rng` their
    generator to it), and the non-finite/retry policy forwarded to the
    optimization loop.
    """

    request: SearchRequest
    scenario: Scenario
    search_space: SearchSpace
    accuracy_model: AccuracyModel
    device: DeviceProfile
    channel: WirelessChannel
    predictor: BaseLayerPredictor
    analyzer: PartitionAnalyzer
    evaluator: PartitionAwareEvaluator
    engine: EvaluationEngine
    progress_callback: Optional[ProgressCallback] = None
    health: Optional[HealthLog] = None
    recorder: Optional[CheckpointRecorder] = None
    strict_objectives: bool = False
    objective_retries: int = 0
    retry_backoff_s: float = 0.0


def build_context(
    request: Union[SearchRequest, Dict],
    *,
    scenarios: Optional[ScenarioRegistry] = None,
    search_space: Union[SearchSpace, str, None] = None,
    accuracy_model: Optional[AccuracyModel] = None,
    predictor: Optional[BaseLayerPredictor] = None,
    engine: Optional[EvaluationEngine] = None,
    progress_callback: Optional[ProgressCallback] = None,
) -> SearchContext:
    """Resolve a request into ready-to-run components.

    The search space is created from the request's ``search_space`` name via
    :data:`repro.api.registry.SEARCH_SPACES` (an unknown name raises the
    registry's suggestion-bearing
    :class:`~repro.api.registry.RegistryError`).  Passing ``search_space``
    overrides the request: a *name* is folded into the request itself, and a
    :class:`~repro.nn.spaces.SearchSpace` instance bypasses the registry
    with its ``space_name`` folded in likewise, so the context's request
    (and therefore the outcome and its fingerprint) records the space that
    ran.  Note the limit of that guarantee: requests only carry the space
    *name*, so an instance that keeps a built-in ``space_name`` (e.g. a
    reconfigured ``LensSearchSpace``, which inherits ``"lens-vgg"``) is
    indistinguishable from the built-in in stores and reports — give custom
    instances their own ``space_name`` when persisting their outcomes.
    ``accuracy_model`` and ``predictor`` likewise override the defaults
    (the analytic accuracy surrogate, and an engine-cached predictor
    trained for the scenario's device with the request's training
    settings).
    """
    if isinstance(request, dict):
        request = SearchRequest.from_dict(request)
    if isinstance(search_space, str):
        request = request.replace(search_space=search_space)
        search_space = None
    elif search_space is not None:
        name = getattr(search_space, "space_name", None)
        if name and name != request.search_space:
            request = request.replace(search_space=str(name))
    ACQUISITIONS.get(request.acquisition)  # raises a listing KeyError if unknown
    if search_space is None:
        search_space = SEARCH_SPACES.create(request.search_space)
    engine = engine or default_engine()
    scenario = request.resolve_scenario(scenarios)
    device = scenario.resolve_device()
    channel = scenario.build_channel()
    if predictor is None:
        predictor = engine.predictor_for(
            device,
            noise_std=request.predictor_noise_std,
            samples_per_type=request.predictor_samples_per_type,
            seed=request.seed,
        )
    analyzer = PartitionAnalyzer(predictor, channel)
    evaluator = PartitionAwareEvaluator(
        search_space=search_space,
        accuracy_model=accuracy_model or AccuracySurrogate(),
        analyzer=analyzer,
        partition_within=request.strategy != "traditional",
        engine=engine,
    )
    return SearchContext(
        request=request,
        scenario=scenario,
        search_space=evaluator.search_space,
        accuracy_model=evaluator.accuracy_model,
        device=device,
        channel=channel,
        predictor=predictor,
        analyzer=analyzer,
        evaluator=evaluator,
        engine=engine,
        progress_callback=progress_callback,
    )


# ---------------------------------------------------------------------- strategies

def _collect_candidates(raw: OptimizationResult) -> List[CandidateEvaluation]:
    candidates: List[CandidateEvaluation] = []
    for point in raw.points:
        evaluation: CandidateEvaluation = point.metadata["evaluation"]
        evaluation.iteration = point.iteration
        evaluation.phase = point.phase
        candidates.append(evaluation)
    return candidates


def _run_mobo(context: SearchContext, label: str) -> Tuple[SearchResult, OptimizationResult]:
    """Shared MOBO loop behind the lens and traditional strategies."""
    request = context.request
    callback = None
    if context.progress_callback is not None:
        progress = context.progress_callback

        def callback(index, point, _archive):
            progress(index, point.metadata["evaluation"])

    optimizer = MultiObjectiveBayesianOptimizer(
        sample_fn=context.evaluator.sample_fn,
        feature_fn=context.evaluator.feature_fn,
        objective_fn=context.evaluator.objective_fn,
        batch_objective_fn=context.evaluator.evaluate_pool,
        num_objectives=len(OBJECTIVES),
        num_initial=request.num_initial,
        num_iterations=request.num_iterations,
        candidate_pool_size=request.candidate_pool_size,
        acquisition=request.acquisition,
        batch_size=request.batch_size,
        neighbor_fn=context.evaluator.neighbor_fn,
        seed=request.seed,
        callback=callback,
        strict=context.strict_objectives,
        objective_retries=context.objective_retries,
        retry_backoff_s=context.retry_backoff_s,
        health=context.health,
    )
    if context.recorder is not None:
        context.recorder.bind_rng(optimizer._rng)
    raw = optimizer.run()
    return SearchResult(_collect_candidates(raw), label=label), raw


def _lens_strategy(context: SearchContext) -> Tuple[SearchResult, OptimizationResult]:
    """Partition-aware MOBO (paper Algorithm 2)."""
    return _run_mobo(context, label="lens")


def _traditional_strategy(context: SearchContext) -> Tuple[SearchResult, OptimizationResult]:
    """Platform-aware MOBO on All-Edge objectives (the paper's baseline)."""
    if context.evaluator.partition_within:
        raise ValueError(
            "traditional strategy requires an evaluator with partition_within=False; "
            "build the context with strategy='traditional'"
        )
    return _run_mobo(context, label="traditional")


#: Pool size the random strategy evaluates per batched call — large enough
#: to amortise the batch setup, small enough that progress callbacks keep
#: firing throughout long searches.
_RANDOM_EVAL_CHUNK = 64


def _random_strategy(context: SearchContext) -> Tuple[SearchResult, None]:
    """Uniform-random search with the same budget (sanity baseline).

    The whole budget is sampled up front (sampling alone consumes the
    generator, so the draw sequence matches the old interleaved loop) and
    costed in chunked pool-level evaluations through the engine's batched
    path.
    """
    request = context.request
    rng = ensure_rng(request.seed)
    if context.recorder is not None:
        context.recorder.bind_rng(rng)
    evaluator = context.evaluator
    seen = set()
    genotypes: List[np.ndarray] = []
    budget = request.num_evaluations
    attempts = 0
    while len(genotypes) < budget and attempts < budget * 20:
        attempts += 1
        genotype = evaluator.sample_fn(rng)
        key = np.asarray(genotype, dtype=int).tobytes()
        if key in seen:
            continue
        seen.add(key)
        genotypes.append(genotype)
    candidates: List[CandidateEvaluation] = []
    for start in range(0, len(genotypes), _RANDOM_EVAL_CHUNK):
        chunk = genotypes[start : start + _RANDOM_EVAL_CHUNK]
        for offset, (_, metadata) in enumerate(evaluator.evaluate_pool(chunk)):
            index = start + offset
            evaluation: CandidateEvaluation = metadata["evaluation"]
            evaluation.iteration = index
            evaluation.phase = "random"
            candidates.append(evaluation)
            if context.progress_callback is not None:
                context.progress_callback(index, evaluation)
    return SearchResult(candidates, label="random"), None


#: Search strategies addressable from request envelopes.
STRATEGIES = Registry(
    "search strategy",
    {
        "lens": _lens_strategy,
        "traditional": _traditional_strategy,
        "random": _random_strategy,
    },
)


# ---------------------------------------------------------------------- execution

def _front_history_of(candidates: List[CandidateEvaluation]) -> FrontHistory:
    """Per-evaluation front trajectory over :data:`OBJECTIVES`.

    Computed post hoc from the evaluation sequence, so every strategy —
    MOBO or random — gets the same telemetry without touching its search
    loop (or its RNG stream).
    """
    objectives = np.array(
        [[c.metric(metric) for metric in OBJECTIVES] for c in candidates],
        dtype=float,
    ).reshape(len(candidates), len(OBJECTIVES))
    return compute_front_history(
        objectives,
        OBJECTIVES,
        labels=[c.architecture_name for c in candidates],
        iterations=[c.iteration for c in candidates],
    )


def execute_strategy(
    context: SearchContext,
) -> Tuple[SearchResult, Optional[OptimizationResult]]:
    """Run the context's strategy and return its result (plus raw MOBO data)."""
    strategy = STRATEGIES.get(context.request.strategy)
    return strategy(context)


def _replay_group_sizes(request: SearchRequest, num_records: int) -> List[int]:
    """Evaluation-group sizes of a search's first ``num_records`` evaluations.

    Mirrors the strategies' batching exactly: the random strategy costs
    pools of :data:`_RANDOM_EVAL_CHUNK`, the MOBO strategies cost one
    ``num_initial`` batch and then ``min(batch_size, remaining)`` per step.
    Only *complete* groups are returned (their sizes sum to at most
    ``num_records``); records past the last group boundary are dropped by
    the resume replay and re-evaluated live, which keeps the warmed engine
    cache bit-identical to the original run's.
    """
    sizes: List[int] = []
    if request.strategy == "random":
        budget = request.num_evaluations
        start = 0
        while start < budget:
            size = min(_RANDOM_EVAL_CHUNK, budget - start)
            if start + size > num_records:
                break
            sizes.append(size)
            start += size
        return sizes
    # MOBO-shaped strategies (lens, traditional)
    if request.num_initial > num_records:
        return sizes
    sizes.append(request.num_initial)
    consumed = 0
    done = request.num_initial
    while consumed < request.num_iterations:
        step = min(request.batch_size, request.num_iterations - consumed)
        if done + step > num_records:
            break
        sizes.append(step)
        consumed += step
        done += step
    return sizes


def run_search(
    request: Union[SearchRequest, Dict, None] = None,
    *,
    scenarios: Optional[ScenarioRegistry] = None,
    search_space: Union[SearchSpace, str, None] = None,
    accuracy_model: Optional[AccuracyModel] = None,
    predictor: Optional[BaseLayerPredictor] = None,
    engine: Optional[EvaluationEngine] = None,
    progress_callback: Optional[ProgressCallback] = None,
    checkpoint_dir: Union[str, Path, None] = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    resume: bool = True,
    strict_objectives: bool = False,
    objective_retries: int = 0,
    retry_backoff_s: float = 0.0,
    **request_fields,
) -> SearchOutcome:
    """Execute a declared search end to end and return its outcome.

    ``run_search(strategy="lens", scenario="wifi-3mbps/jetson-tx2-gpu",
    search_space="resnet-v1")`` is the canonical entry point; a full
    :class:`SearchRequest` (or its dict form) may be passed instead, and
    keyword request fields are applied on top of it.  A ``search_space``
    *name* is a request field like any other (recorded in the outcome and
    the fingerprint); a :class:`~repro.nn.spaces.SearchSpace` *instance* is
    a component override that bypasses the registry.  The outcome embeds
    the request, the resolved scenario, every explored candidate, the
    engine's cache statistics and the run's resilience counters, and
    round-trips through ``to_dict``/``from_dict``.

    Passing ``checkpoint_dir`` makes the run crash-safe: the evaluated
    history is snapshotted every ``checkpoint_every`` evaluations into
    ``<checkpoint_dir>/<fingerprint>/`` (atomic temp-write+rename), and —
    with ``resume=True``, the default — an existing snapshot is replayed
    through the evaluation-engine cache before the strategy runs, so a
    resumed search produces a bitwise-identical outcome to an
    uninterrupted one (see :mod:`repro.resilience.checkpoint` and
    ``docs/robustness.md``).  ``strict_objectives`` / ``objective_retries``
    / ``retry_backoff_s`` set the non-finite-quarantine and flaky-objective
    retry policy of the optimization loop.
    """
    if isinstance(search_space, str):
        request_fields["search_space"] = search_space
        search_space = None
    if request is None:
        request = SearchRequest(**request_fields)
    else:
        if isinstance(request, dict):
            request = SearchRequest.from_dict(request)
        if request_fields:
            request = request.replace(**request_fields)
    faults.install_from_env()  # no-op unless REPRO_FAULT_* is set (drills)
    engine = engine or default_engine()
    stats_before = engine.stats.snapshot()  # report per-run deltas, not lifetime totals
    context = build_context(
        request,
        scenarios=scenarios,
        search_space=search_space,
        accuracy_model=accuracy_model,
        predictor=predictor,
        engine=engine,
        progress_callback=progress_callback,
    )
    health = HealthLog()
    context.health = health
    context.strict_objectives = bool(strict_objectives)
    context.objective_retries = int(objective_retries)
    context.retry_backoff_s = float(retry_backoff_s)
    recorder = None
    if checkpoint_dir is not None:
        fingerprint = context.request.fingerprint()
        cell_dir = SearchCheckpoint.cell_dir(checkpoint_dir, fingerprint)
        health.attach(cell_dir / HEALTH_LOG_FILENAME)
        resume_from = SearchCheckpoint.load(cell_dir, health=health) if resume else None
        if resume_from is not None and resume_from.records:
            # Resume is replay: warming the engine caches with the recorded
            # candidate sequence turns every recorded evaluation of the
            # re-run into a cache hit, so the strategy regenerates the
            # identical search at cache speed.  The replay must reproduce
            # the original run's evaluation *grouping* (init batch vs
            # per-step evaluations): the vectorised and scalar costing
            # paths agree only to float roundoff, so warming with a
            # different grouping would seed the cache with last-ulp
            # different values and break bitwise parity.  Records past the
            # last complete group boundary are simply re-evaluated live.
            genotypes = resume_from.genotypes()
            replayed = 0
            for size in _replay_group_sizes(context.request, len(genotypes)):
                context.evaluator.evaluate_pool(
                    [
                        np.asarray(g, dtype=int)
                        for g in genotypes[replayed : replayed + size]
                    ]
                )
                replayed += size
            if replayed:
                health.record(
                    "H_RESUMED",
                    f"replayed {replayed} of {resume_from.num_evaluations} "
                    f"recorded evaluation(s) through the engine cache",
                    replayed=replayed,
                )
        recorder = CheckpointRecorder(
            cell_dir,
            fingerprint=fingerprint,
            feature_fn=context.evaluator.feature_fn,
            objectives_fn=lambda ev: [ev.metric(m) for m in OBJECTIVES],
            every=checkpoint_every,
            health=health,
            resume_from=resume_from,
        )
        context.recorder = recorder
    user_callback = context.progress_callback
    if recorder is not None or user_callback is not None or faults.active() is not None:

        def _on_progress(index: int, evaluation: CandidateEvaluation) -> None:
            if recorder is not None:
                recorder.on_evaluation(index, evaluation)
            if user_callback is not None:
                user_callback(index, evaluation)
            injector = faults.active()
            if injector is not None:
                injector.on_evaluation_complete(index)

        context.progress_callback = _on_progress
    start = time.perf_counter()
    result, _raw = execute_strategy(context)
    elapsed = time.perf_counter() - start
    if recorder is not None:
        recorder.finalize()
    # the context's request records any space folded in by build_context
    return SearchOutcome(
        request=context.request,
        scenario=context.scenario,
        label=result.label,
        candidates=tuple(result),
        wall_time_s=elapsed,
        engine_stats=engine.stats.since(stats_before),
        front_history=_front_history_of(list(result)),
        health=health.counters(),
    )
