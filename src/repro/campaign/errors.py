"""Structured failure records for distributed campaigns.

One bad cell must never kill a million-cell campaign.  Every failure inside
the campaign service is therefore captured as an :class:`ErrorEnvelope` — a
uniform ``code``/``message``/``retryable``/``attempt`` record in the style
of service error-code schemes — and appended to an :class:`AuditLog`, an
append-only JSONL file living next to the store data it describes.  Workers
read the audit log back to drive bounded retry with exponential backoff:
the number of prior attempts and the timestamp of the last failure are both
recoverable from the log alone, so retry state survives worker crashes.

Error codes
-----------
========== ========= ====================================================
code       retryable meaning
========== ========= ====================================================
E_REGISTRY no        unknown scenario / search-space / strategy name
E_VALIDATION no      invalid request field values
E_STORE    no        store inconsistency (corrupt record, duplicate key)
E_WORKER_LOST yes    a worker process died before returning a result
E_TIMEOUT  yes       the cell exceeded its time limit
E_SYSTEM   yes       OS-level failure (out of memory, I/O error)
E_EXECUTION no       the search strategy raised while running
E_INTERNAL no        anything else — a library bug
========== ========= ====================================================

Retryable codes describe conditions that can heal (a crashed peer, a full
disk); non-retryable codes are deterministic — re-running the same request
would fail the same way — so workers mark them ``final`` on first sight.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

# Re-exported for backwards compatibility: the atomic multi-writer append
# now lives with the other serialization primitives (and is shared by the
# resilience health log), see :mod:`repro.utils.serialization`.
from repro.utils.serialization import append_jsonl_atomic  # noqa: F401

#: ``code -> (description, retryable)`` — the uniform error-code scheme of
#: the campaign service (documented in ``docs/distributed.md``).
ERROR_CODES: Dict[str, tuple] = {
    "E_REGISTRY": ("unknown scenario/search-space/strategy name", False),
    "E_VALIDATION": ("invalid request field values", False),
    "E_STORE": ("store inconsistency", False),
    "E_WORKER_LOST": ("worker process died before returning a result", True),
    "E_TIMEOUT": ("cell exceeded its time limit", True),
    "E_SYSTEM": ("OS-level failure (memory, I/O)", True),
    "E_EXECUTION": ("search strategy raised while running", False),
    "E_INTERNAL": ("unexpected library failure", False),
}


def classify_error(error: BaseException) -> str:
    """Map an exception to its campaign error code.

    Import-order safe: registry/store types are matched by class name as
    well as identity, so classification works in worker processes that
    raised through a different import path.
    """
    names = {cls.__name__ for cls in type(error).__mro__}
    if "RegistryError" in names:
        return "E_REGISTRY"
    if "StoreError" in names:
        return "E_STORE"
    if isinstance(error, (TimeoutError,)):
        return "E_TIMEOUT"
    if "BrokenProcessPool" in names or "BrokenExecutor" in names:
        return "E_WORKER_LOST"
    if isinstance(error, (MemoryError, OSError)):
        return "E_SYSTEM"
    if isinstance(error, (ValueError, TypeError, KeyError)):
        return "E_VALIDATION"
    if isinstance(error, Exception):
        return "E_EXECUTION"
    return "E_INTERNAL"


@dataclass(frozen=True)
class ErrorEnvelope:
    """One structured failure record.

    Parameters
    ----------
    code:
        A key of :data:`ERROR_CODES`.
    message:
        Human-readable description (usually ``str(exception)``).
    retryable:
        Whether re-running the cell can succeed.  Defaults to the code's
        table entry.
    attempt:
        1-based attempt number of the failed execution.
    final:
        ``True`` once the cell is permanently failed (non-retryable error,
        or the retry budget is exhausted) — workers treat final cells as
        resolved and stop claiming them.
    fingerprint / worker / time_s / context:
        Which cell failed, who ran it, when (epoch seconds), and optional
        routing metadata (scenario / search space).
    """

    code: str
    message: str
    retryable: bool = False
    attempt: int = 1
    final: bool = False
    fingerprint: Optional[str] = None
    worker: Optional[str] = None
    time_s: float = 0.0
    context: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ValueError(
                f"unknown error code {self.code!r}; "
                f"known codes: {sorted(ERROR_CODES)}"
            )

    @classmethod
    def from_exception(
        cls,
        error: BaseException,
        *,
        attempt: int = 1,
        fingerprint: Optional[str] = None,
        worker: Optional[str] = None,
        context: Optional[Mapping[str, Any]] = None,
        max_attempts: int = 1,
    ) -> "ErrorEnvelope":
        """Wrap an exception, deciding retryability and finality.

        A failure is ``final`` when its code is non-retryable or the
        attempt just made was the last one allowed.
        """
        code = classify_error(error)
        retryable = ERROR_CODES[code][1]
        return cls(
            code=code,
            message=f"{type(error).__name__}: {error}",
            retryable=retryable,
            attempt=int(attempt),
            final=(not retryable) or attempt >= max_attempts,
            fingerprint=fingerprint,
            worker=worker,
            time_s=time.time(),
            context=dict(context or {}),
        )

    def replace(self, **changes: Any) -> "ErrorEnvelope":
        """Copy with the given fields changed."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
            "attempt": self.attempt,
            "final": self.final,
            "fingerprint": self.fingerprint,
            "worker": self.worker,
            "time_s": self.time_s,
            "context": dict(self.context),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ErrorEnvelope":
        return cls(
            code=str(data["code"]),
            message=str(data.get("message", "")),
            retryable=bool(data.get("retryable", False)),
            attempt=int(data.get("attempt", 1)),
            final=bool(data.get("final", False)),
            fingerprint=data.get("fingerprint"),
            worker=data.get("worker"),
            time_s=float(data.get("time_s", 0.0)),
            context=dict(data.get("context", {})),
        )


class AuditLog:
    """Append-only JSONL log of :class:`ErrorEnvelope` records.

    Safe for concurrent writers (single atomic append per record) and for
    readers at any time: a torn trailing line is skipped, never half-parsed.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def append(self, envelope: ErrorEnvelope) -> None:
        """Persist one failure record."""
        append_jsonl_atomic(self.path, envelope.to_dict())

    def records(self) -> List[ErrorEnvelope]:
        """Every intact record, in append order."""
        if not self.path.exists():
            return []
        out: List[ErrorEnvelope] = []
        with self.path.open("rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # torn tail — a writer is (or was) mid-append
                try:
                    out.append(ErrorEnvelope.from_dict(json.loads(raw)))
                except (ValueError, KeyError):
                    continue  # interleave casualty; compaction removes it
        return out

    def attempts(self, fingerprint: str) -> int:
        """Number of recorded failures of one cell."""
        return sum(1 for r in self.records() if r.fingerprint == fingerprint)

    def last(self, fingerprint: str) -> Optional[ErrorEnvelope]:
        """Most recent failure record of one cell, if any."""
        match = None
        for record in self.records():
            if record.fingerprint == fingerprint:
                match = record
        return match

    def __len__(self) -> int:
        return len(self.records())


def summarize_audit(records: Iterable[ErrorEnvelope]) -> Dict[str, Any]:
    """Aggregate audit records into the shape reports and the CLI print.

    Returns ``num_records``, per-``code`` counts, the fingerprints of
    permanently failed cells, how many records were retries
    (``attempt > 1``) and which workers reported failures.
    """
    records = list(records)
    by_code: Dict[str, int] = {}
    failed: List[str] = []
    workers = set()
    retries = 0
    for record in records:
        by_code[record.code] = by_code.get(record.code, 0) + 1
        if record.final and record.fingerprint:
            if record.fingerprint not in failed:
                failed.append(record.fingerprint)
        if record.attempt > 1:
            retries += 1
        if record.worker:
            workers.add(record.worker)
    return {
        "num_records": len(records),
        "by_code": dict(sorted(by_code.items())),
        "failed_cells": sorted(failed),
        "retries": retries,
        "workers": sorted(workers),
    }
