"""Structured failure records for distributed campaigns.

One bad cell must never kill a million-cell campaign.  Every failure inside
the campaign service is therefore captured as an :class:`ErrorEnvelope` — a
uniform ``code``/``message``/``retryable``/``attempt`` record in the style
of service error-code schemes — and appended to an :class:`AuditLog`, an
append-only JSONL file living next to the store data it describes.  Workers
read the audit log back to drive bounded retry with exponential backoff:
the number of prior attempts and the timestamp of the last failure are both
recoverable from the log alone, so retry state survives worker crashes.

Error codes
-----------
========== ========= ====================================================
code       retryable meaning
========== ========= ====================================================
E_REGISTRY no        unknown scenario / search-space / strategy name
E_VALIDATION no      invalid request field values
E_STORE    no        store inconsistency (corrupt record, duplicate key)
E_WORKER_LOST yes    a worker process died before returning a result
E_TIMEOUT  yes       the cell exceeded its time limit
E_SYSTEM   yes       OS-level failure (out of memory, I/O error)
E_EXECUTION no       the search strategy raised while running
E_POISON   no        the cell exhausted its retry budget; dead-lettered
E_INTERNAL no        anything else — a library bug
========== ========= ====================================================

Retryable codes describe conditions that can heal (a crashed peer, a full
disk); non-retryable codes are deterministic — re-running the same request
would fail the same way — so workers mark them ``final`` on first sight.

Forward compatibility: audit logs written by a *newer* version of this
package may carry ``E_*`` codes this version does not know.
:meth:`ErrorEnvelope.from_dict` preserves such records (conservatively
non-retryable) instead of dropping them, so ``repro report`` over a shared
store never under-counts failures; direct construction stays strict.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Union

# Re-exported for backwards compatibility: the atomic multi-writer append
# now lives with the other serialization primitives (and is shared by the
# resilience health log), see :mod:`repro.utils.serialization`.
from repro.utils.serialization import append_jsonl_atomic  # noqa: F401

#: ``code -> (description, retryable)`` — the uniform error-code scheme of
#: the campaign service (documented in ``docs/distributed.md``).
ERROR_CODES: Dict[str, tuple] = {
    "E_REGISTRY": ("unknown scenario/search-space/strategy name", False),
    "E_VALIDATION": ("invalid request field values", False),
    "E_STORE": ("store inconsistency", False),
    "E_WORKER_LOST": ("worker process died before returning a result", True),
    "E_TIMEOUT": ("cell exceeded its time limit", True),
    "E_SYSTEM": ("OS-level failure (memory, I/O)", True),
    "E_EXECUTION": ("search strategy raised while running", False),
    "E_POISON": (
        "cell exhausted its retry budget or repeatedly killed workers; "
        "dead-lettered",
        False,
    ),
    "E_INTERNAL": ("unexpected library failure", False),
}

#: Shape of a plausible future error code — see the forward-compatibility
#: note in the module docstring.
_FUTURE_CODE = re.compile(r"^E_[A-Z][A-Z0-9_]*$")


def classify_error(error: BaseException) -> str:
    """Map an exception to its campaign error code.

    Import-order safe: registry/store types are matched by class name as
    well as identity, so classification works in worker processes that
    raised through a different import path.
    """
    names = {cls.__name__ for cls in type(error).__mro__}
    if "RegistryError" in names:
        return "E_REGISTRY"
    if "StoreError" in names:
        return "E_STORE"
    if isinstance(error, (TimeoutError,)):
        return "E_TIMEOUT"
    if "BrokenProcessPool" in names or "BrokenExecutor" in names:
        return "E_WORKER_LOST"
    if isinstance(error, (MemoryError, OSError)):
        return "E_SYSTEM"
    if isinstance(error, (ValueError, TypeError, KeyError)):
        return "E_VALIDATION"
    if isinstance(error, Exception):
        return "E_EXECUTION"
    return "E_INTERNAL"


@dataclass(frozen=True)
class ErrorEnvelope:
    """One structured failure record.

    Parameters
    ----------
    code:
        A key of :data:`ERROR_CODES`.
    message:
        Human-readable description (usually ``str(exception)``).
    retryable:
        Whether re-running the cell can succeed.  Defaults to the code's
        table entry.
    attempt:
        1-based attempt number of the failed execution.
    final:
        ``True`` once the cell is permanently failed (non-retryable error,
        or the retry budget is exhausted) — workers treat final cells as
        resolved and stop claiming them.
    fingerprint / worker / time_s / context:
        Which cell failed, who ran it, when (epoch seconds), and optional
        routing metadata (scenario / search space).
    """

    code: str
    message: str
    retryable: bool = False
    attempt: int = 1
    final: bool = False
    fingerprint: Optional[str] = None
    worker: Optional[str] = None
    time_s: float = 0.0
    context: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ValueError(
                f"unknown error code {self.code!r}; "
                f"known codes: {sorted(ERROR_CODES)}"
            )

    @classmethod
    def from_exception(
        cls,
        error: BaseException,
        *,
        attempt: int = 1,
        fingerprint: Optional[str] = None,
        worker: Optional[str] = None,
        context: Optional[Mapping[str, Any]] = None,
        max_attempts: int = 1,
    ) -> "ErrorEnvelope":
        """Wrap an exception, deciding retryability and finality.

        A failure is ``final`` when its code is non-retryable or the
        attempt just made was the last one allowed.
        """
        code = classify_error(error)
        retryable = ERROR_CODES[code][1]
        return cls(
            code=code,
            message=f"{type(error).__name__}: {error}",
            retryable=retryable,
            attempt=int(attempt),
            final=(not retryable) or attempt >= max_attempts,
            fingerprint=fingerprint,
            worker=worker,
            time_s=time.time(),
            context=dict(context or {}),
        )

    def replace(self, **changes: Any) -> "ErrorEnvelope":
        """Copy with the given fields changed."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
            "attempt": self.attempt,
            "final": self.final,
            "fingerprint": self.fingerprint,
            "worker": self.worker,
            "time_s": self.time_s,
            "context": dict(self.context),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ErrorEnvelope":
        code = str(data["code"])
        fields = dict(
            code=code,
            message=str(data.get("message", "")),
            retryable=bool(data.get("retryable", False)),
            attempt=int(data.get("attempt", 1)),
            final=bool(data.get("final", False)),
            fingerprint=data.get("fingerprint"),
            worker=data.get("worker"),
            time_s=float(data.get("time_s", 0.0)),
            context=dict(data.get("context", {})),
        )
        if code not in ERROR_CODES and _FUTURE_CODE.match(code):
            # a record written by a newer version: preserve it rather than
            # rejecting it, but never trust an unknown code to be retryable
            fields["retryable"] = False
            envelope = object.__new__(cls)
            for name, value in fields.items():
                object.__setattr__(envelope, name, value)
            return envelope
        return cls(**fields)


class AuditLog:
    """Append-only JSONL log of :class:`ErrorEnvelope` records.

    Safe for concurrent writers (single atomic append per record) and for
    readers at any time: a torn trailing line is skipped, never half-parsed.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def append(self, envelope: ErrorEnvelope) -> None:
        """Persist one failure record."""
        append_jsonl_atomic(self.path, envelope.to_dict())

    def iter_records(self) -> Iterator[ErrorEnvelope]:
        """Stream every intact record in append order, one at a time.

        This is the memory-bounded path: a million-record audit log is
        never materialised as a list, so ``repro report`` and
        :func:`summarize_audit` read it in O(1) memory.
        """
        if not self.path.exists():
            return
        with self.path.open("rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # torn tail — a writer is (or was) mid-append
                try:
                    yield ErrorEnvelope.from_dict(json.loads(raw))
                except (ValueError, KeyError):
                    continue  # interleave casualty; compaction removes it

    def records(self) -> List[ErrorEnvelope]:
        """Every intact record, in append order (see :meth:`iter_records`)."""
        return list(self.iter_records())

    def attempts(self, fingerprint: str, since: Optional[float] = None) -> int:
        """Number of recorded failures of one cell.

        ``since`` ignores records at or before that epoch time — the
        baseline a re-admitted dead-letter cell restarts its retry budget
        from.
        """
        return sum(1 for _ in self.history(fingerprint, since=since))

    def history(
        self, fingerprint: str, since: Optional[float] = None
    ) -> Iterator[ErrorEnvelope]:
        """Stream one cell's failure records, optionally after ``since``."""
        for record in self.iter_records():
            if record.fingerprint != fingerprint:
                continue
            if since is not None and record.time_s <= since:
                continue
            yield record

    def last(
        self, fingerprint: str, since: Optional[float] = None
    ) -> Optional[ErrorEnvelope]:
        """Most recent failure record of one cell, if any."""
        match = None
        for record in self.history(fingerprint, since=since):
            match = record
        return match

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_records())


def summarize_audit(records: Iterable[ErrorEnvelope]) -> Dict[str, Any]:
    """Aggregate audit records into the shape reports and the CLI print.

    Returns ``num_records``, per-``code`` counts, the fingerprints of
    permanently failed cells, how many records were retries
    (``attempt > 1``), which workers reported failures, and how many cells
    were dead-lettered (records whose ``context`` carries
    ``dead_letter=True``).  Single-pass and streaming: ``records`` may be a
    generator (e.g. :meth:`AuditLog.iter_records`) and is never
    materialised, so arbitrarily long audit logs summarise in O(1) memory.
    """
    num_records = 0
    by_code: Dict[str, int] = {}
    failed: List[str] = []
    failed_seen = set()
    dead_lettered = set()
    workers = set()
    retries = 0
    for record in records:
        num_records += 1
        by_code[record.code] = by_code.get(record.code, 0) + 1
        if record.final and record.fingerprint:
            if record.fingerprint not in failed_seen:
                failed_seen.add(record.fingerprint)
                failed.append(record.fingerprint)
        if record.fingerprint and record.context.get("dead_letter"):
            dead_lettered.add(record.fingerprint)
        if record.attempt > 1:
            retries += 1
        if record.worker:
            workers.add(record.worker)
    return {
        "num_records": num_records,
        "by_code": dict(sorted(by_code.items())),
        "failed_cells": sorted(failed),
        "retries": retries,
        "workers": sorted(workers),
        "dead_lettered": sorted(dead_lettered),
    }
