"""Persistent, resumable storage of search outcomes.

A :class:`RunStore` is a directory holding one append-only JSONL file
(``runs.jsonl``, one serialized :class:`~repro.api.envelopes.SearchOutcome`
per line) plus a derived index (``index.json``) mapping each request
fingerprint to a compact summary and the byte offset of its record.  The
JSONL file is the source of truth: opening a store always re-scans it, so an
index lost or staled by an interrupted run is rebuilt rather than trusted.

Durability model
----------------
Records are flushed line-by-line, so a campaign killed mid-run loses at most
the record being written.  A torn trailing line (the process died inside a
``write``) is excluded from the index on open and truncated away by the next
:meth:`RunStore.append`; the affected cell simply re-runs on resume.  A
corrupt line in the *middle* of the file raises — that is disk damage, not
an interrupted append, and silently dropping finished runs would be worse.

Every record appended since the integrity layer landed carries a ``crc32``
field (see :func:`record_crc`) checked on every scan: a line that still
parses but whose checksum disagrees is disk rot and raises rather than
being silently served.  Records from older stores (no ``crc32`` field)
keep reading unchanged.  ``repro store fsck`` verifies, quarantines and
repairs damaged stores (:func:`repro.campaign.sharded.fsck_store`).

The store expects a single writer (the campaign runner appends from the
parent process only).  Concurrent readers are safe because records are
immutable once written and opening a store for reading never writes: the
torn-tail repair and the ``index.json`` refresh both happen inside
:meth:`RunStore.append`, so a monitoring ``repro report`` cannot corrupt a
live campaign's store.  ``index.json`` itself is written atomically (temp
file + ``os.replace``) and, past :data:`INDEX_FLUSH_SMALL` records, only at
geometrically spaced sizes — call :meth:`RunStore.flush` (or use the store
as a context manager) to persist it eagerly; a stale or missing index is
always rebuilt from the JSONL on open.

Multi-writer campaigns (several ``repro worker`` processes appending
concurrently) use the sharded sibling,
:class:`repro.campaign.sharded.ShardedRunStore`, which presents the same
read/write interface over per-(scenario x space) shard files.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.api.envelopes import SearchOutcome, request_fingerprint
from repro.campaign.errors import AuditLog, ErrorEnvelope
from repro.nn.spaces import DEFAULT_SEARCH_SPACE
from repro.utils.serialization import to_jsonable

#: Name of the append-only record file inside a store directory.
RUNS_FILENAME = "runs.jsonl"

#: Name of the derived fingerprint index inside a store directory.
INDEX_FILENAME = "index.json"

#: Name of the failure audit log inside a (single-file) store directory.
AUDIT_FILENAME = "audit.jsonl"

#: Stores at or below this many records rewrite ``index.json`` on every
#: append (cheap, and keeps small stores browsable at all times); larger
#: stores flush at geometrically spaced sizes plus on :meth:`RunStore.flush`,
#: so a long campaign writes O(n) index bytes instead of O(n^2).
INDEX_FLUSH_SMALL = 256


class StoreError(RuntimeError):
    """A run store's on-disk state is inconsistent."""


# Re-exported for backwards compatibility: the crash-safe temp-write+rename
# now lives with the other serialization primitives (and is shared by the
# search checkpoint layer), see :mod:`repro.utils.serialization`.
from repro.utils.serialization import atomic_write_text  # noqa: E402,F401


def record_crc(record: Dict[str, Any]) -> int:
    """CRC32 of one store record, over a canonical serialization.

    The checksum covers every field except ``crc32`` itself, serialized
    with sorted keys and tight separators — independent of the key order
    and whitespace of the line actually on disk, so a compacted or merged
    record verifies identically.  New records carry the result as a
    ``crc32`` field; records written before the field existed verify
    vacuously (there is nothing to check them against).
    """
    payload = {key: value for key, value in record.items() if key != "crc32"}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    return zlib.crc32(blob) & 0xFFFFFFFF


def verify_record_crc(record: Dict[str, Any]) -> bool:
    """Whether a record's stored ``crc32`` matches its content.

    Records without the field (pre-CRC stores) pass — old stores keep
    reading — but a present-and-wrong checksum means the bytes rotted on
    disk (or were tampered with) and the record must never be served.
    """
    stored = record.get("crc32")
    if stored is None:
        return True
    try:
        return int(stored) == record_crc(record)
    except (TypeError, ValueError):
        return False


def _record_summary(record: Dict[str, Any]) -> Dict[str, Any]:
    """Compact index entry derived from one serialized outcome record."""
    outcome = record["outcome"]
    request = outcome.get("request", {})
    scenario = request.get("scenario", "?")
    if isinstance(scenario, dict):
        scenario = scenario.get("name", "?")
    return {
        "scenario": scenario,
        "strategy": request.get("strategy", "?"),
        # schema-v1 records predate the search_space field: default space
        "search_space": request.get("search_space", DEFAULT_SEARCH_SPACE),
        "seed": request.get("seed"),
        "num_candidates": len(outcome.get("candidates", [])),
        "wall_time_s": float(outcome.get("wall_time_s", 0.0)),
    }


class RunStore:
    """Fingerprint-keyed persistent collection of search outcomes.

    Parameters
    ----------
    directory:
        Store directory; created (with parents) by the first append.
        Existing ``runs.jsonl`` records are indexed immediately.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.runs_path = self.directory / RUNS_FILENAME
        self.index_path = self.directory / INDEX_FILENAME
        #: fingerprint -> (byte offset of the record line, summary dict)
        self._index: Dict[str, Tuple[int, Dict[str, Any]]] = {}
        #: End of the last intact record; bytes past it are a torn tail.
        self._good_end = 0
        #: Index-persistence state: ``runs.jsonl`` is the rebuildable source
        #: of truth, so ``index.json`` may lag behind; it is flushed on every
        #: append while the store is small, at geometrically spaced sizes
        #: after that, and always by :meth:`flush` / :meth:`close`.
        self._index_dirty = False
        self._index_writes = 0
        self._scan()
        self._next_index_flush = max(INDEX_FLUSH_SMALL, len(self._index)) * 2

    # ------------------------------------------------------------------ scanning
    def _scan(self) -> None:
        """(Re)build the in-memory index from ``runs.jsonl``.

        Read-only: a torn trailing line left by an interrupted append is
        excluded from the index and marked for truncation by the next
        :meth:`append`, but nothing on disk is touched here.
        """
        self._index.clear()
        self._good_end = 0
        if not self.runs_path.exists():
            return
        with self.runs_path.open("rb") as handle:
            offset = 0
            for line_number, raw in enumerate(handle, start=1):
                if not raw.endswith(b"\n"):
                    # torn tail from an interrupted append — a record is only
                    # durable once its newline hit the disk, even if the
                    # flushed prefix happens to parse as complete JSON
                    break
                try:
                    record = json.loads(raw.decode("utf-8"))
                    fingerprint = str(record["fingerprint"])
                    summary = _record_summary(record)
                except (ValueError, KeyError, UnicodeDecodeError) as error:
                    raise StoreError(
                        f"{self.runs_path}:{line_number}: corrupt record "
                        f"({error}); run 'repro store fsck --store "
                        f"{self.directory} --repair' to quarantine it"
                    ) from error
                if not verify_record_crc(record):
                    # disk rot: the line parses but its checksum disagrees —
                    # refuse to serve it rather than hand back silently
                    # corrupted search results
                    raise StoreError(
                        f"{self.runs_path}:{line_number}: CRC mismatch on "
                        f"record {fingerprint!r}; run 'repro store fsck "
                        f"--store {self.directory} --repair' to quarantine it"
                    )
                if fingerprint in self._index:
                    raise StoreError(
                        f"{self.runs_path}:{line_number}: duplicate fingerprint "
                        f"{fingerprint!r}"
                    )
                self._index[fingerprint] = (offset, summary)
                offset += len(raw)
                self._good_end = offset

    def _write_index(self) -> None:
        payload = {
            "schema_version": 1,
            "records": {
                fingerprint: dict(summary, offset=offset)
                for fingerprint, (offset, summary) in self._index.items()
            },
        }
        # temp file + os.replace: a crash mid-write can no longer leave a
        # corrupt index.json behind (the JSONL rebuild would mask it, but a
        # half-written index should never exist in the first place)
        atomic_write_text(
            self.index_path,
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
        self._index_writes += 1
        self._index_dirty = False

    def _maybe_write_index(self) -> None:
        """Flush the index now or defer it, depending on store size.

        Every append persists the index while the store holds at most
        :data:`INDEX_FLUSH_SMALL` records; past that, flushes happen when
        the store doubles in size (plus on :meth:`flush`/:meth:`close`),
        keeping total index-write cost linear in campaign length instead of
        quadratic.  A stale index is harmless: opening a store always
        rebuilds from ``runs.jsonl``.
        """
        count = len(self._index)
        if count <= INDEX_FLUSH_SMALL or count >= self._next_index_flush:
            self._write_index()
            self._next_index_flush = max(INDEX_FLUSH_SMALL, count) * 2
        else:
            self._index_dirty = True

    def flush(self) -> None:
        """Persist the index if any appends deferred it."""
        if self._index_dirty:
            self._write_index()

    def close(self) -> None:
        """Flush deferred state; the store stays usable afterwards."""
        self.flush()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def index_writes(self) -> int:
        """How many times ``index.json`` was written by this instance."""
        return self._index_writes

    # ------------------------------------------------------------------ writing
    def append(
        self, outcome: SearchOutcome, fingerprint: Optional[str] = None
    ) -> str:
        """Persist one outcome and return its fingerprint.

        The fingerprint defaults to the outcome's own request fingerprint;
        appending a fingerprint the store already holds raises (re-running a
        finished cell is a campaign-runner bug, not a storage event).
        """
        fingerprint = fingerprint or request_fingerprint(outcome.request)
        if fingerprint in self._index:
            raise StoreError(
                f"fingerprint {fingerprint!r} is already stored in {self.directory}"
            )
        record = {"fingerprint": fingerprint, "outcome": to_jsonable(outcome.to_dict())}
        record["crc32"] = record_crc(record)
        # binary mode end to end: byte offsets stay exact on every platform
        line = (json.dumps(record, sort_keys=False) + "\n").encode("utf-8")
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.runs_path.exists() and self.runs_path.stat().st_size > self._good_end:
            with self.runs_path.open("r+b") as handle:
                handle.truncate(self._good_end)  # drop a torn tail before appending
        with self.runs_path.open("ab") as handle:
            offset = handle.tell()
            handle.write(line)
            handle.flush()
        self._index[fingerprint] = (offset, _record_summary(record))
        self._good_end = offset + len(line)
        self._maybe_write_index()
        return fingerprint

    # ------------------------------------------------------------------ reading
    def fingerprints(self) -> List[str]:
        """Stored fingerprints, in append order."""
        return list(self._index)

    def __contains__(self, fingerprint: object) -> bool:
        return isinstance(fingerprint, str) and fingerprint in self._index

    def __len__(self) -> int:
        return len(self._index)

    def get(self, fingerprint: str) -> SearchOutcome:
        """Load one stored outcome by fingerprint (O(1) via the offset index)."""
        try:
            offset, _ = self._index[fingerprint]
        except KeyError:
            raise KeyError(
                f"fingerprint {fingerprint!r} is not stored in {self.directory}"
            ) from None
        with self.runs_path.open("rb") as handle:
            handle.seek(offset)
            record = json.loads(handle.readline().decode("utf-8"))
        return SearchOutcome.from_dict(record["outcome"])

    def outcomes(
        self, offset: int = 0, limit: Optional[int] = None
    ) -> Iterator[SearchOutcome]:
        """Stream stored outcomes in append order, optionally paginated.

        ``offset``/``limit`` select a window of the append order (the same
        pagination contract as :meth:`ShardedRunStore.outcomes
        <repro.campaign.sharded.ShardedRunStore.outcomes>`), so large
        stores can be read in bounded slices.  Stops at the last intact
        record, so a torn tail (or a record a live writer is flushing right
        now) is never half-parsed.
        """
        if offset < 0 or (limit is not None and limit < 0):
            raise ValueError(
                f"offset/limit must be non-negative, got {offset}/{limit}"
            )
        if not self.runs_path.exists() or limit == 0:
            return
        consumed = 0
        position = 0
        yielded = 0
        with self.runs_path.open("rb") as handle:
            for raw in handle:
                consumed += len(raw)
                if consumed > self._good_end:
                    return
                position += 1
                if position <= offset:
                    continue
                yield SearchOutcome.from_dict(
                    json.loads(raw.decode("utf-8"))["outcome"]
                )
                yielded += 1
                if limit is not None and yielded >= limit:
                    return

    def records(self) -> Dict[str, Dict[str, Any]]:
        """Fingerprint -> summary mapping (scenario, strategy, space, seed, size)."""
        return {
            fingerprint: dict(summary)
            for fingerprint, (_, summary) in self._index.items()
        }

    def summary(self) -> Dict[str, Any]:
        """One-line store overview (used by ``repro list --store``)."""
        records = self.records()
        return {
            "directory": str(self.directory),
            "num_runs": len(records),
            "scenarios": sorted({r["scenario"] for r in records.values()}),
            "strategies": sorted({r["strategy"] for r in records.values()}),
            "search_spaces": sorted({r["search_space"] for r in records.values()}),
            "total_wall_time_s": sum(r["wall_time_s"] for r in records.values()),
        }

    # ------------------------------------------------------------------ audit
    @property
    def audit(self) -> AuditLog:
        """The store's failure audit log (``audit.jsonl``)."""
        return AuditLog(self.directory / AUDIT_FILENAME)

    def record_error(self, envelope: ErrorEnvelope, **_routing: Any) -> None:
        """Append one failure envelope to the audit log.

        Routing keywords (``scenario=`` / ``search_space=``) are accepted
        for interface parity with the sharded store and ignored here — a
        single-file store has a single audit log.
        """
        self.audit.append(envelope)

    def audit_records(self) -> List[ErrorEnvelope]:
        """Every recorded failure envelope, in append order."""
        return self.audit.records()

    def iter_audit_records(self) -> Iterator[ErrorEnvelope]:
        """Stream failure envelopes without materialising the full list."""
        return self.audit.iter_records()

    def __repr__(self) -> str:
        return f"RunStore({str(self.directory)!r}, runs={len(self)})"
