"""Pluggable campaign executors behind a string-keyed registry.

:func:`~repro.campaign.runner.run_campaign` plans the grid (expand, dedupe,
resume-skip) and persists results; *how* the pending cells actually execute
is delegated to a :class:`CampaignExecutor` resolved by name through
:data:`EXECUTORS` — the same registry idiom as devices, search spaces and
strategies (:mod:`repro.api.registry`).

Built-in executors
------------------
``serial``
    In-process loop sharing one evaluation engine.  Deterministic order,
    best cache reuse, no parallelism.  Default for ``workers <= 1``.
``process-pool``
    A :class:`concurrent.futures.ProcessPoolExecutor` fan-out (the
    pre-existing parallel path, refactored behind the interface).  Default
    for ``workers > 1``.
``asyncio``
    Subprocess-per-cell under an :class:`asyncio.Semaphore` concurrency
    limit.  Cells run via ``repro run-cell`` (request JSON on stdin,
    outcome JSON on stdout), so each gets a fresh interpreter — full
    isolation from parent state at spawn cost.
``pull-worker``
    Publishes a :class:`~repro.campaign.manifest.CampaignManifest` into a
    shared :class:`~repro.campaign.sharded.ShardedRunStore` directory and
    launches N ``repro worker`` processes that *pull* cells through the
    lease protocol (:mod:`repro.campaign.leases`).  The only executor that
    survives worker crashes mid-campaign, and the same protocol additional
    workers on other machines join by pointing at the directory.

Executors report results through the :class:`ExecutionContext` callbacks —
``record`` for outcomes, ``fail`` for error envelopes — and never touch the
store directly unless their protocol requires it (pull workers persist
outcomes themselves; they pass ``persisted=True`` so the runner does not
append twice).
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import repro
from repro.api.envelopes import SearchOutcome, SearchRequest
from repro.api.registry import Registry
from repro.api.session import run_search
from repro.campaign.errors import ErrorEnvelope
from repro.campaign.manifest import CampaignManifest
from repro.campaign.sharded import ShardedRunStore
from repro.campaign.store import StoreError
from repro.campaign.supervisor import (
    CIRCUIT_OPEN,
    CampaignPolicy,
    CampaignSupervisor,
    CircuitOpenError,
    deadline,
)
from repro.utils.serialization import to_jsonable


def _policy_from_options(context: "ExecutionContext") -> CampaignPolicy:
    """The campaign's :class:`CampaignPolicy`, resolved from the context.

    ``executor_options`` carries the policy fields flat (the runner merges
    ``policy.to_dict()`` in); unknown extra options are ignored and the
    context's ``on_error`` always wins.
    """
    data = dict(context.options)
    data["on_error"] = context.on_error
    return CampaignPolicy.from_dict(data)


def _request_context(request: SearchRequest) -> Dict[str, str]:
    """Audit-routing metadata of one request (shard coordinates)."""
    scenario = request.scenario
    return {
        "scenario": scenario if isinstance(scenario, str) else scenario.name,
        "search_space": request.search_space,
    }


@dataclass
class ExecutionContext:
    """Everything an executor needs to run one campaign's pending cells.

    Attributes
    ----------
    pending:
        ``(fingerprint, request)`` pairs still to execute, in grid order.
    store:
        The destination store (executors that persist results themselves —
        pull workers — need its directory; others leave writes to ``record``).
    workers:
        Parallelism degree requested by the caller.
    on_error:
        ``"fail"`` stops launching new cells after the first failure;
        ``"continue"`` records the envelope and keeps going.
    scenarios / engine:
        Optional registry/engine overrides (in-process executors only).
    record / fail:
        Result callbacks provided by the runner.  ``record(fingerprint,
        outcome, persisted=False)`` stores a finished cell (``persisted=True``
        means the executor already wrote it); ``fail(fingerprint, envelope,
        persisted=False)`` registers a permanent failure likewise.
    options:
        Executor-specific settings (lease TTL, poll interval, ...).
    """

    pending: List[Tuple[str, SearchRequest]]
    store: Any
    workers: int = 1
    on_error: str = "fail"
    scenarios: Optional[Any] = None
    engine: Optional[Any] = None
    record: Callable[..., None] = lambda *a, **k: None
    fail: Callable[..., None] = lambda *a, **k: None
    options: Dict[str, Any] = field(default_factory=dict)

    @property
    def stop_on_error(self) -> bool:
        return self.on_error == "fail"


class CampaignExecutor:
    """Protocol of a campaign executor.

    Subclasses implement :meth:`run`, reporting every pending cell exactly
    once through ``context.record`` / ``context.fail`` (except cells skipped
    because ``on_error="fail"`` stopped the campaign early).
    """

    #: Registry key (also shown in ``CampaignResult.summary()``).
    name: str = "base"

    def run(self, context: ExecutionContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ---------------------------------------------------------------------- serial


class SerialExecutor(CampaignExecutor):
    """In-process loop sharing one engine across cells.

    Honours the policy's ``cell_timeout_s``: each cell runs under
    :func:`~repro.campaign.supervisor.deadline`, so an overrun raises
    :class:`~repro.campaign.supervisor.CellTimeout` and is enveloped as
    ``E_TIMEOUT`` like any other failure.
    """

    name = "serial"

    def run(self, context: ExecutionContext) -> None:
        cell_timeout_s = _policy_from_options(context).cell_timeout_s
        for fingerprint, request in context.pending:
            try:
                with deadline(cell_timeout_s):
                    outcome = run_search(
                        request,
                        scenarios=context.scenarios,
                        engine=context.engine,
                    )
            except Exception as error:  # noqa: BLE001 - enveloped
                context.fail(
                    fingerprint,
                    ErrorEnvelope.from_exception(
                        error,
                        fingerprint=fingerprint,
                        worker=self.name,
                        context=_request_context(request),
                    ),
                )
                if context.stop_on_error:
                    return
                continue
            context.record(fingerprint, outcome)


# ---------------------------------------------------------------------- process pool


def _execute_request(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one serialized request, return a plain dict.

    Module-level (picklable) and dict-in/dict-out so it crosses process
    boundaries regardless of start method.  The per-process default engine
    warms up across the cells a worker executes.
    """
    outcome = run_search(SearchRequest.from_dict(payload))
    return to_jsonable(outcome.to_dict())


class ProcessPoolCampaignExecutor(CampaignExecutor):
    """Fan cells out over a :class:`ProcessPoolExecutor`.

    Workers resolve scenario/space/strategy *names* through their own
    freshly-imported registries, so custom components must be registered at
    import time (see the :mod:`repro.campaign.runner` docstring).  A failing
    cell never discards finished work: successes are stored as they
    complete, and under ``on_error="fail"`` not-yet-started cells are
    cancelled while in-flight ones drain.

    ``cell_timeout_s`` is **not** enforced here (a pool worker cannot be
    killed per-cell without losing its warm engine); use the ``asyncio``
    or ``pull-worker`` executor when deadlines matter.
    """

    name = "process-pool"

    def run(self, context: ExecutionContext) -> None:
        if not context.pending:
            return
        requests = dict(context.pending)
        failed_once = False
        with ProcessPoolExecutor(max_workers=max(1, context.workers)) as pool:
            futures = {
                pool.submit(_execute_request, request.to_dict()): fingerprint
                for fingerprint, request in context.pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    if future.cancelled():
                        continue
                    fingerprint = futures[future]
                    try:
                        outcome = SearchOutcome.from_dict(future.result())
                    except Exception as error:  # noqa: BLE001 — drain the rest
                        if context.stop_on_error and not failed_once:
                            for outstanding in remaining:
                                outstanding.cancel()
                        failed_once = True
                        context.fail(
                            fingerprint,
                            ErrorEnvelope.from_exception(
                                error,
                                fingerprint=fingerprint,
                                worker=self.name,
                                context=_request_context(requests[fingerprint]),
                            ),
                        )
                        continue
                    context.record(fingerprint, outcome)


# ---------------------------------------------------------------------- asyncio


def _subprocess_env() -> Dict[str, str]:
    """Child environment whose ``PYTHONPATH`` resolves the ``repro`` package."""
    env = dict(os.environ)
    package_root = str(os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__))))
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            f"{package_root}{os.pathsep}{existing}" if existing else package_root
        )
    return env


class AsyncioSubprocessExecutor(CampaignExecutor):
    """One fresh ``repro run-cell`` subprocess per cell, concurrency-limited.

    The asyncio event loop multiplexes N concurrent subprocesses through a
    semaphore; each child reads its request JSON from stdin and writes the
    outcome JSON to stdout (or an error envelope to stderr, exit code 3).
    Spawning an interpreter per cell costs startup time but gives complete
    isolation — a cell that corrupts interpreter state (or segfaults)
    cannot poison its successors.
    """

    name = "asyncio"

    def run(self, context: ExecutionContext) -> None:
        asyncio.run(self._run(context))

    async def _run(self, context: ExecutionContext) -> None:
        semaphore = asyncio.Semaphore(max(1, context.workers))
        stop = asyncio.Event()
        env = _subprocess_env()
        cell_timeout_s = _policy_from_options(context).cell_timeout_s

        async def run_cell(fingerprint: str, request: SearchRequest) -> None:
            async with semaphore:
                if stop.is_set():
                    return
                process = await asyncio.create_subprocess_exec(
                    sys.executable,
                    "-m",
                    "repro",
                    "run-cell",
                    stdin=asyncio.subprocess.PIPE,
                    stdout=asyncio.subprocess.PIPE,
                    stderr=asyncio.subprocess.PIPE,
                    env=env,
                )
                try:
                    stdout, stderr = await asyncio.wait_for(
                        process.communicate(
                            json.dumps(request.to_dict()).encode("utf-8")
                        ),
                        timeout=cell_timeout_s if cell_timeout_s > 0 else None,
                    )
                except asyncio.TimeoutError:
                    # deadline enforcement: kill the overrunning subprocess
                    # and audit a real E_TIMEOUT
                    process.kill()
                    await process.wait()
                    self._failure(
                        context,
                        fingerprint,
                        request,
                        stop,
                        ErrorEnvelope(
                            code="E_TIMEOUT",
                            message=(
                                f"cell exceeded its {cell_timeout_s:g}s "
                                f"deadline; subprocess killed"
                            ),
                            retryable=True,
                            final=True,
                            fingerprint=fingerprint,
                            worker=self.name,
                            time_s=time.time(),
                            context=_request_context(request),
                        ),
                    )
                    return
            if process.returncode == 0:
                try:
                    outcome = SearchOutcome.from_dict(
                        json.loads(stdout.decode("utf-8"))
                    )
                except ValueError as error:
                    self._failure(
                        context,
                        fingerprint,
                        request,
                        stop,
                        ErrorEnvelope.from_exception(
                            error,
                            fingerprint=fingerprint,
                            worker=self.name,
                            context=_request_context(request),
                        ),
                    )
                    return
                context.record(fingerprint, outcome)
                return
            envelope = self._decode_envelope(
                fingerprint, request, process.returncode, stderr
            )
            self._failure(context, fingerprint, request, stop, envelope)

        await asyncio.gather(
            *(run_cell(fp, request) for fp, request in context.pending)
        )

    def _decode_envelope(
        self,
        fingerprint: str,
        request: SearchRequest,
        returncode: Optional[int],
        stderr: bytes,
    ) -> ErrorEnvelope:
        text = stderr.decode("utf-8", errors="replace").strip()
        if returncode == 3 and text:  # structured envelope from run-cell
            try:
                envelope = ErrorEnvelope.from_dict(json.loads(text.splitlines()[-1]))
                return envelope.replace(
                    fingerprint=fingerprint, context=_request_context(request)
                )
            except (ValueError, KeyError):
                pass
        return ErrorEnvelope(
            code="E_WORKER_LOST",
            message=(
                f"run-cell subprocess exited with code {returncode}: "
                f"{text[-500:] or '(no stderr)'}"
            ),
            retryable=True,
            fingerprint=fingerprint,
            worker=self.name,
            time_s=time.time(),
            context=_request_context(request),
        )

    def _failure(
        self,
        context: ExecutionContext,
        fingerprint: str,
        request: SearchRequest,
        stop: asyncio.Event,
        envelope: ErrorEnvelope,
    ) -> None:
        if context.stop_on_error:
            stop.set()
        context.fail(fingerprint, envelope)


# ---------------------------------------------------------------------- pull worker


class PullWorkerExecutor(CampaignExecutor):
    """Launch N ``repro worker`` processes pulling from a shared store.

    Requires a :class:`~repro.campaign.sharded.ShardedRunStore` destination
    (the only store format safe for concurrent writers).  The executor
    publishes the manifest, spawns the workers, then *observes*: it polls
    the store, reporting newly appeared outcomes (``persisted=True`` — the
    workers already wrote them) and finally-failed audit records, until
    every pending cell is resolved.  Workers crashing is survivable — peers
    reclaim their leases; the campaign only fails if **all** workers exit
    with cells still unresolved.

    Options (via ``executor_options`` / ``repro campaign``) are the flat
    :class:`~repro.campaign.supervisor.CampaignPolicy` fields: ``ttl_s``
    lease expiry window, ``poll_s`` poll interval, ``max_attempts`` /
    ``backoff_base_s`` / ``max_backoff_s`` retry policy, ``cell_timeout_s``
    enforced per-cell deadline, ``checkpoint_every`` crash-safe mid-search
    checkpointing (``0`` disables; see ``docs/robustness.md``), and the
    ``circuit_*`` breaker knobs.  If the shared breaker opens mid-campaign
    the observer raises
    :class:`~repro.campaign.supervisor.CircuitOpenError` (CLI exit code 4)
    after shutting the workers down.
    """

    name = "pull-worker"

    def run(self, context: ExecutionContext) -> None:
        store = context.store
        if not isinstance(store, ShardedRunStore):
            raise StoreError(
                "the pull-worker executor needs a sharded store "
                "(run with sharded=True / --sharded); "
                f"got {type(store).__name__}"
            )
        if not context.pending:
            return
        manifest = CampaignManifest.from_requests(
            [request for _, request in context.pending],
            policy=_policy_from_options(context),
        )
        manifest.write(store.directory)
        env = _subprocess_env()
        workers = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "worker",
                    "--store",
                    str(store.directory),
                    "--worker-id",
                    f"w{index}",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            for index in range(max(1, context.workers))
        ]
        try:
            self._observe(context, store, manifest, workers)
        except CircuitOpenError:
            # paused workers never exit on their own — tell them to stop
            # before the finally block waits on them
            for process in workers:
                if process.poll() is None:
                    process.terminate()
            raise
        finally:
            for process in workers:
                if process.poll() is None:
                    try:
                        process.wait(timeout=10.0)
                    except subprocess.TimeoutExpired:
                        process.terminate()
                        try:
                            process.wait(timeout=5.0)
                        except subprocess.TimeoutExpired:
                            process.kill()
                            process.wait()

    def _observe(
        self,
        context: ExecutionContext,
        store: ShardedRunStore,
        manifest: CampaignManifest,
        workers: List[subprocess.Popen],
    ) -> None:
        def sweep(unresolved: Dict[str, SearchRequest]) -> None:
            store.refresh()
            for fingerprint in list(unresolved):
                request = unresolved[fingerprint]
                if fingerprint in store:
                    context.record(
                        fingerprint, store.get(fingerprint), persisted=True
                    )
                    del unresolved[fingerprint]
                    continue
                last = store.audit_log(
                    **_request_context(request)
                ).last(fingerprint)
                if last is not None and last.final:
                    context.fail(fingerprint, last, persisted=True)
                    del unresolved[fingerprint]

        policy = manifest.policy
        supervisor = CampaignSupervisor(store.directory, policy)
        unresolved = dict(context.pending)
        while unresolved:
            sweep(unresolved)
            if not unresolved:
                break
            if (
                policy.circuit_enabled
                and supervisor.circuit_state() == CIRCUIT_OPEN
            ):
                # the shared breaker tripped: abort the campaign instead of
                # burning the remaining grid (workers are shut down by the
                # caller's finally block; the store keeps what finished)
                raise CircuitOpenError(
                    f"campaign circuit breaker is open (failure rate over "
                    f"the last {policy.circuit_window} cells reached "
                    f"{policy.circuit_threshold:g}); {len(unresolved)} "
                    f"cell(s) left unexecuted"
                )
            if all(process.poll() is not None for process in workers):
                # one final sweep so results stored right before the last
                # worker exited are not missed
                sweep(unresolved)
                if unresolved:
                    raise RuntimeError(
                        f"all pull workers exited with {len(unresolved)} "
                        f"campaign cell(s) unresolved: "
                        f"{sorted(unresolved)[:5]}"
                    )
                break
            time.sleep(min(0.2, manifest.poll_s))


# ---------------------------------------------------------------------- registry

#: String-keyed registry of campaign executors; ``EXECUTORS.create(name)``
#: returns a fresh executor instance.  Register custom executors with
#: ``EXECUTORS.register("my-executor", MyExecutor)``.
EXECUTORS = Registry(
    "campaign executor",
    {
        SerialExecutor.name: SerialExecutor,
        ProcessPoolCampaignExecutor.name: ProcessPoolCampaignExecutor,
        AsyncioSubprocessExecutor.name: AsyncioSubprocessExecutor,
        PullWorkerExecutor.name: PullWorkerExecutor,
    },
)


def resolve_executor(
    executor: Optional[Any], workers: int
) -> CampaignExecutor:
    """Turn ``run_campaign``'s ``executor=`` argument into an instance.

    ``None`` keeps the historical behaviour: ``serial`` for ``workers <= 1``,
    ``process-pool`` otherwise.  Strings resolve through :data:`EXECUTORS`;
    instances pass through untouched.
    """
    if executor is None:
        executor = "serial" if workers <= 1 else "process-pool"
    if isinstance(executor, str):
        return EXECUTORS.create(executor)
    if isinstance(executor, CampaignExecutor):
        return executor
    raise TypeError(
        f"executor must be None, a registry name or a CampaignExecutor, "
        f"got {type(executor)!r}"
    )
