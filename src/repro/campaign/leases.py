"""Crash-safe cell leases for pull workers.

A campaign cell must be executed by **at most one** worker at a time, even
when the workers are independent processes (possibly on different machines)
sharing nothing but a directory.  The coordination primitive is a *lease
file*: ``leases/<fingerprint>.lease`` created with ``O_CREAT | O_EXCL`` —
an atomic create-if-absent on every POSIX filesystem (including NFSv3+) —
holding a small JSON payload naming the holder and its last heartbeat.

Protocol
--------
1. **Claim** — try to create the lease file exclusively.  Success means the
   cell is yours; ``FileExistsError`` means another worker holds it.
2. **Heartbeat** — while executing, periodically rewrite the payload
   (temp file + ``os.replace``, so readers never see a torn payload) with a
   fresh timestamp.  :class:`heartbeat` runs this on a daemon thread.
3. **Reclaim** — a lease whose heartbeat is older than the TTL belongs to a
   crashed (or wedged) peer.  Any worker may break it: re-read, re-check
   expiry, unlink, then race through step 1 again.  Losing the race is
   fine — *someone* owns the cell afterwards.
4. **Release** — unlink the file after the outcome is stored (or the
   failure audited).

Idempotence lives one level up: a worker that wins a reclaimed lease first
re-checks the store and treats an already-stored fingerprint as a no-op, so
the worst case of every race is a duplicate *check*, never a duplicate
*record* (and the sharded store resolves even a true double-append
latest-wins).  Leases are best-effort mutual exclusion for efficiency; the
store's append discipline is what guarantees integrity.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Subdirectory (inside a store directory) holding the lease files.
LEASES_DIRNAME = "leases"

#: Default seconds without a heartbeat before a lease counts as expired.
DEFAULT_TTL_S = 30.0


@dataclass(frozen=True)
class Lease:
    """A successfully claimed (or observed) lease."""

    fingerprint: str
    worker: str
    acquired_at: float
    heartbeat_at: float
    #: How many times this cell's lease was broken from a dead peer before
    #: the current holder claimed it.
    reclaims: int = 0

    def age_s(self, now: Optional[float] = None) -> float:
        """Seconds since the last heartbeat."""
        return (time.time() if now is None else now) - self.heartbeat_at

    def expired(self, ttl_s: float, now: Optional[float] = None) -> bool:
        """Whether the holder has missed its heartbeat window."""
        return self.age_s(now) > ttl_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "worker": self.worker,
            "acquired_at": self.acquired_at,
            "heartbeat_at": self.heartbeat_at,
            "reclaims": self.reclaims,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Lease":
        return cls(
            fingerprint=str(data.get("fingerprint", "")),
            worker=str(data.get("worker", "?")),
            acquired_at=float(data.get("acquired_at", 0.0)),
            heartbeat_at=float(data.get("heartbeat_at", 0.0)),
            reclaims=int(data.get("reclaims", 0)),
        )


class LeaseBoard:
    """Claim / heartbeat / reclaim / release leases in one directory.

    Parameters
    ----------
    directory:
        The ``leases/`` directory (created on first claim).  By convention
        this lives inside the shared store directory.
    worker:
        Identity written into claimed leases (shown in ``repro report`` and
        audit records).
    ttl_s:
        Heartbeat freshness window; a lease older than this is reclaimable.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        worker: str,
        *,
        ttl_s: float = DEFAULT_TTL_S,
    ):
        self.directory = Path(directory)
        self.worker = worker
        self.ttl_s = float(ttl_s)
        if self.ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.lease"

    # ------------------------------------------------------------------ claim
    def claim(self, fingerprint: str) -> Optional[Lease]:
        """Try to acquire the lease on one cell.

        Returns the :class:`Lease` on success, ``None`` when another live
        worker holds it.  An *expired* lease (crashed peer) is broken and
        re-raced transparently.
        """
        lease = self._try_create(fingerprint, reclaims=0)
        if lease is not None:
            return lease
        holder = self.holder(fingerprint)
        if holder is None:
            # holder released between our create attempt and read: re-race
            return self._try_create(fingerprint, reclaims=0)
        if not holder.expired(self.ttl_s):
            return None
        return self._reclaim(fingerprint, holder)

    def _try_create(self, fingerprint: str, reclaims: int) -> Optional[Lease]:
        self.directory.mkdir(parents=True, exist_ok=True)
        now = time.time()
        lease = Lease(
            fingerprint=fingerprint,
            worker=self.worker,
            acquired_at=now,
            heartbeat_at=now,
            reclaims=reclaims,
        )
        try:
            fd = os.open(
                str(self._path(fingerprint)),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                0o644,
            )
        except FileExistsError:
            return None
        try:
            os.write(fd, json.dumps(lease.to_dict()).encode("utf-8"))
        finally:
            os.close(fd)
        return lease

    def _reclaim(self, fingerprint: str, stale: Lease) -> Optional[Lease]:
        """Break an expired lease and race for the replacement."""
        current = self.holder(fingerprint)
        if current is None:
            return self._try_create(fingerprint, reclaims=stale.reclaims + 1)
        if current.heartbeat_at != stale.heartbeat_at or not current.expired(
            self.ttl_s
        ):
            return None  # holder heartbeat (or a new holder) — still live
        try:
            os.unlink(self._path(fingerprint))
        except FileNotFoundError:
            pass  # another reclaimer beat us to the unlink; race on
        return self._try_create(fingerprint, reclaims=current.reclaims + 1)

    # ------------------------------------------------------------------ observe
    def holder(self, fingerprint: str) -> Optional[Lease]:
        """Read the current lease of a cell, ``None`` when unleased.

        Tolerant of the claim/heartbeat races: a lease file that vanishes
        or is momentarily empty mid-rewrite reads as ``None``/retry.
        """
        path = self._path(fingerprint)
        for _ in range(3):
            try:
                raw = path.read_text(encoding="utf-8")
            except FileNotFoundError:
                return None
            except OSError:
                return None
            if raw.strip():
                try:
                    return Lease.from_dict(json.loads(raw))
                except ValueError:
                    pass
            time.sleep(0.01)  # writer mid-create; payload lands shortly
        return None

    def active(self) -> List[Lease]:
        """Every currently readable lease on the board."""
        if not self.directory.is_dir():
            return []
        leases = []
        for path in sorted(self.directory.glob("*.lease")):
            lease = self.holder(path.stem)
            if lease is not None:
                leases.append(lease)
        return leases

    # ------------------------------------------------------------------ maintain
    def heartbeat(self, lease: Lease) -> Lease:
        """Refresh a held lease's timestamp (temp file + atomic replace)."""
        refreshed = Lease(
            fingerprint=lease.fingerprint,
            worker=lease.worker,
            acquired_at=lease.acquired_at,
            heartbeat_at=time.time(),
            reclaims=lease.reclaims,
        )
        path = self._path(lease.fingerprint)
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(refreshed.to_dict()), encoding="utf-8")
        os.replace(tmp, path)
        return refreshed

    def release(self, lease: Lease) -> None:
        """Drop a held lease (idempotent)."""
        try:
            os.unlink(self._path(lease.fingerprint))
        except FileNotFoundError:
            pass


class heartbeat:
    """Context manager heart-beating one lease on a daemon thread.

    >>> board = LeaseBoard(directory, "w0", ttl_s=30.0)
    >>> lease = board.claim(fingerprint)
    >>> with heartbeat(board, lease):
    ...     outcome = run_search(request)          # doctest: +SKIP

    The interval defaults to a third of the board TTL, so a healthy worker
    refreshes its lease three times per expiry window.
    """

    def __init__(
        self,
        board: LeaseBoard,
        lease: Lease,
        interval_s: Optional[float] = None,
    ):
        self.board = board
        self.lease = lease
        self.interval_s = (
            float(interval_s) if interval_s is not None else board.ttl_s / 3.0
        )
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _run(self) -> None:
        lease = self.lease
        while not self._stop.wait(self.interval_s):
            try:
                lease = self.board.heartbeat(lease)
            except OSError:  # pragma: no cover - transient FS hiccup
                continue
        self.lease = lease

    def __enter__(self) -> "heartbeat":
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{self.lease.fingerprint}", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(1.0, self.interval_s * 2))
