"""Campaign supervision: deadlines, dead-lettering and circuit breaking.

PR 6's pull protocol makes a campaign *survive* worker crashes; this module
makes it *converge* under sustained failure.  Three service disciplines,
shared by every executor through one :class:`CampaignPolicy`:

**Enforced per-cell deadlines** (:func:`deadline`)
    ``cell_timeout_s > 0`` runs each cell under a watchdog that interrupts
    the overrun with :class:`CellTimeout` — a real :class:`TimeoutError`,
    so it classifies as ``E_TIMEOUT`` and enters the ordinary bounded-retry
    path.  On the main thread the watchdog is ``SIGALRM``-based (interrupts
    even a cell blocked in a system call); elsewhere it falls back to an
    async-raise timer that fires at the next bytecode boundary.

**Poison-cell dead-lettering** (:class:`DeadLetterQueue`)
    A cell that exhausts ``max_attempts`` — or whose lease-reclaim history
    shows it repeatedly *killing* its workers without ever reporting — is
    buried in ``dead-letter.jsonl`` with its full
    :class:`~repro.campaign.errors.ErrorEnvelope` chain.  Buried cells are
    resolved: no worker ever claims them again, so one poison cell cannot
    consume a campaign's worker fleet.  ``repro campaign --retry-dead``
    re-admits them explicitly (an append-only ``readmit`` event, so the
    burial history is never lost).

**Campaign circuit breaker** (:class:`CircuitBreaker` / :class:`CampaignSupervisor`)
    A sliding window over recent cell results opens the circuit when the
    failure rate crosses ``circuit_threshold`` — workers pause claiming and
    the campaign exits with code 4 (:class:`CircuitOpenError`) instead of
    burning the remaining grid against a systematically broken axis.  After
    ``circuit_cooldown_s`` the circuit half-opens, admitting probe cells;
    a probe success closes it, a probe failure re-opens it.  The
    :class:`CampaignSupervisor` persists this state in ``supervisor.json``
    (flock'd read-modify-write, atomic replace) so independent pull-worker
    processes share one breaker.

Everything is **off by default** (``cell_timeout_s=0``,
``circuit_threshold=0``): a campaign that does not opt in behaves — and
stores — byte-identically to one run before this module existed.

See ``docs/distributed.md`` ("Supervision") for the operational guide.
"""

from __future__ import annotations

import ctypes
import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.campaign.errors import ErrorEnvelope
from repro.utils.serialization import append_jsonl_atomic, atomic_write_text

try:  # pragma: no cover - POSIX only; Windows uses the thread fallback
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

#: Name of the dead-letter file inside a store directory.
DEAD_LETTER_FILENAME = "dead-letter.jsonl"

#: Name of the shared supervisor-state file inside a store directory.
SUPERVISOR_FILENAME = "supervisor.json"

#: Circuit states (the classic three-state breaker).
CIRCUIT_CLOSED = "closed"
CIRCUIT_OPEN = "open"
CIRCUIT_HALF_OPEN = "half-open"


class CellTimeout(TimeoutError):
    """A campaign cell exceeded its enforced deadline.

    Subclasses :class:`TimeoutError` so
    :func:`~repro.campaign.errors.classify_error` maps it to ``E_TIMEOUT``
    (retryable) without special-casing.
    """


class CircuitOpenError(RuntimeError):
    """The campaign circuit breaker is open.

    Subclasses :class:`RuntimeError` so callers treating any campaign abort
    uniformly keep working; the CLI maps it to its own exit code (4) ahead
    of the generic RuntimeError mapping (3).
    """


# ---------------------------------------------------------------------- policy


@dataclass(frozen=True)
class CampaignPolicy:
    """Every supervision/retry knob of a campaign, as one value object.

    The pre-existing lease/retry fields mirror what
    :class:`~repro.campaign.manifest.CampaignManifest` carried flat; the
    supervision fields are new and conservative by default — a default
    policy supervises nothing.

    Parameters
    ----------
    ttl_s / poll_s:
        Lease expiry window and idle-poll interval of the worker loop.
    max_attempts / backoff_base_s / max_backoff_s:
        Bounded-retry policy: up to ``max_attempts`` tries per cell with an
        exponential backoff of ``backoff_base_s * 2**(attempt-1)`` seconds,
        clamped to ``max_backoff_s`` (the cap applies after jitter, so no
        retry ever waits longer than the cap).
    cell_timeout_s:
        Enforced per-cell deadline in seconds; ``0`` (default) disables the
        watchdog.  Overruns are killed and audited as ``E_TIMEOUT``.
    on_error:
        ``"fail"`` or ``"continue"`` — what the orchestrator does about
        permanently failed cells; workers always continue past failures.
    checkpoint_every:
        Crash-safe mid-search checkpointing every N evaluations
        (``0`` disables; see ``docs/robustness.md``).
    circuit_window / circuit_threshold / circuit_cooldown_s / circuit_probes:
        Sliding-window circuit breaker: once ``circuit_window`` results are
        in, a failure fraction ``>= circuit_threshold`` opens the circuit.
        ``circuit_threshold=0`` (default) disables the breaker entirely.
        An open circuit half-opens after ``circuit_cooldown_s``, admitting
        ``circuit_probes`` probe cells.
    """

    ttl_s: float = 30.0
    poll_s: float = 0.5
    max_attempts: int = 3
    backoff_base_s: float = 0.5
    max_backoff_s: float = 60.0
    cell_timeout_s: float = 0.0
    on_error: str = "fail"
    checkpoint_every: int = 0
    circuit_window: int = 8
    circuit_threshold: float = 0.0
    circuit_cooldown_s: float = 5.0
    circuit_probes: int = 1

    def __post_init__(self) -> None:
        if self.ttl_s <= 0 or self.poll_s <= 0:
            raise ValueError(
                f"ttl_s/poll_s must be positive, got {self.ttl_s}/{self.poll_s}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.max_backoff_s <= 0:
            raise ValueError(
                f"max_backoff_s must be positive, got {self.max_backoff_s}"
            )
        if self.cell_timeout_s < 0:
            raise ValueError(
                f"cell_timeout_s must be >= 0 (0 disables), got "
                f"{self.cell_timeout_s}"
            )
        if self.on_error not in ("fail", "continue"):
            raise ValueError(
                f"on_error must be 'fail' or 'continue', got {self.on_error!r}"
            )
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.circuit_window < 1:
            raise ValueError(
                f"circuit_window must be >= 1, got {self.circuit_window}"
            )
        if not 0.0 <= self.circuit_threshold <= 1.0:
            raise ValueError(
                f"circuit_threshold must be in [0, 1] (0 disables), got "
                f"{self.circuit_threshold}"
            )
        if self.circuit_cooldown_s < 0:
            raise ValueError(
                f"circuit_cooldown_s must be >= 0, got {self.circuit_cooldown_s}"
            )
        if self.circuit_probes < 1:
            raise ValueError(
                f"circuit_probes must be >= 1, got {self.circuit_probes}"
            )

    @property
    def circuit_enabled(self) -> bool:
        """Whether the breaker can ever open under this policy."""
        return self.circuit_threshold > 0.0

    def replace(self, **changes: Any) -> "CampaignPolicy":
        """Copy with the given fields changed."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ttl_s": self.ttl_s,
            "poll_s": self.poll_s,
            "max_attempts": self.max_attempts,
            "backoff_base_s": self.backoff_base_s,
            "max_backoff_s": self.max_backoff_s,
            "cell_timeout_s": self.cell_timeout_s,
            "on_error": self.on_error,
            "checkpoint_every": self.checkpoint_every,
            "circuit_window": self.circuit_window,
            "circuit_threshold": self.circuit_threshold,
            "circuit_cooldown_s": self.circuit_cooldown_s,
            "circuit_probes": self.circuit_probes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignPolicy":
        defaults = cls()
        kwargs: Dict[str, Any] = {}
        for name, default in defaults.to_dict().items():
            value = data.get(name, default)
            if isinstance(default, bool):  # pragma: no cover - none today
                kwargs[name] = bool(value)
            elif isinstance(default, int):
                kwargs[name] = int(value)
            elif isinstance(default, float):
                kwargs[name] = float(value)
            else:
                kwargs[name] = str(value)
        return cls(**kwargs)


# ---------------------------------------------------------------------- deadline


def _async_raise(thread_id: int, exc_type: type) -> None:
    """Raise ``exc_type`` asynchronously in the thread ``thread_id``."""
    ctypes.pythonapi.PyThreadState_SetAsyncExc(
        ctypes.c_long(thread_id), ctypes.py_object(exc_type)
    )


@contextmanager
def deadline(seconds: float) -> Iterator[None]:
    """Run a block under an enforced wall-clock deadline.

    ``seconds <= 0`` disables the watchdog (zero-overhead no-op).  On
    overrun the block is interrupted with :class:`CellTimeout`.

    Two mechanisms, picked automatically:

    * **main thread, POSIX** — ``signal.setitimer(ITIMER_REAL)`` +
      ``SIGALRM``; interrupts blocking system calls (``time.sleep``, I/O)
      immediately.  This is the path worker processes take: ``repro
      worker`` runs its pull loop on the main thread.
    * **other threads / platforms without SIGALRM** — a daemon
      :class:`threading.Timer` async-raises :class:`CellTimeout` into the
      calling thread.  The exception lands at the next bytecode boundary,
      so a cell wedged inside a single C call is not interruptible on this
      path (documented limitation; the pull-worker path does not hit it).

    Not reentrant on the signal path (one ``ITIMER_REAL`` per process);
    nested deadlines would clobber each other, which no caller does.
    """
    if not seconds or seconds <= 0:
        yield
        return
    use_signal = hasattr(signal, "SIGALRM") and (
        threading.current_thread() is threading.main_thread()
    )
    if use_signal:
        def _on_alarm(signum: int, frame: Any) -> None:
            raise CellTimeout(f"cell exceeded its {seconds:g}s deadline")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, float(seconds))
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    else:
        target = threading.get_ident()
        timer = threading.Timer(
            float(seconds), _async_raise, args=(target, CellTimeout)
        )
        timer.daemon = True
        timer.start()
        try:
            yield
        finally:
            timer.cancel()


# ---------------------------------------------------------------------- dead letter


class DeadLetterQueue:
    """Append-only record of poisoned cells, next to the store they poisoned.

    ``dead-letter.jsonl`` holds ``bury`` and ``readmit`` events in append
    order; the latest event per fingerprint wins, so burial history is
    never rewritten — a re-admitted cell that poisons again simply gains a
    second ``bury`` event.  Appends go through the same single-write
    ``flock`` discipline as the audit log, so concurrent workers burying
    the same cell at once both land whole (and resolve latest-wins).
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.path = self.directory / DEAD_LETTER_FILENAME

    # ------------------------------------------------------------------ events
    def _events(self) -> Iterator[Dict[str, Any]]:
        if not self.path.exists():
            return
        with self.path.open("rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # torn tail — a writer is (or was) mid-append
                try:
                    event = json.loads(raw.decode("utf-8"))
                except ValueError:
                    continue
                if isinstance(event, dict) and event.get("fingerprint"):
                    yield event

    def _latest(self) -> Dict[str, Dict[str, Any]]:
        """``fingerprint -> latest event`` (bury or readmit)."""
        latest: Dict[str, Dict[str, Any]] = {}
        for event in self._events():
            latest[str(event["fingerprint"])] = event
        return latest

    # ------------------------------------------------------------------ writing
    def bury(
        self,
        fingerprint: str,
        *,
        reason: str,
        envelopes: Sequence[ErrorEnvelope] = (),
        worker: Optional[str] = None,
    ) -> None:
        """Move one cell to the dead-letter queue with its failure chain."""
        append_jsonl_atomic(
            self.path,
            {
                "event": "bury",
                "fingerprint": fingerprint,
                "reason": reason,
                "worker": worker,
                "time_s": time.time(),
                "envelopes": [envelope.to_dict() for envelope in envelopes],
            },
        )

    def readmit(self, fingerprint: str) -> bool:
        """Re-admit one buried cell; returns whether it was buried."""
        latest = self._latest().get(fingerprint)
        if latest is None or latest.get("event") != "bury":
            return False
        append_jsonl_atomic(
            self.path,
            {
                "event": "readmit",
                "fingerprint": fingerprint,
                "time_s": time.time(),
            },
        )
        return True

    def readmit_all(self) -> List[str]:
        """Re-admit every buried cell, returning their fingerprints."""
        readmitted = []
        for fingerprint in sorted(self.dead()):
            if self.readmit(fingerprint):
                readmitted.append(fingerprint)
        return readmitted

    # ------------------------------------------------------------------ reading
    def dead(self) -> Dict[str, Dict[str, Any]]:
        """``fingerprint -> bury event`` of every currently buried cell."""
        return {
            fingerprint: event
            for fingerprint, event in self._latest().items()
            if event.get("event") == "bury"
        }

    def is_dead(self, fingerprint: str) -> bool:
        """Whether a cell is currently buried (workers must not claim it)."""
        latest = self._latest().get(fingerprint)
        return latest is not None and latest.get("event") == "bury"

    def readmitted_at(self, fingerprint: str) -> Optional[float]:
        """Time of the cell's latest re-admission, if it is re-admitted.

        Workers use this as the baseline for attempt counting: audit
        records older than the re-admission belong to the previous life of
        the cell and do not count against the fresh retry budget.
        """
        latest = self._latest().get(fingerprint)
        if latest is not None and latest.get("event") == "readmit":
            return float(latest.get("time_s", 0.0))
        return None

    def envelopes(self, fingerprint: str) -> List[ErrorEnvelope]:
        """The failure chain recorded with the cell's latest burial."""
        latest = self._latest().get(fingerprint)
        if latest is None or latest.get("event") != "bury":
            return []
        out = []
        for payload in latest.get("envelopes", []):
            try:
                out.append(ErrorEnvelope.from_dict(payload))
            except (ValueError, KeyError, TypeError):
                continue
        return out

    def __len__(self) -> int:
        return len(self.dead())

    def summary(self) -> Dict[str, Any]:
        dead = self.dead()
        return {
            "dead": len(dead),
            "fingerprints": sorted(dead),
            "reasons": {
                fingerprint: str(event.get("reason", ""))
                for fingerprint, event in sorted(dead.items())
            },
        }


# ---------------------------------------------------------------------- breaker


@dataclass
class CircuitBreaker:
    """Sliding-window failure-rate circuit breaker (pure state machine).

    ``record(success)`` feeds cell results; once the window is full and the
    failure fraction reaches the threshold the breaker **opens**.  After
    ``cooldown_s`` the next :meth:`allows` call **half-opens** it, handing
    out up to ``probes`` probe slots; a probe success **closes** the
    breaker (window cleared), a probe failure re-opens it.

    A threshold of ``0`` disables the breaker: it stays closed forever and
    every method is a cheap constant-time no-op.  The process-shared,
    file-backed version is :class:`CampaignSupervisor`.
    """

    window: int = 8
    threshold: float = 0.0
    cooldown_s: float = 5.0
    probes: int = 1
    state: str = CIRCUIT_CLOSED
    results: List[bool] = field(default_factory=list)
    opened_at: float = 0.0
    probes_out: int = 0
    #: ``(time_s, from_state, to_state)`` history, oldest first.
    transitions: List[Any] = field(default_factory=list)

    @property
    def enabled(self) -> bool:
        return self.threshold > 0.0

    def _transition(self, to_state: str, now: float) -> None:
        self.transitions.append((now, self.state, to_state))
        self.state = to_state

    def failure_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for ok in self.results if not ok) / len(self.results)

    def record(self, success: bool, now: Optional[float] = None) -> str:
        """Feed one cell result; returns the (possibly new) state."""
        if not self.enabled:
            return self.state
        now = time.time() if now is None else now
        if self.state == CIRCUIT_HALF_OPEN:
            self.probes_out = max(0, self.probes_out - 1)
            if success:
                # the probe proved the fault healed: close and start fresh
                self.results.clear()
                self.probes_out = 0
                self._transition(CIRCUIT_CLOSED, now)
            else:
                self.opened_at = now
                self.probes_out = 0
                self._transition(CIRCUIT_OPEN, now)
            return self.state
        self.results.append(bool(success))
        if len(self.results) > self.window:
            del self.results[: len(self.results) - self.window]
        if (
            self.state == CIRCUIT_CLOSED
            and len(self.results) >= self.window
            and self.failure_rate() >= self.threshold
        ):
            self.opened_at = now
            self._transition(CIRCUIT_OPEN, now)
        return self.state

    def allows(self, now: Optional[float] = None) -> bool:
        """Whether a worker may claim a cell right now.

        An open breaker past its cooldown half-opens here, and a
        half-open breaker grants at most ``probes`` concurrent slots.
        """
        if not self.enabled or self.state == CIRCUIT_CLOSED:
            return True
        now = time.time() if now is None else now
        if self.state == CIRCUIT_OPEN:
            if now - self.opened_at < self.cooldown_s:
                return False
            self._transition(CIRCUIT_HALF_OPEN, now)
            self.probes_out = 0
        if self.probes_out < self.probes:
            self.probes_out += 1
            return True
        return False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "window": self.window,
            "threshold": self.threshold,
            "cooldown_s": self.cooldown_s,
            "probes": self.probes,
            "state": self.state,
            "results": list(self.results),
            "opened_at": self.opened_at,
            "probes_out": self.probes_out,
            "transitions": [list(t) for t in self.transitions[-50:]],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CircuitBreaker":
        return cls(
            window=int(data.get("window", 8)),
            threshold=float(data.get("threshold", 0.0)),
            cooldown_s=float(data.get("cooldown_s", 5.0)),
            probes=int(data.get("probes", 1)),
            state=str(data.get("state", CIRCUIT_CLOSED)),
            results=[bool(r) for r in data.get("results", [])],
            opened_at=float(data.get("opened_at", 0.0)),
            probes_out=int(data.get("probes_out", 0)),
            transitions=[tuple(t) for t in data.get("transitions", [])],
        )


# ---------------------------------------------------------------------- supervisor


class CampaignSupervisor:
    """File-backed supervision state shared by every process of a campaign.

    Persists a :class:`CircuitBreaker` plus counters (timeout kills) in
    ``supervisor.json`` inside the store directory.  Every mutation is a
    read-modify-write under an exclusive ``flock`` on a sidecar lock file,
    finished with an atomic replace, so concurrent pull workers see one
    consistent breaker — the same discipline the lease board and audit log
    already use.

    With the breaker disabled (``circuit_threshold=0``, the default) the
    mutating methods short-circuit without touching the filesystem except
    :meth:`note_timeout_kill`, which is failure-path-only, so the healthy
    path of an unsupervised campaign pays nothing.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        policy: Optional[CampaignPolicy] = None,
    ):
        self.directory = Path(directory)
        self.path = self.directory / SUPERVISOR_FILENAME
        self.policy = policy or CampaignPolicy()
        self._cached_state: Optional[Dict[str, Any]] = None
        self._cache_key: Optional[Any] = None

    # ------------------------------------------------------------------ state I/O
    def _fresh_state(self) -> Dict[str, Any]:
        return {
            "schema_version": 1,
            "circuit": CircuitBreaker(
                window=self.policy.circuit_window,
                threshold=self.policy.circuit_threshold,
                cooldown_s=self.policy.circuit_cooldown_s,
                probes=self.policy.circuit_probes,
            ).to_dict(),
            "timeout_kills": 0,
        }

    def _read_state(self) -> Dict[str, Any]:
        try:
            raw = self.path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return self._fresh_state()
        try:
            state = json.loads(raw)
        except ValueError:
            return self._fresh_state()
        if not isinstance(state, dict) or "circuit" not in state:
            return self._fresh_state()
        return state

    def _read_state_cached(self) -> Dict[str, Any]:
        """Read-only state view, re-parsed only when the file changed.

        Every mutation finishes with an atomic replace, so an unchanged
        ``(mtime_ns, size)`` pair means the cached parse is still current —
        the healthy claim path (breaker closed) pays one ``stat`` instead
        of a read-and-parse per claim.
        """
        try:
            meta = os.stat(self.path)
        except OSError:
            return self._fresh_state()
        key = (meta.st_mtime_ns, meta.st_size)
        if self._cached_state is None or self._cache_key != key:
            self._cached_state = self._read_state()
            self._cache_key = key
        return self._cached_state

    @contextmanager
    def _locked(self) -> Iterator[Dict[str, Any]]:
        """Exclusive read-modify-write of the state file."""
        self.directory.mkdir(parents=True, exist_ok=True)
        lock_path = self.path.with_name(self.path.name + ".lock")
        fd = os.open(str(lock_path), os.O_CREAT | os.O_WRONLY, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            state = self._read_state()
            yield state
            atomic_write_text(
                self.path, json.dumps(state, indent=2, sort_keys=True) + "\n"
            )
        finally:
            if fcntl is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                except OSError:  # pragma: no cover
                    pass
            os.close(fd)

    # ------------------------------------------------------------------ circuit
    def record_result(self, success: bool) -> str:
        """Feed one cell result into the shared breaker; returns its state."""
        if not self.policy.circuit_enabled:
            return CIRCUIT_CLOSED
        if success:
            circuit = self._read_state_cached().get("circuit", {})
            window = int(circuit.get("window", self.policy.circuit_window))
            if (
                str(circuit.get("state", CIRCUIT_CLOSED)) == CIRCUIT_CLOSED
                and circuit.get("results") == [True] * window
            ):
                # steady-state healthy: appending one more success to a
                # window already full of successes is a no-op, so skip the
                # locked read-modify-write entirely.  Racing a concurrent
                # failure only leaves that failure in the window one result
                # longer — erring toward opening, never away from it.
                return CIRCUIT_CLOSED
        with self._locked() as state:
            breaker = CircuitBreaker.from_dict(state["circuit"])
            result = breaker.record(bool(success))
            state["circuit"] = breaker.to_dict()
        return result

    def circuit_allows(self) -> bool:
        """Whether workers may claim cells (may half-open the breaker).

        The healthy path — breaker closed — is a single lock-free state
        read; only a non-closed breaker pays the locked read-modify-write
        (it may transition to half-open and hand out a probe slot).
        """
        if not self.policy.circuit_enabled:
            return True
        circuit = self._read_state_cached().get("circuit", {})
        if str(circuit.get("state", CIRCUIT_CLOSED)) == CIRCUIT_CLOSED:
            return True
        with self._locked() as state:
            breaker = CircuitBreaker.from_dict(state["circuit"])
            allowed = breaker.allows()
            state["circuit"] = breaker.to_dict()
        return allowed

    def release_probe(self) -> None:
        """Return a half-open probe slot whose claim never executed.

        :meth:`circuit_allows` hands a probe slot out *before* the claim;
        when the claim then no-ops (a peer holds the lease, or the cell
        turns out to be stored already) no result will ever be recorded
        against the slot, so it must be returned or the breaker would sit
        half-open with all probes out forever.
        """
        if not self.policy.circuit_enabled:
            return
        circuit = self._read_state_cached().get("circuit", {})
        if str(circuit.get("state", CIRCUIT_CLOSED)) != CIRCUIT_HALF_OPEN:
            return
        with self._locked() as state:
            breaker = CircuitBreaker.from_dict(state["circuit"])
            if breaker.state == CIRCUIT_HALF_OPEN and breaker.probes_out > 0:
                breaker.probes_out -= 1
            state["circuit"] = breaker.to_dict()

    def circuit_state(self) -> str:
        """Current breaker state without mutating anything."""
        if not self.policy.circuit_enabled:
            return CIRCUIT_CLOSED
        circuit = self._read_state_cached().get("circuit", {})
        return str(circuit.get("state", CIRCUIT_CLOSED))

    # ------------------------------------------------------------------ counters
    def note_timeout_kill(self) -> None:
        """Count one watchdog kill (failure path only — never hot)."""
        with self._locked() as state:
            state["timeout_kills"] = int(state.get("timeout_kills", 0)) + 1

    # ------------------------------------------------------------------ summary
    def summary(self) -> Dict[str, Any]:
        """Supervision overview for reports and ``CampaignResult.summary``."""
        state = self._read_state() if self.path.exists() else self._fresh_state()
        circuit = state.get("circuit", {})
        return {
            "circuit_state": (
                str(circuit.get("state", CIRCUIT_CLOSED))
                if self.policy.circuit_enabled
                else "disabled"
            ),
            "circuit_transitions": [
                list(t) for t in circuit.get("transitions", [])
            ],
            "timeout_kills": int(state.get("timeout_kills", 0)),
            "dead_lettered": len(DeadLetterQueue(self.directory)),
        }
