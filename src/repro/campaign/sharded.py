"""Sharded, multi-writer run storage for distributed campaigns.

A :class:`ShardedRunStore` presents the :class:`~repro.campaign.store.RunStore`
read/write interface over *per-(scenario x search-space) shard files*: each
outcome is routed deterministically to ``shards/<key>.jsonl`` by the
scenario and search space its request declares, a merged cross-shard
``index.json`` maps every fingerprint to its shard and byte offset, and a
per-shard audit log under ``audit/`` collects structured
:class:`~repro.campaign.errors.ErrorEnvelope` failure records.

Unlike the single-file store, shards accept **concurrent writers**: every
append is a single ``O_APPEND`` ``os.write`` under an advisory ``flock``,
so records from independent ``repro worker`` processes never interleave on
one machine and land whole.  Because workers hold a lease per fingerprint
(see :mod:`repro.campaign.leases`) the protocol already guarantees at most
one *intentional* writer per cell; the store adds two safety nets for the
crashy tail of that guarantee:

* the shard scanner is *tolerant* — a torn trailing line is simply not yet
  durable, an unparseable line mid-file (a record half-written by a worker
  killed mid-``write``) is skipped and counted, and a duplicate fingerprint
  (a lease reclaimed from a worker that died after appending but before
  releasing) is resolved latest-record-wins ("superseded");
* :meth:`ShardedRunStore.compact` rewrites every shard dropping torn
  tails, dead bytes and superseded records, restoring the pristine
  one-line-one-record invariant.  Run it only while no workers are active.

Reads are paginated (``outcomes(offset=..., limit=...)``) over a
deterministic global order — shards sorted by key, append order within a
shard — and :func:`export_metrics` emits a columnar per-candidate view
(latency / energy / error arrays keyed by scenario, space, strategy and
seed) for analysis pipelines and dashboards.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.api.envelopes import SearchOutcome, request_fingerprint
from repro.campaign.errors import (
    AuditLog,
    ErrorEnvelope,
    append_jsonl_atomic,
    summarize_audit,
)
from repro.campaign.store import (
    INDEX_FILENAME,
    RUNS_FILENAME,
    RunStore,
    StoreError,
    _record_summary,
    atomic_write_text,
    record_crc,
    verify_record_crc,
)
from repro.utils.serialization import to_jsonable

#: Subdirectory holding the per-(scenario x space) shard JSONL files.
SHARDS_DIRNAME = "shards"

#: Subdirectory holding the per-shard audit logs.
AUDIT_DIRNAME = "audit"

#: Marker file identifying a directory as a sharded store.
MARKER_FILENAME = "store.json"

#: Subdirectory where :func:`fsck_store --repair` banishes bad lines.
QUARANTINE_DIRNAME = "quarantine"

#: Hex digits of the shard-key hash suffix (collision guard for slugs).
_SHARD_HASH_LENGTH = 8


def shard_key(scenario: str, search_space: str) -> str:
    """Deterministic shard key of one (scenario, search space) context.

    A readable slug plus a short hash of the exact pair, so two contexts
    whose names slugify identically still land in different shards, and the
    routing is stable across processes, platforms and store reopens.
    """
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", f"{scenario}--{search_space}")
    slug = slug.strip("-") or "shard"
    digest = hashlib.sha256(
        f"{scenario}\x00{search_space}".encode("utf-8")
    ).hexdigest()[:_SHARD_HASH_LENGTH]
    return f"{slug}-{digest}"


@dataclass
class _Shard:
    """In-memory scan state of one shard file."""

    key: str
    path: Path
    #: Byte position up to which the file has been durably parsed; a torn
    #: tail past it is re-examined on the next :meth:`ShardedRunStore.refresh`.
    good_end: int = 0
    #: Unparseable lines skipped by the tolerant scanner.
    corrupt_lines: int = 0
    #: Lines that parsed but failed their CRC32 check (disk rot) — counted,
    #: never indexed, never served; ``fsck_store`` quarantines them.
    crc_mismatches: int = 0
    #: ``fingerprint -> (offset, summary)`` in append order (dict ordering).
    entries: Dict[str, Tuple[int, Dict[str, Any]]] = field(default_factory=dict)
    #: Records replaced by a later append of the same fingerprint.
    superseded: int = 0


class ShardedRunStore:
    """Fingerprint-keyed store sharded by (scenario x search space).

    Parameters
    ----------
    directory:
        Store root; created (with marker) by the first append.  Existing
        shard files are indexed immediately.

    The interface is a superset of :class:`~repro.campaign.store.RunStore`:
    ``append`` / ``get`` / ``__contains__`` / ``__len__`` /
    ``fingerprints`` / ``outcomes`` / ``records`` / ``summary`` behave the
    same, plus :meth:`refresh` (pick up concurrent writers' appends),
    :meth:`compact`, :meth:`export_metrics` and per-shard audit logs.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.shards_dir = self.directory / SHARDS_DIRNAME
        self.audit_dir = self.directory / AUDIT_DIRNAME
        self.index_path = self.directory / INDEX_FILENAME
        self.marker_path = self.directory / MARKER_FILENAME
        self._shards: Dict[str, _Shard] = {}
        #: fingerprint -> shard key (offsets live in the shard entries).
        self._routing: Dict[str, str] = {}
        self._index_dirty = False
        self._index_writes = 0
        self.refresh(full=True)

    # ------------------------------------------------------------------ scanning
    def refresh(self, full: bool = False) -> None:
        """(Re)scan shard files, picking up concurrent writers' appends.

        Incremental by default: each known shard is re-read only past its
        last durable byte, so a refresh inside a polling worker costs the
        new records, not the whole store.  A shard that *shrank* (an
        external :meth:`compact`) triggers a full rescan of that shard.
        """
        if full:
            self._shards.clear()
            self._routing.clear()
        if not self.shards_dir.is_dir():
            return
        for path in sorted(self.shards_dir.glob("*.jsonl")):
            key = path.stem
            shard = self._shards.get(key)
            if shard is None:
                shard = _Shard(key=key, path=path)
                self._shards[key] = shard
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if size < shard.good_end:
                # compacted (or truncated) behind our back — rescan it
                shard.good_end = 0
                shard.corrupt_lines = 0
                shard.crc_mismatches = 0
                shard.superseded = 0
                for fingerprint in list(shard.entries):
                    self._routing.pop(fingerprint, None)
                shard.entries.clear()
            if size > shard.good_end:
                self._scan_shard(shard)

    def _scan_shard(self, shard: _Shard) -> None:
        """Tolerantly parse records from ``good_end`` to the durable end."""
        with shard.path.open("rb") as handle:
            handle.seek(shard.good_end)
            offset = shard.good_end
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # torn tail: not durable (yet) — re-read next time
                try:
                    record = json.loads(raw.decode("utf-8"))
                    fingerprint = str(record["fingerprint"])
                    summary = _record_summary(record)
                except (ValueError, KeyError, UnicodeDecodeError):
                    # a line mangled by a writer killed mid-append; skip it
                    # (compact() drops the dead bytes) but keep scanning —
                    # later records are intact
                    shard.corrupt_lines += 1
                    offset += len(raw)
                    shard.good_end = offset
                    continue
                if not verify_record_crc(record):
                    # parses but the checksum disagrees: disk rot.  Count it
                    # and refuse to index it — a rotten record must never be
                    # served — but keep scanning; fsck quarantines the line.
                    shard.crc_mismatches += 1
                    offset += len(raw)
                    shard.good_end = offset
                    continue
                if fingerprint in shard.entries:
                    shard.superseded += 1
                    shard.entries.pop(fingerprint)  # latest record wins
                previous = self._routing.get(fingerprint)
                if previous is not None and previous != shard.key:
                    raise StoreError(
                        f"fingerprint {fingerprint!r} appears in shards "
                        f"{previous!r} and {shard.key!r}; the store needs "
                        f"manual repair"
                    )
                shard.entries[fingerprint] = (offset, summary)
                self._routing[fingerprint] = shard.key
                offset += len(raw)
                shard.good_end = offset

    # ------------------------------------------------------------------ writing
    def _ensure_marker(self) -> None:
        if not self.marker_path.exists():
            atomic_write_text(
                self.marker_path,
                json.dumps(
                    {"format": "sharded-run-store", "schema_version": 1},
                    indent=2,
                )
                + "\n",
            )

    def append(
        self, outcome: SearchOutcome, fingerprint: Optional[str] = None
    ) -> str:
        """Persist one outcome into its (scenario x space) shard.

        Routing is deterministic: the shard key derives from the outcome's
        scenario and search-space names, so every writer sends the same
        fingerprint to the same file.  Appending a fingerprint this
        instance already sees raises like the single-file store; a racing
        append from a *different* process (a reclaimed lease whose original
        holder silently finished) lands as a superseded duplicate instead,
        resolved latest-wins on scan and dropped by :meth:`compact`.
        """
        fingerprint = fingerprint or request_fingerprint(outcome.request)
        if fingerprint in self._routing:
            raise StoreError(
                f"fingerprint {fingerprint!r} is already stored in {self.directory}"
            )
        record = {"fingerprint": fingerprint, "outcome": to_jsonable(outcome.to_dict())}
        record["crc32"] = record_crc(record)
        summary = _record_summary(record)
        key = shard_key(summary["scenario"], summary["search_space"])
        shard = self._shards.get(key)
        if shard is None:
            shard = _Shard(key=key, path=self.shards_dir / f"{key}.jsonl")
            self._shards[key] = shard
        self._ensure_marker()
        offset = append_jsonl_atomic(shard.path, record)
        if offset == shard.good_end:  # no concurrent append slipped in between
            shard.entries[fingerprint] = (offset, summary)
            shard.good_end = offset + len(
                (json.dumps(record, sort_keys=False) + "\n").encode("utf-8")
            )
            self._routing[fingerprint] = key
        else:
            # another writer appended since our last refresh: rescan the
            # gap so the in-memory view stays consistent
            self._scan_shard(shard)
        self._index_dirty = True
        self._maybe_write_index()
        return fingerprint

    # ------------------------------------------------------------------ index
    def _maybe_write_index(self) -> None:
        # the merged index is derived and purely advisory (every open
        # rescans the shards); refresh it on size doublings per shard count
        total = len(self._routing)
        if total < 64 or total & (total - 1) == 0:  # power of two
            self._write_index()

    def _write_index(self) -> None:
        payload = {
            "schema_version": 1,
            "format": "sharded",
            "shards": {
                shard.key: {
                    "path": f"{SHARDS_DIRNAME}/{shard.key}.jsonl",
                    "records": len(shard.entries),
                    "corrupt_lines": shard.corrupt_lines,
                    "crc_mismatches": shard.crc_mismatches,
                    "superseded": shard.superseded,
                }
                for shard in self._shards.values()
            },
            "records": {
                fingerprint: dict(
                    self._shards[key].entries[fingerprint][1],
                    shard=key,
                    offset=self._shards[key].entries[fingerprint][0],
                )
                for fingerprint, key in self._routing.items()
            },
        }
        atomic_write_text(
            self.index_path,
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )
        self._index_writes += 1
        self._index_dirty = False

    def flush(self) -> None:
        """Persist the merged cross-shard index."""
        if self._index_dirty:
            self._write_index()

    def close(self) -> None:
        """Flush deferred state; the store stays usable afterwards."""
        self.flush()

    def __enter__(self) -> "ShardedRunStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ reading
    def _ordered_entries(self) -> List[Tuple[str, _Shard, int]]:
        """``(fingerprint, shard, offset)`` in deterministic global order."""
        ordered: List[Tuple[str, _Shard, int]] = []
        for key in sorted(self._shards):
            shard = self._shards[key]
            for fingerprint, (offset, _) in shard.entries.items():
                ordered.append((fingerprint, shard, offset))
        return ordered

    def fingerprints(self) -> List[str]:
        """Stored fingerprints — shards in key order, append order within."""
        return [fingerprint for fingerprint, _, _ in self._ordered_entries()]

    def __contains__(self, fingerprint: object) -> bool:
        return isinstance(fingerprint, str) and fingerprint in self._routing

    def __len__(self) -> int:
        return len(self._routing)

    def get(self, fingerprint: str) -> SearchOutcome:
        """Load one stored outcome (O(1) via the shard offset index)."""
        try:
            shard = self._shards[self._routing[fingerprint]]
            offset, _ = shard.entries[fingerprint]
        except KeyError:
            raise KeyError(
                f"fingerprint {fingerprint!r} is not stored in {self.directory}"
            ) from None
        with shard.path.open("rb") as handle:
            handle.seek(offset)
            record = json.loads(handle.readline().decode("utf-8"))
        return SearchOutcome.from_dict(record["outcome"])

    def outcomes(
        self, offset: int = 0, limit: Optional[int] = None
    ) -> Iterator[SearchOutcome]:
        """Stream stored outcomes, paginated over the deterministic order.

        The order — shards sorted by key, append order within each shard —
        is stable across reopens, so ``offset``/``limit`` windows partition
        the store consistently for paginated readers.
        """
        if offset < 0 or (limit is not None and limit < 0):
            raise ValueError(
                f"offset/limit must be non-negative, got {offset}/{limit}"
            )
        entries = self._ordered_entries()
        window = entries[offset:] if limit is None else entries[offset:offset + limit]
        for fingerprint, shard, position in window:
            with shard.path.open("rb") as handle:
                handle.seek(position)
                record = json.loads(handle.readline().decode("utf-8"))
            yield SearchOutcome.from_dict(record["outcome"])

    def records(self) -> Dict[str, Dict[str, Any]]:
        """Fingerprint -> summary mapping, in the deterministic order."""
        out: Dict[str, Dict[str, Any]] = {}
        for fingerprint, shard, _ in self._ordered_entries():
            out[fingerprint] = dict(shard.entries[fingerprint][1])
        return out

    def shard_keys(self) -> List[str]:
        """Sorted keys of every shard currently holding records."""
        return sorted(key for key, shard in self._shards.items() if shard.entries)

    def summary(self) -> Dict[str, Any]:
        """Store overview (used by ``repro list --store`` and reports)."""
        records = self.records()
        audit = summarize_audit(self.audit_records())
        return {
            "directory": str(self.directory),
            "format": "sharded",
            "num_runs": len(records),
            "num_shards": len(self.shard_keys()),
            "scenarios": sorted({r["scenario"] for r in records.values()}),
            "strategies": sorted({r["strategy"] for r in records.values()}),
            "search_spaces": sorted({r["search_space"] for r in records.values()}),
            "total_wall_time_s": sum(r["wall_time_s"] for r in records.values()),
            "superseded": sum(s.superseded for s in self._shards.values()),
            "corrupt_lines": sum(s.corrupt_lines for s in self._shards.values()),
            "crc_mismatches": sum(
                s.crc_mismatches for s in self._shards.values()
            ),
            "dead_letter": _dead_letter_count(self.directory),
            "audit": audit,
        }

    # ------------------------------------------------------------------ audit
    def audit_log(self, scenario: str, search_space: str) -> AuditLog:
        """The audit log of one (scenario x search space) shard."""
        key = shard_key(scenario, search_space)
        return AuditLog(self.audit_dir / f"{key}.jsonl")

    def record_error(
        self,
        envelope: ErrorEnvelope,
        *,
        scenario: Optional[str] = None,
        search_space: Optional[str] = None,
    ) -> None:
        """Append a failure envelope to its shard's audit log.

        Falls back to the envelope's own ``context`` for routing, and to a
        catch-all ``_unrouted`` log when neither names the shard.
        """
        scenario = scenario or envelope.context.get("scenario")
        search_space = search_space or envelope.context.get("search_space")
        if scenario and search_space:
            log = self.audit_log(str(scenario), str(search_space))
        else:
            log = AuditLog(self.audit_dir / "_unrouted.jsonl")
        log.append(envelope)

    def audit_records(self) -> List[ErrorEnvelope]:
        """Every failure envelope across all shard audit logs."""
        records: List[ErrorEnvelope] = []
        if not self.audit_dir.is_dir():
            return records
        for path in sorted(self.audit_dir.glob("*.jsonl")):
            records.extend(AuditLog(path).records())
        return records

    def iter_audit_records(self) -> Iterator[ErrorEnvelope]:
        """Stream failure envelopes across all shard audit logs.

        One record is in memory at a time, so ``repro report`` stays flat
        even over campaigns whose audit logs hold thousands of retries.
        """
        if not self.audit_dir.is_dir():
            return
        for path in sorted(self.audit_dir.glob("*.jsonl")):
            yield from AuditLog(path).iter_records()

    # ------------------------------------------------------------------ maintenance
    def compact(self) -> Dict[str, Any]:
        """Rewrite every shard, dropping torn tails and superseded records.

        Each shard is rebuilt into a temp file (intact latest-wins records
        only, original order) and atomically replaced, so a crash mid-compact
        leaves the old shard untouched.  **Single-writer only**: run while
        no workers are appending.  Returns per-store statistics.
        """
        self.refresh()
        kept = 0
        dropped_superseded = 0
        dropped_corrupt = 0
        dropped_crc = 0
        torn_bytes = 0
        for key in sorted(self._shards):
            shard = self._shards[key]
            dropped_superseded += shard.superseded
            dropped_corrupt += shard.corrupt_lines
            dropped_crc += shard.crc_mismatches
            try:
                size = shard.path.stat().st_size
            except OSError:
                size = shard.good_end
            torn_bytes += max(0, size - shard.good_end)
            lines: List[bytes] = []
            with shard.path.open("rb") as handle:
                for fingerprint, (offset, _) in sorted(
                    shard.entries.items(), key=lambda item: item[1][0]
                ):
                    handle.seek(offset)
                    lines.append(handle.readline())
            tmp = shard.path.with_name(shard.path.name + f".tmp.{os.getpid()}")
            with tmp.open("wb") as handle:
                handle.writelines(lines)
            os.replace(tmp, shard.path)
            kept += len(lines)
        self.refresh(full=True)
        self._write_index()
        return {
            "shards": len(self._shards),
            "kept": kept,
            "dropped_superseded": dropped_superseded,
            "dropped_corrupt_lines": dropped_corrupt,
            "dropped_crc_mismatches": dropped_crc,
            "dropped_torn_bytes": torn_bytes,
        }

    def export_metrics(self) -> Dict[str, Any]:
        """Columnar per-candidate metrics; see :func:`export_metrics`."""
        return export_metrics(self)

    def __repr__(self) -> str:
        return (
            f"ShardedRunStore({str(self.directory)!r}, runs={len(self)}, "
            f"shards={len(self.shard_keys())})"
        )


# ---------------------------------------------------------------------- helpers

AnyRunStore = Union[RunStore, ShardedRunStore]


def is_sharded_store(directory: Union[str, Path]) -> bool:
    """Whether a directory holds (or is marked as) a sharded store."""
    directory = Path(directory)
    if (directory / SHARDS_DIRNAME).is_dir():
        return True
    marker = directory / MARKER_FILENAME
    if marker.exists():
        try:
            return json.loads(marker.read_text(encoding="utf-8")).get(
                "format"
            ) == "sharded-run-store"
        except ValueError:
            return False
    return False


def open_store(
    directory: Union[str, Path], *, sharded: Optional[bool] = None
) -> AnyRunStore:
    """Open a store directory as whichever format it holds.

    ``sharded=None`` auto-detects (marker file or ``shards/`` directory);
    pass ``sharded=True``/``False`` to force the format for a *new*
    directory.  Forcing a format that contradicts existing contents raises.
    """
    directory = Path(directory)
    detected = is_sharded_store(directory)
    if sharded is None:
        return ShardedRunStore(directory) if detected else RunStore(directory)
    if detected and not sharded:
        raise StoreError(
            f"{directory} holds a sharded store; cannot open it single-file"
        )
    if sharded and (directory / "runs.jsonl").exists():
        raise StoreError(
            f"{directory} holds a single-file store; cannot open it sharded "
            f"(use 'repro store merge' to convert)"
        )
    return ShardedRunStore(directory) if sharded else RunStore(directory)


def _dead_letter_count(directory: Union[str, Path]) -> int:
    """Cells currently buried in the store's dead-letter queue."""
    from repro.campaign.supervisor import DeadLetterQueue

    return len(DeadLetterQueue(directory))


def _fsck_file(path: Path) -> Dict[str, Any]:
    """Classify every line of one store data file at the raw-byte level.

    Returns the original raw bytes of each *keepable* line (``intact`` —
    CRC verified — and ``legacy`` — pre-CRC records with nothing to verify)
    plus the bytes to quarantine (``corrupt`` unparseable lines,
    ``crc_mismatch`` rotten records, and a torn unterminated tail).
    Keepable bytes are returned exactly as read, so a repair rewrite is
    byte-identical for every record it preserves.
    """
    counts = {
        "intact": 0,
        "legacy": 0,
        "crc_mismatch": 0,
        "corrupt": 0,
        "torn_bytes": 0,
    }
    keep: List[bytes] = []
    quarantine: List[bytes] = []
    data = path.read_bytes()
    offset = 0
    end = len(data)
    while offset < end:
        newline = data.find(b"\n", offset)
        if newline < 0:
            # unterminated tail: a writer died mid-append (or the write was
            # torn by the kernel).  Offline — which is when fsck runs — that
            # is damage, not work in progress.
            counts["torn_bytes"] = end - offset
            quarantine.append(data[offset:end])
            break
        raw = data[offset : newline + 1]
        offset = newline + 1
        try:
            record = json.loads(raw.decode("utf-8"))
            record["fingerprint"]
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            counts["corrupt"] += 1
            quarantine.append(raw)
            continue
        if "crc32" not in record:
            counts["legacy"] += 1
            keep.append(raw)
        elif verify_record_crc(record):
            counts["intact"] += 1
            keep.append(raw)
        else:
            counts["crc_mismatch"] += 1
            quarantine.append(raw)
    return {"counts": counts, "keep": keep, "quarantine": quarantine}


def fsck_store(
    directory: Union[str, Path], repair: bool = False
) -> Dict[str, Any]:
    """Verify (and optionally repair) the integrity of a store on disk.

    Scans ``runs.jsonl`` and every ``shards/*.jsonl`` file raw, classifying
    each line as *intact* (CRC verified), *legacy* (pre-CRC, nothing to
    verify), *crc_mismatch* (parses, checksum disagrees — disk rot),
    *corrupt* (unparseable) or a *torn* unterminated tail.  ``repro store
    fsck`` is the CLI face of this function.

    With ``repair=True`` every bad line is appended to a sidecar under
    ``quarantine/`` (named after its source file, so nothing is ever
    destroyed), each damaged file is atomically rewritten keeping the
    **original raw bytes** of its intact and legacy lines — byte-identical
    preservation — and the merged index is rebuilt from the repaired files.
    **Single-writer only**: repair while no workers are appending.

    Returns a report with per-file and total counts, ``clean`` (no issues
    found), ``repaired`` and ``quarantined_lines``.
    """
    directory = Path(directory)
    targets: List[Path] = []
    runs_path = directory / RUNS_FILENAME
    if runs_path.exists():
        targets.append(runs_path)
    shards_dir = directory / SHARDS_DIRNAME
    if shards_dir.is_dir():
        targets.extend(sorted(shards_dir.glob("*.jsonl")))
    totals = {
        "intact": 0,
        "legacy": 0,
        "crc_mismatch": 0,
        "corrupt": 0,
        "torn_bytes": 0,
    }
    report: Dict[str, Any] = {
        "directory": str(directory),
        "files": {},
        "repaired": False,
        "quarantined_lines": 0,
    }
    damaged: List[Tuple[Path, Dict[str, Any]]] = []
    for path in targets:
        result = _fsck_file(path)
        relative = path.relative_to(directory).as_posix()
        report["files"][relative] = result["counts"]
        for name in totals:
            totals[name] += result["counts"][name]
        if result["quarantine"]:
            damaged.append((path, result))
    report.update(totals)
    report["clean"] = (
        totals["crc_mismatch"] == 0
        and totals["corrupt"] == 0
        and totals["torn_bytes"] == 0
    )
    if not repair or not damaged:
        return report
    quarantine_dir = directory / QUARANTINE_DIRNAME
    quarantine_dir.mkdir(parents=True, exist_ok=True)
    for path, result in damaged:
        relative = path.relative_to(directory).as_posix()
        sidecar = quarantine_dir / relative.replace("/", "__")
        with sidecar.open("ab") as handle:
            for raw in result["quarantine"]:
                # terminate the torn fragment so the sidecar stays
                # line-oriented across repeated fsck runs
                handle.write(raw if raw.endswith(b"\n") else raw + b"\n")
                report["quarantined_lines"] += 1
        tmp = path.with_name(path.name + f".fsck.{os.getpid()}")
        with tmp.open("wb") as handle:
            handle.writelines(result["keep"])
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    report["repaired"] = True
    report["quarantine_dir"] = str(quarantine_dir)
    # rebuild the merged index from the repaired files
    store = open_store(directory)
    store._write_index()
    return report


def merge_stores(
    sources: Sequence[AnyRunStore], dest: AnyRunStore
) -> Dict[str, int]:
    """Copy every record the destination is missing, keyed by fingerprint.

    Fingerprints already present in ``dest`` are skipped (idempotent —
    re-merging is a no-op), so merging is how single-file stores convert to
    sharded ones and how per-machine stores consolidate.
    """
    merged = 0
    skipped = 0
    for source in sources:
        for fingerprint in source.fingerprints():
            if fingerprint in dest:
                skipped += 1
                continue
            dest.append(source.get(fingerprint), fingerprint=fingerprint)
            merged += 1
    if hasattr(dest, "flush"):
        dest.flush()
    return {"merged": merged, "skipped": skipped}


def export_metrics(store: AnyRunStore) -> Dict[str, Any]:
    """Columnar per-candidate metric arrays from any run store.

    One group per (scenario, search space, strategy, seed) — the campaign
    grid axes — each carrying parallel ``latency_s`` / ``energy_j`` /
    ``error_percent`` arrays over every stored candidate of that cell, in
    evaluation order, plus the contributing fingerprints.  This is the
    analysis/dashboard feed: loading it needs no envelope decoding at all.
    """
    groups: Dict[Tuple[str, str, str, Any], Dict[str, Any]] = {}
    for outcome in store.outcomes():
        request = outcome.request
        key = (
            outcome.scenario.name,
            request.search_space,
            outcome.label,
            request.seed,
        )
        group = groups.get(key)
        if group is None:
            group = groups[key] = {
                "scenario": key[0],
                "search_space": key[1],
                "strategy": key[2],
                "seed": key[3],
                "fingerprints": [],
                "latency_s": [],
                "energy_j": [],
                "error_percent": [],
            }
        group["fingerprints"].append(request_fingerprint(request))
        for candidate in outcome.candidates:
            group["latency_s"].append(float(candidate.latency_s))
            group["energy_j"].append(float(candidate.energy_j))
            group["error_percent"].append(float(candidate.error_percent))
    ordered = [
        groups[key]
        for key in sorted(groups, key=lambda k: tuple(str(part) for part in k))
    ]
    return {
        "schema_version": 1,
        "num_groups": len(ordered),
        "num_candidates": sum(len(g["latency_s"]) for g in ordered),
        "groups": ordered,
    }
