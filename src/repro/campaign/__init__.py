"""repro.campaign — parallel, resumable search campaigns.

A *campaign* runs the same search grid the paper's headline figures are
built from (scenarios x strategies x seeds) as one restartable unit:

* :mod:`repro.campaign.gridspec` — :class:`CampaignSpec`, the declarative
  grid (axes + shared budgets, JSON round-trip);
* :mod:`repro.campaign.store` — :class:`RunStore`, an append-only JSONL
  store of outcomes keyed by request fingerprint, with a derived index;
* :mod:`repro.campaign.runner` — :func:`run_campaign`, which skips cells
  already in the store and fans the rest out over worker processes.

Quickstart::

    from repro.campaign import CampaignSpec, RunStore, run_campaign

    spec = CampaignSpec(
        scenarios=("wifi-3mbps/jetson-tx2-gpu", "lte-3mbps/jetson-tx2-gpu"),
        strategies=("lens", "traditional", "random"),
        seeds=(0, 1),
        num_initial=10, num_iterations=30,
    )
    result = run_campaign(spec, RunStore("runs/paper-grid"), workers=4)
    print(result.summary())   # re-running executes only missing cells

The same machinery is scriptable from the command line; see
``python -m repro campaign --help`` and ``docs/cli.md``.
"""

from repro.campaign.gridspec import CampaignSpec, expand_requests
from repro.campaign.runner import CampaignResult, run_campaign
from repro.campaign.store import RunStore, StoreError

__all__ = [
    "CampaignSpec",
    "expand_requests",
    "CampaignResult",
    "run_campaign",
    "RunStore",
    "StoreError",
]
