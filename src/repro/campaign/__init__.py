"""repro.campaign — a distributed, resumable search-campaign service.

A *campaign* runs the same search grid the paper's headline figures are
built from (scenarios x strategies x seeds) as one restartable unit:

* :mod:`repro.campaign.gridspec` — :class:`CampaignSpec`, the declarative
  grid (axes + shared budgets, JSON round-trip);
* :mod:`repro.campaign.store` — :class:`RunStore`, an append-only JSONL
  store of outcomes keyed by request fingerprint, with a derived index;
* :mod:`repro.campaign.sharded` — :class:`ShardedRunStore`, the same
  interface over per-(scenario x space) shard files safe for concurrent
  writers, plus :func:`open_store` / :func:`merge_stores` /
  :func:`export_metrics`;
* :mod:`repro.campaign.executors` — the :data:`EXECUTORS` registry of
  execution back-ends (``serial`` / ``process-pool`` / ``asyncio`` /
  ``pull-worker``);
* :mod:`repro.campaign.leases` / :mod:`repro.campaign.manifest` /
  :mod:`repro.campaign.worker` — the crash-safe pull protocol behind the
  ``pull-worker`` executor (``repro worker`` on the CLI);
* :mod:`repro.campaign.errors` — :class:`ErrorEnvelope` failure records and
  per-shard audit logs;
* :mod:`repro.campaign.supervisor` — :class:`CampaignPolicy` and the
  supervision subsystem: enforced per-cell deadlines, poison-cell
  dead-lettering and a shared circuit breaker (see ``docs/distributed.md``);
* :mod:`repro.campaign.runner` — :func:`run_campaign`, which skips cells
  already in the store and hands the rest to the chosen executor.

Quickstart::

    from repro.campaign import CampaignSpec, RunStore, run_campaign

    spec = CampaignSpec(
        scenarios=("wifi-3mbps/jetson-tx2-gpu", "lte-3mbps/jetson-tx2-gpu"),
        strategies=("lens", "traditional", "random"),
        seeds=(0, 1),
        num_initial=10, num_iterations=30,
    )
    result = run_campaign(spec, RunStore("runs/paper-grid"), workers=4)
    print(result.summary())   # re-running executes only missing cells

Distributed::

    from repro.campaign import ShardedRunStore, run_campaign

    store = ShardedRunStore("runs/shared")       # multi-writer safe
    run_campaign(spec, store, executor="pull-worker", workers=4)
    # ... or point extra `repro worker --store runs/shared` processes at
    # the same directory from other machines.

The same machinery is scriptable from the command line; see
``python -m repro campaign --help``, ``python -m repro worker --help`` and
``docs/distributed.md``.
"""

from repro.campaign.errors import ERROR_CODES, AuditLog, ErrorEnvelope, summarize_audit
from repro.campaign.executors import EXECUTORS, CampaignExecutor
from repro.campaign.gridspec import CampaignSpec, expand_requests
from repro.campaign.leases import Lease, LeaseBoard
from repro.campaign.manifest import CampaignManifest
from repro.campaign.runner import CampaignResult, CellFailure, run_campaign
from repro.campaign.sharded import (
    ShardedRunStore,
    export_metrics,
    fsck_store,
    merge_stores,
    open_store,
)
from repro.campaign.store import RunStore, StoreError
from repro.campaign.supervisor import (
    CampaignPolicy,
    CampaignSupervisor,
    CellTimeout,
    CircuitBreaker,
    CircuitOpenError,
    DeadLetterQueue,
    deadline,
)
from repro.campaign.worker import WorkerReport, run_worker

__all__ = [
    "CampaignPolicy",
    "CampaignSupervisor",
    "CellTimeout",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadLetterQueue",
    "deadline",
    "fsck_store",
    "CampaignSpec",
    "expand_requests",
    "CampaignResult",
    "CellFailure",
    "run_campaign",
    "RunStore",
    "StoreError",
    "ShardedRunStore",
    "open_store",
    "merge_stores",
    "export_metrics",
    "EXECUTORS",
    "CampaignExecutor",
    "ErrorEnvelope",
    "ERROR_CODES",
    "AuditLog",
    "summarize_audit",
    "Lease",
    "LeaseBoard",
    "CampaignManifest",
    "WorkerReport",
    "run_worker",
]
