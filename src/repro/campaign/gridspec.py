"""Declarative campaign grids: scenarios x search spaces x strategies x seeds.

A :class:`CampaignSpec` names the axes of a campaign (which scenarios, which
search spaces, which strategies, which seeds) plus the per-run budgets
shared by every cell, and
expands into the concrete :class:`~repro.api.envelopes.SearchRequest` list
via :meth:`CampaignSpec.requests`.  Like the envelopes it is plain data:
``to_dict``/``from_dict`` round-trip losslessly and :meth:`CampaignSpec.load`
reads a spec from a JSON file, so a whole campaign is reproducible from one
committed document.

Expansion order is scenario-major (scenario, then search space, then
strategy, then seed) and deterministic, but nothing downstream depends on
it: the runner keys work by request fingerprint, not position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.envelopes import DEFAULT_BATCH_SIZE, SearchRequest, check_schema_version
from repro.api.registry import ACQUISITIONS, SEARCH_SPACES
from repro.api.scenario import SCENARIOS, ScenarioRegistry
from repro.api.session import STRATEGIES
from repro.nn.spaces import DEFAULT_SEARCH_SPACE
from repro.utils.serialization import load_json


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign: a request grid declared as axes plus shared budgets.

    Parameters
    ----------
    scenarios:
        Scenario names, resolved through a
        :class:`~repro.api.scenario.ScenarioRegistry` at run time.
    search_spaces:
        Search-space names from :data:`repro.api.registry.SEARCH_SPACES`;
        every scenario is searched once per space.
    strategies:
        Strategy names from :data:`repro.api.session.STRATEGIES`.
    seeds:
        Master seeds; every scenario x space x strategy cell runs once per
        seed.
    acquisitions:
        Optional acquisition-strategy axis (names from
        :data:`repro.api.registry.ACQUISITIONS`).  When set, every
        scenario x space x strategy cell runs once per acquisition (an
        ablation grid, e.g. ``("epdc", "ts", "random")``); when empty the
        scalar ``acquisition`` budget applies to every cell as before.
    num_initial / num_iterations / candidate_pool_size / acquisition /
    batch_size / predictor_noise_std / predictor_samples_per_type:
        Budgets applied to every generated request (same meaning as on
        :class:`~repro.api.envelopes.SearchRequest`).
    tags:
        Metadata copied onto every request (excluded from fingerprints).
    """

    scenarios: Tuple[str, ...]
    search_spaces: Tuple[str, ...] = (DEFAULT_SEARCH_SPACE,)
    strategies: Tuple[str, ...] = ("lens",)
    seeds: Tuple[Optional[int], ...] = (0,)
    acquisitions: Tuple[str, ...] = ()
    num_initial: int = 10
    num_iterations: int = 50
    candidate_pool_size: int = 128
    acquisition: str = "ts"
    batch_size: int = DEFAULT_BATCH_SIZE
    predictor_noise_std: float = 0.03
    predictor_samples_per_type: int = 200
    tags: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(str(s) for s in self.scenarios))
        object.__setattr__(
            self, "search_spaces", tuple(str(s) for s in self.search_spaces)
        )
        object.__setattr__(self, "strategies", tuple(str(s) for s in self.strategies))
        object.__setattr__(
            self,
            "seeds",
            tuple(None if s is None else int(s) for s in self.seeds),
        )
        object.__setattr__(
            self, "acquisitions", tuple(str(s) for s in self.acquisitions)
        )
        for axis in ("scenarios", "search_spaces", "strategies", "seeds"):
            values = getattr(self, axis)
            if not values:
                raise ValueError(f"campaign {axis} must be non-empty")
            if len(set(values)) != len(values):
                raise ValueError(f"campaign {axis} contain duplicates: {values}")
        # the acquisitions axis is optional, but may not repeat entries
        if len(set(self.acquisitions)) != len(self.acquisitions):
            raise ValueError(
                f"campaign acquisitions contain duplicates: {self.acquisitions}"
            )
        if self.batch_size < 1:
            raise ValueError("campaign batch_size must be >= 1")

    # ------------------------------------------------------------------ expansion
    @property
    def num_cells(self) -> int:
        """Size of the request grid."""
        return (
            len(self.scenarios)
            * len(self.search_spaces)
            * len(self.strategies)
            * len(self.acquisitions or (self.acquisition,))
            * len(self.seeds)
        )

    def requests(self) -> List[SearchRequest]:
        """The full request grid, in deterministic scenario-major order."""
        grid: List[SearchRequest] = []
        for scenario in self.scenarios:
            for search_space in self.search_spaces:
                for strategy in self.strategies:
                    for acquisition in self.acquisitions or (self.acquisition,):
                        for seed in self.seeds:
                            grid.append(
                                SearchRequest(
                                    scenario=scenario,
                                    strategy=strategy,
                                    search_space=search_space,
                                    num_initial=self.num_initial,
                                    num_iterations=self.num_iterations,
                                    candidate_pool_size=self.candidate_pool_size,
                                    acquisition=acquisition,
                                    batch_size=self.batch_size,
                                    predictor_noise_std=self.predictor_noise_std,
                                    predictor_samples_per_type=self.predictor_samples_per_type,
                                    seed=seed,
                                    tags=dict(self.tags),
                                )
                            )
        return grid

    def validate(self, scenarios: Optional[ScenarioRegistry] = None) -> "CampaignSpec":
        """Resolve every axis name eagerly, before any cell runs.

        Raises the registries' suggestion-bearing
        :class:`~repro.api.registry.RegistryError` on the first unknown
        scenario, search-space or strategy name, so a typo fails the
        campaign up front instead of mid-grid (or inside a worker process).
        """
        registry = scenarios or SCENARIOS
        for name in self.scenarios:
            registry.get(name)
        for name in self.search_spaces:
            SEARCH_SPACES.get(name)
        for name in self.strategies:
            STRATEGIES.get(name)
        for name in self.acquisitions or (self.acquisition,):
            ACQUISITIONS.get(name)
        return self

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "schema_version": 1,
            "scenarios": list(self.scenarios),
            "search_spaces": list(self.search_spaces),
            "strategies": list(self.strategies),
            "seeds": list(self.seeds),
            "num_initial": self.num_initial,
            "num_iterations": self.num_iterations,
            "candidate_pool_size": self.candidate_pool_size,
            "acquisition": self.acquisition,
            "predictor_noise_std": self.predictor_noise_std,
            "predictor_samples_per_type": self.predictor_samples_per_type,
            "tags": dict(self.tags),
        }
        # emitted only when set, so specs written before the ablation axis
        # existed round-trip byte-identically
        if self.acquisitions:
            payload["acquisitions"] = list(self.acquisitions)
        if self.batch_size != DEFAULT_BATCH_SIZE:
            payload["batch_size"] = self.batch_size
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        check_schema_version(data, "CampaignSpec")
        known = {
            "schema_version", "scenarios", "search_spaces", "strategies",
            "seeds", "acquisitions", "num_initial", "num_iterations",
            "candidate_pool_size", "acquisition", "batch_size",
            "predictor_noise_std", "predictor_samples_per_type", "tags",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            # a typo'd key would otherwise silently run a different campaign
            raise ValueError(
                f"unknown campaign spec fields {unknown}; "
                f"known fields: {sorted(known)}"
            )
        if "scenarios" not in data:
            raise ValueError("campaign spec must declare 'scenarios'")
        return cls(
            scenarios=tuple(data["scenarios"]),
            search_spaces=tuple(
                data.get("search_spaces", (DEFAULT_SEARCH_SPACE,))
            ),
            strategies=tuple(data.get("strategies", ("lens",))),
            seeds=tuple(data.get("seeds", (0,))),
            acquisitions=tuple(data.get("acquisitions", ())),
            num_initial=int(data.get("num_initial", 10)),
            num_iterations=int(data.get("num_iterations", 50)),
            candidate_pool_size=int(data.get("candidate_pool_size", 128)),
            acquisition=data.get("acquisition", "ts"),
            batch_size=int(data.get("batch_size", DEFAULT_BATCH_SIZE)),
            predictor_noise_std=float(data.get("predictor_noise_std", 0.03)),
            predictor_samples_per_type=int(
                data.get("predictor_samples_per_type", 200)
            ),
            tags=dict(data.get("tags", {})),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Load a spec from a JSON file."""
        return cls.from_dict(load_json(path))


def expand_requests(
    spec: Union[CampaignSpec, Sequence[SearchRequest]]
) -> List[SearchRequest]:
    """Normalise a spec-or-request-list into the concrete request grid."""
    if isinstance(spec, CampaignSpec):
        return spec.requests()
    requests = list(spec)
    for request in requests:
        if not isinstance(request, SearchRequest):
            raise TypeError(
                f"expected a CampaignSpec or SearchRequests, got {type(request)!r}"
            )
    return requests
