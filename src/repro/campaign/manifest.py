"""Shared work manifest for pull workers.

The ``pull-worker`` executor does not *push* cells to workers; it writes a
``manifest.json`` into the shared store directory describing the whole
campaign — every cell keyed by its request fingerprint (the idempotency
key), plus the lease/retry/supervision policy — and workers *pull* from it:
claim a lease on an unresolved fingerprint, execute, append, release,
repeat.  The manifest is the only coordination artifact besides the store
itself, so a worker needs nothing but the store directory path to join a
campaign (from any machine sharing the filesystem).

The policy travels as a :class:`~repro.campaign.supervisor.CampaignPolicy`
(schema v2 nests it under ``"policy"``; the legacy flat v1 keys are still
written *and* read, so old workers and old manifests interoperate both
ways).  The file is written atomically (temp + ``os.replace``), so workers
always read a complete manifest, and re-writing the same campaign is
idempotent — cells are keyed by fingerprint, and fingerprints of
already-stored cells are simply skipped by every worker.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Union

from repro.api.envelopes import SearchRequest, request_fingerprint
from repro.campaign.store import atomic_write_text
from repro.campaign.supervisor import CampaignPolicy

#: Name of the manifest file inside a shared store directory.
MANIFEST_FILENAME = "manifest.json"


@dataclass(frozen=True)
class CampaignManifest:
    """Everything a pull worker needs to execute a campaign.

    Parameters
    ----------
    cells:
        ``fingerprint -> serialized SearchRequest`` for every cell of the
        expanded grid (including already-finished ones — workers skip
        stored fingerprints, which is what makes re-publishing idempotent).
    policy:
        The campaign's :class:`~repro.campaign.supervisor.CampaignPolicy`
        (leases, bounded retry, deadlines, circuit breaker).  The policy
        fields are also readable directly on the manifest (``manifest.ttl_s``
        etc.) for backward compatibility with the flat v1 layout.
    created_at:
        Epoch seconds the manifest was published.
    """

    cells: Dict[str, Dict[str, Any]]
    policy: CampaignPolicy = field(default_factory=CampaignPolicy)
    created_at: float = field(default_factory=time.time)

    # ------------------------------------------------------------------ policy views
    @property
    def ttl_s(self) -> float:
        return self.policy.ttl_s

    @property
    def poll_s(self) -> float:
        return self.policy.poll_s

    @property
    def max_attempts(self) -> int:
        return self.policy.max_attempts

    @property
    def backoff_base_s(self) -> float:
        return self.policy.backoff_base_s

    @property
    def max_backoff_s(self) -> float:
        return self.policy.max_backoff_s

    @property
    def cell_timeout_s(self) -> float:
        return self.policy.cell_timeout_s

    @property
    def on_error(self) -> str:
        return self.policy.on_error

    @property
    def checkpoint_every(self) -> int:
        return self.policy.checkpoint_every

    @classmethod
    def from_requests(
        cls,
        requests: Iterable[SearchRequest],
        policy: Optional[CampaignPolicy] = None,
        **overrides: Any,
    ) -> "CampaignManifest":
        """Build a manifest from expanded grid requests.

        Policy settings come either as a ready
        :class:`~repro.campaign.supervisor.CampaignPolicy` or as flat
        keyword overrides (``ttl_s=10.0, max_attempts=5`` — the historical
        call shape); both at once applies the overrides on top.
        """
        cells = {
            request_fingerprint(request): request.to_dict() for request in requests
        }
        created_at = overrides.pop("created_at", None)
        resolved = policy or CampaignPolicy()
        if overrides:
            resolved = resolved.replace(**overrides)
        kwargs: Dict[str, Any] = {"cells": cells, "policy": resolved}
        if created_at is not None:
            kwargs["created_at"] = float(created_at)
        return cls(**kwargs)

    def requests(self) -> Dict[str, SearchRequest]:
        """Deserialized ``fingerprint -> SearchRequest`` mapping."""
        return {
            fingerprint: SearchRequest.from_dict(payload)
            for fingerprint, payload in self.cells.items()
        }

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        # schema v2: the policy is nested, but the v1 flat keys are written
        # too so a pre-supervision worker can still join this campaign
        payload = {
            "schema_version": 2,
            "cells": dict(self.cells),
            "policy": self.policy.to_dict(),
            "created_at": self.created_at,
        }
        for legacy_key in (
            "ttl_s",
            "poll_s",
            "max_attempts",
            "backoff_base_s",
            "on_error",
            "checkpoint_every",
        ):
            payload[legacy_key] = payload["policy"][legacy_key]
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignManifest":
        if isinstance(data.get("policy"), Mapping):
            policy = CampaignPolicy.from_dict(data["policy"])
        else:
            # v1 manifest: reconstruct the policy from the flat keys (the
            # supervision fields simply take their off-by-default values)
            policy = CampaignPolicy.from_dict(data)
        return cls(
            cells={str(k): dict(v) for k, v in dict(data.get("cells", {})).items()},
            policy=policy,
            created_at=float(data.get("created_at", 0.0)),
        )

    # ------------------------------------------------------------------ file I/O
    def write(self, store_dir: Union[str, Path]) -> Path:
        """Atomically publish the manifest into a store directory."""
        path = Path(store_dir) / MANIFEST_FILENAME
        atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load(cls, store_dir: Union[str, Path]) -> "CampaignManifest":
        """Read the manifest published in a store directory."""
        path = Path(store_dir) / MANIFEST_FILENAME
        if not path.exists():
            raise FileNotFoundError(
                f"no campaign manifest at {path}; publish one with "
                f"'repro campaign --executor pull-worker' first"
            )
        return cls.from_dict(json.loads(path.read_text(encoding="utf-8")))


def backoff_jitter_factor(fingerprint: str, attempt: int) -> float:
    """Deterministic decorrelation factor in ``[0.5, 1.5)`` for one retry.

    Derived from a SHA-256 of ``fingerprint:attempt``, so every worker
    computes the *same* jitter for the same cell and attempt (no shared
    state, no RNG), while different cells failing at the same instant —
    e.g. after a store outage — spread their retries instead of
    thundering back in lockstep.
    """
    digest = hashlib.sha256(f"{fingerprint}:{attempt}".encode("utf-8")).digest()
    unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return 0.5 + unit


def resolve_backoff(
    last_failure_time_s: float,
    attempt: int,
    backoff_base_s: float,
    fingerprint: Union[str, None] = None,
    max_backoff_s: Union[float, None] = None,
) -> float:
    """Epoch time before which a failed cell must not be retried.

    With a ``fingerprint`` the exponential delay is scaled by the cell's
    deterministic :func:`backoff_jitter_factor`; without one (the legacy
    call shape) the delay is exact.  ``max_backoff_s`` caps the final delay
    (after jitter), so high attempt counts wait at most the cap instead of
    growing without bound; ``None`` keeps the historical uncapped shape.
    """
    delay = backoff_base_s * (2 ** max(0, attempt - 1))
    if fingerprint is not None:
        delay *= backoff_jitter_factor(fingerprint, attempt)
    if max_backoff_s is not None:
        delay = min(delay, float(max_backoff_s))
    return last_failure_time_s + delay
