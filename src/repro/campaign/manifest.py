"""Shared work manifest for pull workers.

The ``pull-worker`` executor does not *push* cells to workers; it writes a
``manifest.json`` into the shared store directory describing the whole
campaign — every cell keyed by its request fingerprint (the idempotency
key), plus the lease/retry policy — and workers *pull* from it: claim a
lease on an unresolved fingerprint, execute, append, release, repeat.  The
manifest is the only coordination artifact besides the store itself, so a
worker needs nothing but the store directory path to join a campaign (from
any machine sharing the filesystem).

The file is written atomically (temp + ``os.replace``), so workers always
read a complete manifest, and re-writing the same campaign is idempotent —
cells are keyed by fingerprint, and fingerprints of already-stored cells
are simply skipped by every worker.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Union

from repro.api.envelopes import SearchRequest, request_fingerprint
from repro.campaign.store import atomic_write_text

#: Name of the manifest file inside a shared store directory.
MANIFEST_FILENAME = "manifest.json"


@dataclass(frozen=True)
class CampaignManifest:
    """Everything a pull worker needs to execute a campaign.

    Parameters
    ----------
    cells:
        ``fingerprint -> serialized SearchRequest`` for every cell of the
        expanded grid (including already-finished ones — workers skip
        stored fingerprints, which is what makes re-publishing idempotent).
    ttl_s / poll_s:
        Lease expiry window and idle-poll interval of the worker loop.
    max_attempts / backoff_base_s:
        Bounded-retry policy: a cell is retried while its audit trail shows
        fewer than ``max_attempts`` retryable failures, after an
        exponential backoff of ``backoff_base_s * 2**(attempt-1)`` seconds.
    on_error:
        ``"fail"`` or ``"continue"`` — what the *orchestrator* does about
        permanently failed cells; workers always continue past failures.
    checkpoint_every:
        When positive, workers run each cell with crash-safe checkpointing
        (snapshot every N evaluations under ``<store>/checkpoints/``), so a
        reclaimed cell resumes mid-search instead of restarting from
        evaluation zero.  ``0`` (the default) disables checkpointing.
    created_at:
        Epoch seconds the manifest was published.
    """

    cells: Dict[str, Dict[str, Any]]
    ttl_s: float = 30.0
    poll_s: float = 0.5
    max_attempts: int = 3
    backoff_base_s: float = 0.5
    on_error: str = "fail"
    checkpoint_every: int = 0
    created_at: float = field(default_factory=time.time)

    def __post_init__(self) -> None:
        if self.ttl_s <= 0 or self.poll_s <= 0:
            raise ValueError(
                f"ttl_s/poll_s must be positive, got {self.ttl_s}/{self.poll_s}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.on_error not in ("fail", "continue"):
            raise ValueError(
                f"on_error must be 'fail' or 'continue', got {self.on_error!r}"
            )
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )

    @classmethod
    def from_requests(
        cls, requests: Iterable[SearchRequest], **policy: Any
    ) -> "CampaignManifest":
        """Build a manifest from expanded grid requests."""
        cells = {
            request_fingerprint(request): request.to_dict() for request in requests
        }
        return cls(cells=cells, **policy)

    def requests(self) -> Dict[str, SearchRequest]:
        """Deserialized ``fingerprint -> SearchRequest`` mapping."""
        return {
            fingerprint: SearchRequest.from_dict(payload)
            for fingerprint, payload in self.cells.items()
        }

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": 1,
            "cells": dict(self.cells),
            "ttl_s": self.ttl_s,
            "poll_s": self.poll_s,
            "max_attempts": self.max_attempts,
            "backoff_base_s": self.backoff_base_s,
            "on_error": self.on_error,
            "checkpoint_every": self.checkpoint_every,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignManifest":
        return cls(
            cells={str(k): dict(v) for k, v in dict(data.get("cells", {})).items()},
            ttl_s=float(data.get("ttl_s", 30.0)),
            poll_s=float(data.get("poll_s", 0.5)),
            max_attempts=int(data.get("max_attempts", 3)),
            backoff_base_s=float(data.get("backoff_base_s", 0.5)),
            on_error=str(data.get("on_error", "fail")),
            checkpoint_every=int(data.get("checkpoint_every", 0)),
            created_at=float(data.get("created_at", 0.0)),
        )

    # ------------------------------------------------------------------ file I/O
    def write(self, store_dir: Union[str, Path]) -> Path:
        """Atomically publish the manifest into a store directory."""
        path = Path(store_dir) / MANIFEST_FILENAME
        atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load(cls, store_dir: Union[str, Path]) -> "CampaignManifest":
        """Read the manifest published in a store directory."""
        path = Path(store_dir) / MANIFEST_FILENAME
        if not path.exists():
            raise FileNotFoundError(
                f"no campaign manifest at {path}; publish one with "
                f"'repro campaign --executor pull-worker' first"
            )
        return cls.from_dict(json.loads(path.read_text(encoding="utf-8")))


def backoff_jitter_factor(fingerprint: str, attempt: int) -> float:
    """Deterministic decorrelation factor in ``[0.5, 1.5)`` for one retry.

    Derived from a SHA-256 of ``fingerprint:attempt``, so every worker
    computes the *same* jitter for the same cell and attempt (no shared
    state, no RNG), while different cells failing at the same instant —
    e.g. after a store outage — spread their retries instead of
    thundering back in lockstep.
    """
    digest = hashlib.sha256(f"{fingerprint}:{attempt}".encode("utf-8")).digest()
    unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return 0.5 + unit


def resolve_backoff(
    last_failure_time_s: float,
    attempt: int,
    backoff_base_s: float,
    fingerprint: Union[str, None] = None,
) -> float:
    """Epoch time before which a failed cell must not be retried.

    With a ``fingerprint`` the exponential delay is scaled by the cell's
    deterministic :func:`backoff_jitter_factor`; without one (the legacy
    call shape) the delay is exact.
    """
    delay = backoff_base_s * (2 ** max(0, attempt - 1))
    if fingerprint is not None:
        delay *= backoff_jitter_factor(fingerprint, attempt)
    return last_failure_time_s + delay
