"""Campaign execution: fan a request grid out over worker processes.

:func:`run_campaign` takes a :class:`~repro.campaign.gridspec.CampaignSpec`
(or an explicit request list) and a :class:`~repro.campaign.store.RunStore`,
skips every cell whose fingerprint the store already holds (*resume*), and
executes the rest — serially in-process for ``workers <= 1``, or via a
:class:`concurrent.futures.ProcessPoolExecutor` otherwise.  Each finished
:class:`~repro.api.envelopes.SearchOutcome` is appended to the store as soon
as it completes, so an interrupted campaign loses at most the cells that
were in flight.

Parallel execution ships requests to workers in their serialized dict form
and rebuilds outcomes from dicts in the parent, so only plain data crosses
process boundaries.  Workers resolve scenario, search-space and strategy
*names* through their own (freshly imported) default registries; custom
scenarios must therefore be passed inline (a
:class:`~repro.api.scenario.Scenario` object inside the request serializes
fully) or registered at import time.  Custom *search spaces* have no inline
form — a space registered only in the parent script passes ``validate()``
there but raises in every worker, so register custom spaces from a module
workers import (e.g. via :func:`repro.api.registry.register_search_space`
at module level) or run with ``workers=1``.  The serial path uses the
calling process's registries directly.

Results are identical between serial and parallel execution: every run is
seeded through its request, and the engine caches are bit-transparent.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.engine import EvaluationEngine
from repro.api.envelopes import SearchOutcome, SearchRequest, request_fingerprint
from repro.api.scenario import ScenarioRegistry
from repro.api.session import run_search
from repro.campaign.gridspec import CampaignSpec, expand_requests
from repro.campaign.store import RunStore, StoreError
from repro.utils.serialization import to_jsonable

#: Optional ``callback(done_count, total_count, fingerprint, outcome)`` fired
#: after each cell is stored (and once per skipped cell, with ``outcome=None``).
CampaignProgress = Callable[[int, int, str, Optional[SearchOutcome]], None]


@dataclass
class CampaignResult:
    """What one :func:`run_campaign` call did.

    Attributes
    ----------
    store:
        The store every outcome went into.
    executed:
        Fingerprints run by this call, in completion order.
    skipped:
        Fingerprints that were already stored (resume hits), in grid order.
    workers / wall_time_s:
        Execution settings and total duration of the call.
    """

    store: RunStore
    executed: Tuple[str, ...] = ()
    skipped: Tuple[str, ...] = ()
    workers: int = 1
    wall_time_s: float = 0.0

    @property
    def total_cells(self) -> int:
        """Grid size seen by this call (executed + skipped)."""
        return len(self.executed) + len(self.skipped)

    def summary(self) -> Dict[str, Any]:
        """Compact dict form (for logs and the CLI)."""
        return {
            "store": str(self.store.directory),
            "total_cells": self.total_cells,
            "executed": len(self.executed),
            "skipped": len(self.skipped),
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
        }


def _execute_request(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one serialized request, return a plain dict.

    Module-level (picklable) and dict-in/dict-out so it crosses process
    boundaries regardless of start method.  The per-process default engine
    warms up across the cells a worker executes.
    """
    outcome = run_search(SearchRequest.from_dict(payload))
    return to_jsonable(outcome.to_dict())


def _plan(
    spec: Union[CampaignSpec, Sequence[SearchRequest]],
    store: RunStore,
    resume: bool,
) -> Tuple[List[Tuple[str, SearchRequest]], List[str]]:
    """Split the grid into (pending fingerprint/request pairs, skipped)."""
    pending: List[Tuple[str, SearchRequest]] = []
    skipped: List[str] = []
    seen: Dict[str, SearchRequest] = {}
    for request in expand_requests(spec):
        fingerprint = request_fingerprint(request)
        if fingerprint in seen:
            continue  # identical cell declared twice — run it once
        seen[fingerprint] = request
        if fingerprint in store:
            if not resume:
                raise StoreError(
                    f"cell {fingerprint} ({request.scenario_name} x "
                    f"{request.strategy}, seed={request.seed}) is already stored "
                    f"in {store.directory} and resume is disabled"
                )
            skipped.append(fingerprint)
        else:
            pending.append((fingerprint, request))
    return pending, skipped


def run_campaign(
    spec: Union[CampaignSpec, Sequence[SearchRequest]],
    store: Union[RunStore, str, Path],
    *,
    workers: int = 1,
    resume: bool = True,
    scenarios: Optional[ScenarioRegistry] = None,
    engine: Optional[EvaluationEngine] = None,
    progress: Optional[CampaignProgress] = None,
) -> CampaignResult:
    """Execute a campaign grid into a persistent store.

    Parameters
    ----------
    spec:
        A :class:`CampaignSpec` or an explicit request sequence.
    store:
        Target :class:`RunStore` (or its directory path).
    workers:
        ``<= 1`` runs serially in-process; larger values fan cells out over
        that many worker processes.
    resume:
        Skip cells whose fingerprint the store already holds (default).
        ``resume=False`` raises *before any cell runs* if part of the grid
        is already stored, rather than silently duplicating records.
    scenarios:
        Registry used for upfront validation and by the serial path
        (defaults to :data:`repro.api.scenario.SCENARIOS`).
    engine:
        Evaluation engine for the serial path; shared across cells so
        predictors and layer costs are trained once per device.  Ignored by
        worker processes (each keeps its own process-wide engine).
    progress:
        Optional :data:`CampaignProgress` callback.
    """
    if isinstance(store, (str, Path)):
        store = RunStore(store)
    if isinstance(spec, CampaignSpec):
        spec.validate(scenarios)
    start = time.perf_counter()
    pending, skipped = _plan(spec, store, resume)
    total = len(pending) + len(skipped)
    done = 0
    for fingerprint in skipped:
        done += 1
        if progress is not None:
            progress(done, total, fingerprint, None)

    executed: List[str] = []

    def _record(fingerprint: str, outcome: SearchOutcome) -> None:
        nonlocal done
        store.append(outcome, fingerprint=fingerprint)
        executed.append(fingerprint)
        done += 1
        if progress is not None:
            progress(done, total, fingerprint, outcome)

    if workers <= 1:
        for fingerprint, request in pending:
            _record(
                fingerprint,
                run_search(request, scenarios=scenarios, engine=engine),
            )
    elif pending:
        # A failing cell must not discard finished work: successes are
        # recorded as they complete, not-yet-started cells are cancelled on
        # the first failure, in-flight cells are drained and stored, and the
        # first error is re-raised only after everything finished is safe.
        errors: List[Tuple[str, BaseException]] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_request, request.to_dict()): fingerprint
                for fingerprint, request in pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    if future.cancelled():
                        continue
                    fingerprint = futures[future]
                    try:
                        outcome = SearchOutcome.from_dict(future.result())
                    except Exception as error:  # noqa: BLE001 — drain the rest
                        if not errors:
                            for outstanding in remaining:
                                outstanding.cancel()
                        errors.append((fingerprint, error))
                        continue
                    _record(fingerprint, outcome)
        if errors:
            fingerprint, error = errors[0]
            raise RuntimeError(
                f"campaign cell {fingerprint} failed ({len(executed)} finished "
                f"cells were stored; resume re-runs only the rest): {error}"
            ) from error

    return CampaignResult(
        store=store,
        executed=tuple(executed),
        skipped=tuple(skipped),
        workers=max(1, int(workers)),
        wall_time_s=time.perf_counter() - start,
    )
