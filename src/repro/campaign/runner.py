"""Campaign execution: plan the grid, delegate to a pluggable executor.

:func:`run_campaign` takes a :class:`~repro.campaign.gridspec.CampaignSpec`
(or an explicit request list) and a run store, skips every cell whose
fingerprint the store already holds (*resume*), and hands the rest to a
:class:`~repro.campaign.executors.CampaignExecutor` resolved by name
through :data:`~repro.campaign.executors.EXECUTORS`:

* ``serial`` — in-process, one shared engine (default for ``workers <= 1``);
* ``process-pool`` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out (default for ``workers > 1``);
* ``asyncio`` — one fresh subprocess per cell under a concurrency limit;
* ``pull-worker`` — N independent ``repro worker`` processes pulling from a
  shared :class:`~repro.campaign.sharded.ShardedRunStore` through the
  crash-safe lease protocol (see :doc:`docs/distributed`).

Each finished :class:`~repro.api.envelopes.SearchOutcome` is appended to
the store as soon as it completes, so an interrupted campaign loses at
most the cells that were in flight.  Failures become structured
:class:`~repro.campaign.errors.ErrorEnvelope` audit records; under the
default ``on_error="fail"`` the first failure stops the campaign (finished
cells stay stored for resume), while ``on_error="continue"`` records the
envelope and keeps going, surfacing failed-cell counts in
:meth:`CampaignResult.summary`.

Out-of-process executors ship requests to workers in their serialized dict
form and rebuild outcomes from dicts in the parent, so only plain data
crosses process boundaries.  Workers resolve scenario, search-space and
strategy *names* through their own (freshly imported) default registries;
custom scenarios must therefore be passed inline (a
:class:`~repro.api.scenario.Scenario` object inside the request serializes
fully) or registered at import time.  Custom *search spaces* have no inline
form — a space registered only in the parent script passes ``validate()``
there but raises in every worker, so register custom spaces from a module
workers import (e.g. via :func:`repro.api.registry.register_search_space`
at module level) or run with the ``serial`` executor.

Results are identical across executors: every run is seeded through its
request, and the engine caches are bit-transparent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.engine import EvaluationEngine
from repro.api.envelopes import SearchOutcome, SearchRequest, request_fingerprint
from repro.api.scenario import ScenarioRegistry
from repro.campaign.errors import ErrorEnvelope
from repro.campaign.executors import (
    EXECUTORS,
    CampaignExecutor,
    ExecutionContext,
    _execute_request,  # noqa: F401  (re-exported; pickled by older callers)
    resolve_executor,
)
from repro.campaign.gridspec import CampaignSpec, expand_requests
from repro.campaign.sharded import AnyRunStore, open_store
from repro.campaign.store import RunStore, StoreError
from repro.campaign.supervisor import (
    CIRCUIT_OPEN,
    CampaignPolicy,
    CampaignSupervisor,
    CircuitBreaker,
    CircuitOpenError,
)

#: Optional ``callback(done_count, total_count, fingerprint, outcome)`` fired
#: after each cell is stored (and once per skipped cell, with ``outcome=None``).
CampaignProgress = Callable[[int, int, str, Optional[SearchOutcome]], None]


@dataclass(frozen=True)
class CellFailure:
    """One permanently failed campaign cell."""

    fingerprint: str
    envelope: ErrorEnvelope

    def to_dict(self) -> Dict[str, Any]:
        return {"fingerprint": self.fingerprint, "envelope": self.envelope.to_dict()}


@dataclass
class CampaignResult:
    """What one :func:`run_campaign` call did.

    Attributes
    ----------
    store:
        The store every outcome went into.
    executed:
        Fingerprints run by this call, in completion order.
    skipped:
        Fingerprints that were already stored (resume hits), in grid order.
    failed:
        :class:`CellFailure` records of permanently failed cells (only
        non-empty under ``on_error="continue"``).
    workers / executor / wall_time_s:
        Execution settings and total duration of the call.
    timeout_kills / dead_lettered / circuit_state / circuit_transitions:
        Supervision telemetry (see :mod:`repro.campaign.supervisor`):
        cells killed at their enforced deadline, cells moved to the
        dead-letter queue, and the circuit breaker's final state plus its
        ``(time, from, to)`` transition history.  ``circuit_state`` is
        ``"disabled"`` when the policy never enables the breaker, so an
        unsupervised campaign's summary keys are stable.
    """

    store: AnyRunStore
    executed: Tuple[str, ...] = ()
    skipped: Tuple[str, ...] = ()
    failed: Tuple[CellFailure, ...] = ()
    workers: int = 1
    executor: str = "serial"
    wall_time_s: float = 0.0
    timeout_kills: int = 0
    dead_lettered: int = 0
    circuit_state: str = "disabled"
    circuit_transitions: Tuple[Any, ...] = ()

    @property
    def total_cells(self) -> int:
        """Grid size seen by this call (executed + skipped + failed)."""
        return len(self.executed) + len(self.skipped) + len(self.failed)

    def summary(self) -> Dict[str, Any]:
        """Compact dict form (for logs and the CLI)."""
        return {
            "store": str(self.store.directory),
            "total_cells": self.total_cells,
            "executed": len(self.executed),
            "skipped": len(self.skipped),
            "failed": len(self.failed),
            "failed_cells": [failure.fingerprint for failure in self.failed],
            "workers": self.workers,
            "executor": self.executor,
            "wall_time_s": self.wall_time_s,
            "timeout_kills": self.timeout_kills,
            "dead_lettered": self.dead_lettered,
            "circuit_state": self.circuit_state,
            "circuit_transitions": [
                list(t) for t in self.circuit_transitions
            ],
        }


def _plan(
    spec: Union[CampaignSpec, Sequence[SearchRequest]],
    store: AnyRunStore,
    resume: bool,
) -> Tuple[List[Tuple[str, SearchRequest]], List[str]]:
    """Split the grid into (pending fingerprint/request pairs, skipped)."""
    pending: List[Tuple[str, SearchRequest]] = []
    skipped: List[str] = []
    seen: Dict[str, SearchRequest] = {}
    for request in expand_requests(spec):
        fingerprint = request_fingerprint(request)
        if fingerprint in seen:
            continue  # identical cell declared twice — run it once
        seen[fingerprint] = request
        if fingerprint in store:
            if not resume:
                raise StoreError(
                    f"cell {fingerprint} ({request.scenario_name} x "
                    f"{request.strategy}, seed={request.seed}) is already stored "
                    f"in {store.directory} and resume is disabled"
                )
            skipped.append(fingerprint)
        else:
            pending.append((fingerprint, request))
    return pending, skipped


def run_campaign(
    spec: Union[CampaignSpec, Sequence[SearchRequest]],
    store: Union[AnyRunStore, str, Path],
    *,
    workers: int = 1,
    resume: bool = True,
    executor: Optional[Union[str, CampaignExecutor]] = None,
    executor_options: Optional[Dict[str, Any]] = None,
    policy: Optional[CampaignPolicy] = None,
    on_error: str = "fail",
    scenarios: Optional[ScenarioRegistry] = None,
    engine: Optional[EvaluationEngine] = None,
    progress: Optional[CampaignProgress] = None,
) -> CampaignResult:
    """Execute a campaign grid into a persistent store.

    Parameters
    ----------
    spec:
        A :class:`CampaignSpec` or an explicit request sequence.
    store:
        Target store — a :class:`~repro.campaign.store.RunStore`, a
        :class:`~repro.campaign.sharded.ShardedRunStore`, or a directory
        path (auto-detected via :func:`~repro.campaign.sharded.open_store`).
    workers:
        Parallelism degree.  With ``executor=None``, ``<= 1`` runs the
        ``serial`` executor and larger values the ``process-pool`` one.
    resume:
        Skip cells whose fingerprint the store already holds (default).
        ``resume=False`` raises *before any cell runs* if part of the grid
        is already stored, rather than silently duplicating records.
    executor:
        Executor name from :data:`~repro.campaign.executors.EXECUTORS`
        (``"serial"``, ``"process-pool"``, ``"asyncio"``,
        ``"pull-worker"``) or an instance; ``None`` picks by ``workers``.
    executor_options:
        Executor-specific settings (e.g. ``ttl_s`` / ``poll_s`` /
        ``max_attempts`` / ``backoff_base_s`` for ``pull-worker``).
    policy:
        Optional :class:`~repro.campaign.supervisor.CampaignPolicy`
        carrying the supervision knobs (enforced cell deadline, retry and
        backoff limits, circuit breaker).  Its fields merge *under* any
        flat ``executor_options`` (explicit options win).  With the
        breaker enabled, a campaign whose sliding-window failure rate
        trips the threshold aborts with
        :class:`~repro.campaign.supervisor.CircuitOpenError` (CLI exit
        code 4); out-of-process supervision (dead-lettering, shared
        breaker state) applies on the ``pull-worker`` executor, while
        in-process executors track the breaker in memory.
    on_error:
        ``"fail"`` (default) stops on the first failed cell and raises
        after draining in-flight work — finished cells stay stored.
        ``"continue"`` records an error envelope in the store's audit log
        and keeps going; failures are reported in the result.
    scenarios:
        Registry used for upfront validation and by the serial path
        (defaults to :data:`repro.api.scenario.SCENARIOS`).
    engine:
        Evaluation engine for the serial path; shared across cells so
        predictors and layer costs are trained once per device.  Ignored by
        out-of-process executors (each worker keeps its own).
    progress:
        Optional :data:`CampaignProgress` callback.
    """
    if on_error not in ("fail", "continue"):
        raise ValueError(
            f"on_error must be 'fail' or 'continue', got {on_error!r}"
        )
    if isinstance(store, (str, Path)):
        store = open_store(store)
    if isinstance(spec, CampaignSpec):
        spec.validate(scenarios)
    resolved = resolve_executor(executor, workers)
    start = time.perf_counter()
    pending, skipped = _plan(spec, store, resume)
    total = len(pending) + len(skipped)
    done = 0
    for fingerprint in skipped:
        done += 1
        if progress is not None:
            progress(done, total, fingerprint, None)

    executed: List[str] = []
    failures: List[CellFailure] = []

    # in-process circuit breaker: pull workers share the file-backed one
    # (via the manifest policy); every other executor feeds this in-memory
    # breaker through the record/fail callbacks below
    breaker: Optional[CircuitBreaker] = None
    if (
        policy is not None
        and policy.circuit_enabled
        and resolved.name != "pull-worker"
    ):
        breaker = CircuitBreaker(
            window=policy.circuit_window,
            threshold=policy.circuit_threshold,
            cooldown_s=policy.circuit_cooldown_s,
            probes=policy.circuit_probes,
        )

    def _trip(success: bool) -> None:
        if breaker is None:
            return
        if breaker.record(success) == CIRCUIT_OPEN:
            raise CircuitOpenError(
                f"campaign circuit breaker is open (failure rate over the "
                f"last {breaker.window} cells reached {breaker.threshold:g})"
            )

    def _record(
        fingerprint: str, outcome: SearchOutcome, persisted: bool = False
    ) -> None:
        nonlocal done
        if not persisted:
            store.append(outcome, fingerprint=fingerprint)
        executed.append(fingerprint)
        done += 1
        if progress is not None:
            progress(done, total, fingerprint, outcome)
        _trip(True)

    def _fail(
        fingerprint: str, envelope: ErrorEnvelope, persisted: bool = False
    ) -> None:
        nonlocal done
        if not persisted:
            store.record_error(envelope, **envelope.context)
        failures.append(CellFailure(fingerprint, envelope))
        done += 1
        _trip(False)

    options = dict(policy.to_dict()) if policy is not None else {}
    options.update(executor_options or {})
    try:
        if pending:
            resolved.run(
                ExecutionContext(
                    pending=pending,
                    store=store,
                    workers=max(1, int(workers)),
                    on_error=on_error,
                    scenarios=scenarios,
                    engine=engine,
                    record=_record,
                    fail=_fail,
                    options=options,
                )
            )
    finally:
        if hasattr(store, "flush"):
            store.flush()
    if failures and on_error == "fail":
        first = failures[0]
        raise RuntimeError(
            f"campaign cell {first.fingerprint} failed ({len(executed)} finished "
            f"cells were stored; resume re-runs only the rest): "
            f"{first.envelope.message}"
        )

    # supervision telemetry: the pull-worker path persists it next to the
    # store; in-process paths derive it from the failures and the breaker
    if resolved.name == "pull-worker":
        supervision = CampaignSupervisor(
            store.directory, policy or CampaignPolicy()
        ).summary()
        timeout_kills = supervision["timeout_kills"]
        dead_lettered = supervision["dead_lettered"]
        circuit_state = supervision["circuit_state"]
        circuit_transitions = tuple(
            tuple(t) for t in supervision["circuit_transitions"]
        )
    else:
        timeout_kills = sum(
            1 for failure in failures if failure.envelope.code == "E_TIMEOUT"
        )
        dead_lettered = 0
        if breaker is not None:
            circuit_state = breaker.state
            circuit_transitions = tuple(breaker.transitions)
        else:
            circuit_state = "disabled"
            circuit_transitions = ()

    return CampaignResult(
        store=store,
        executed=tuple(executed),
        skipped=tuple(skipped),
        failed=tuple(failures),
        workers=max(1, int(workers)),
        executor=resolved.name,
        wall_time_s=time.perf_counter() - start,
        timeout_kills=timeout_kills,
        dead_lettered=dead_lettered,
        circuit_state=circuit_state,
        circuit_transitions=circuit_transitions,
    )
