"""The pull-worker loop: claim, execute, append, release.

A worker is an independent process (``repro worker --store DIR``) that
needs nothing but a shared store directory to join a campaign.  Its loop:

1. load the :class:`~repro.campaign.manifest.CampaignManifest` and open the
   :class:`~repro.campaign.sharded.ShardedRunStore`;
2. each cycle, :meth:`~repro.campaign.sharded.ShardedRunStore.refresh` and
   walk the manifest's unresolved cells — not stored, not permanently
   failed, not inside a retry-backoff window;
3. claim each via the :class:`~repro.campaign.leases.LeaseBoard` (expired
   leases of crashed peers are reclaimed transparently), **re-check the
   store under the lease** (a re-claimed finished cell is a no-op — the
   idempotence guarantee), execute under a heartbeat thread, append the
   outcome, release the lease;
4. failures become :class:`~repro.campaign.errors.ErrorEnvelope` records in
   the per-shard audit log; retryable ones are retried by whichever worker
   gets there after the exponential backoff, up to ``max_attempts``;
5. terminate once every manifest cell is resolved (stored, finally failed,
   or dead-lettered), sleeping ``poll_s`` between fruitless cycles while
   peers hold the remaining leases.

Because every coordination artifact is a file keyed by the request
fingerprint, any number of workers can run against one directory — on one
machine or many — and killing a worker at *any* point loses at most the
cell it was executing, which a peer reclaims one TTL later.

Supervision (see :mod:`repro.campaign.supervisor`) is layered on the same
loop when the manifest's policy opts in: cells execute under an enforced
:func:`~repro.campaign.supervisor.deadline` (overruns killed and audited
as ``E_TIMEOUT``), permanently failed cells — retry budget exhausted, or a
lease-reclaim history showing the cell repeatedly killed its workers — are
buried in the :class:`~repro.campaign.supervisor.DeadLetterQueue` and
never claimed again, and every result feeds the shared circuit breaker,
which pauses claiming while open.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.api.envelopes import SearchRequest
from repro.api.session import run_search
from repro.campaign.errors import ErrorEnvelope
from repro.campaign.leases import LEASES_DIRNAME, LeaseBoard, heartbeat
from repro.campaign.manifest import CampaignManifest, resolve_backoff
from repro.campaign.sharded import ShardedRunStore
from repro.campaign.store import StoreError
from repro.campaign.supervisor import (
    CampaignSupervisor,
    CellTimeout,
    DeadLetterQueue,
    deadline,
)
from repro.resilience.checkpoint import SearchCheckpoint

#: Subdirectory of the shared store holding per-cell search checkpoints
#: (only used when the manifest sets ``checkpoint_every > 0``).
CHECKPOINTS_DIRNAME = "checkpoints"

#: Progress callback: ``(worker_id, event, fingerprint)`` with event one of
#: ``"executed" | "skipped" | "failed" | "reclaimed" | "waiting" |
#: "buried" | "paused"``.
WorkerProgress = Callable[[str, str, str], None]


@dataclass
class WorkerReport:
    """What one worker process did over its lifetime."""

    worker: str
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    reclaimed: int = 0
    cycles: int = 0
    #: Cells this worker killed at their enforced deadline (``E_TIMEOUT``).
    timeout_kills: int = 0
    #: Cells this worker moved to the dead-letter queue.
    dead_lettered: int = 0
    wall_time_s: float = 0.0
    #: Fingerprints this worker personally stored, in completion order.
    fingerprints: List[str] = field(default_factory=list)

    def summary(self) -> Dict[str, Any]:
        return {
            "worker": self.worker,
            "executed": self.executed,
            "skipped": self.skipped,
            "failed": self.failed,
            "reclaimed": self.reclaimed,
            "cycles": self.cycles,
            "timeout_kills": self.timeout_kills,
            "dead_lettered": self.dead_lettered,
            "wall_time_s": self.wall_time_s,
        }


def default_worker_id() -> str:
    """A worker identity unique enough for audit records: host + pid."""
    host = os.uname().nodename if hasattr(os, "uname") else "host"
    return f"{host}-{os.getpid()}"


def _resolved(
    store: ShardedRunStore,
    fingerprint: str,
    request: SearchRequest,
    dead_letters: Optional[DeadLetterQueue] = None,
) -> bool:
    """Whether a cell needs no further work.

    Resolved means stored, dead-lettered, or finally failed — where the
    failure baseline restarts at the cell's latest dead-letter re-admission
    (audit records from a previous life do not keep a re-admitted cell
    resolved).
    """
    if fingerprint in store:
        return True
    since = None
    if dead_letters is not None:
        if dead_letters.is_dead(fingerprint):
            return True
        since = dead_letters.readmitted_at(fingerprint)
    log = store.audit_log(_scenario_name(request), request.search_space)
    last = log.last(fingerprint, since=since)
    return last is not None and last.final


def _scenario_name(request: SearchRequest) -> str:
    scenario = request.scenario
    return scenario if isinstance(scenario, str) else scenario.name


def run_worker(
    store_dir: Union[str, Path],
    *,
    worker_id: Optional[str] = None,
    manifest: Optional[CampaignManifest] = None,
    scenarios: Optional[Any] = None,
    engine: Optional[Any] = None,
    max_cycles: Optional[int] = None,
    progress: Optional[WorkerProgress] = None,
) -> WorkerReport:
    """Run the pull loop against a shared store directory until done.

    Parameters
    ----------
    store_dir:
        Directory holding the sharded store, manifest and lease board.
    worker_id:
        Identity for leases/audit records (default ``<host>-<pid>``).
    manifest:
        Pre-loaded manifest (default: read ``manifest.json`` from the
        directory — the normal path for CLI workers).
    scenarios / engine:
        Optional registry/engine overrides forwarded to ``run_search``
        (in-process callers only; CLI workers use the defaults).
    max_cycles:
        Safety bound on poll cycles (``None`` = run to completion).
    progress:
        Optional ``(worker, event, fingerprint)`` callback.
    """
    store_dir = Path(store_dir)
    worker = worker_id or default_worker_id()
    if manifest is None:
        manifest = CampaignManifest.load(store_dir)
    policy = manifest.policy
    store = ShardedRunStore(store_dir)
    board = LeaseBoard(
        store_dir / LEASES_DIRNAME, worker, ttl_s=manifest.ttl_s
    )
    supervisor = CampaignSupervisor(store_dir, policy)
    dead_letters = DeadLetterQueue(store_dir)
    requests = manifest.requests()
    report = WorkerReport(worker=worker)
    started = time.perf_counter()

    def note(event: str, fingerprint: str) -> None:
        if progress is not None:
            progress(worker, event, fingerprint)

    def bury(
        fingerprint: str,
        request: SearchRequest,
        envelope: ErrorEnvelope,
        reason: str,
        since: Optional[float],
    ) -> None:
        """Dead-letter one cell with its full failure chain."""
        log = store.audit_log(_scenario_name(request), request.search_space)
        chain = list(log.history(fingerprint, since=since))
        if not chain or chain[-1].time_s != envelope.time_s:
            chain.append(envelope)
        dead_letters.bury(
            fingerprint, reason=reason, envelopes=chain, worker=worker
        )
        report.dead_lettered += 1
        note("buried", fingerprint)

    while True:
        report.cycles += 1
        store.refresh()
        progressed = False
        unresolved = 0
        for fingerprint, request in requests.items():
            if _resolved(store, fingerprint, request, dead_letters):
                continue
            unresolved += 1
            since = dead_letters.readmitted_at(fingerprint)
            log = store.audit_log(_scenario_name(request), request.search_space)
            last = log.last(fingerprint, since=since)
            if last is not None:
                ready_at = resolve_backoff(
                    last.time_s,
                    last.attempt,
                    manifest.backoff_base_s,
                    fingerprint=fingerprint,
                    max_backoff_s=policy.max_backoff_s,
                )
                if time.time() < ready_at:
                    continue  # inside the exponential-backoff window
            if not supervisor.circuit_allows():
                # breaker open (pause claiming until it cools down) or
                # half-open with every probe slot already handed out
                note("paused", fingerprint)
                continue
            lease = board.claim(fingerprint)
            if lease is None:
                supervisor.release_probe()
                continue  # a live peer holds it
            if lease.reclaims > 0:
                report.reclaimed += 1
                note("reclaimed", fingerprint)
            try:
                # idempotence: the lease may have been reclaimed from a peer
                # that finished the cell but died before releasing — re-check
                # the store *under the lease* and no-op if so
                store.refresh()
                if fingerprint in store:
                    supervisor.release_probe()
                    report.skipped += 1
                    note("skipped", fingerprint)
                    continue
                attempt = log.attempts(fingerprint, since=since) + 1
                if lease.reclaims >= manifest.max_attempts:
                    # the cell's lease history shows it repeatedly *killing*
                    # workers (claimed, never reported, lease reclaimed) —
                    # a poison cell.  Bury it instead of feeding it another
                    # worker.
                    envelope = ErrorEnvelope(
                        code="E_POISON",
                        message=(
                            f"lease reclaimed {lease.reclaims}x without a "
                            f"result: the cell keeps killing its workers"
                        ),
                        retryable=False,
                        attempt=attempt,
                        final=True,
                        fingerprint=fingerprint,
                        worker=worker,
                        time_s=time.time(),
                        context={
                            "scenario": _scenario_name(request),
                            "search_space": request.search_space,
                            "dead_letter": True,
                            "reclaims": lease.reclaims,
                        },
                    )
                    store.record_error(envelope)
                    bury(
                        fingerprint,
                        request,
                        envelope,
                        f"killed {lease.reclaims} workers (lease reclaims)",
                        since,
                    )
                    supervisor.record_result(False)
                    report.failed += 1
                    progressed = True
                    note("failed", fingerprint)
                    continue
                resilience_kwargs: Dict[str, Any] = {}
                if manifest.checkpoint_every > 0:
                    # crash-safe mode: a reclaimed or retried cell resumes
                    # from its last snapshot instead of evaluation zero
                    resilience_kwargs = {
                        "checkpoint_dir": store_dir / CHECKPOINTS_DIRNAME,
                        "checkpoint_every": manifest.checkpoint_every,
                        "resume": True,
                    }
                try:
                    with heartbeat(board, lease):
                        with deadline(policy.cell_timeout_s):
                            outcome = run_search(
                                request,
                                scenarios=scenarios,
                                engine=engine,
                                **resilience_kwargs,
                            )
                    store.append(outcome, fingerprint=fingerprint)
                    if manifest.checkpoint_every > 0:
                        SearchCheckpoint.discard(
                            store_dir / CHECKPOINTS_DIRNAME, fingerprint
                        )
                except StoreError:
                    # a racing peer stored the cell first — idempotent no-op
                    supervisor.release_probe()
                    report.skipped += 1
                    note("skipped", fingerprint)
                    continue
                except Exception as error:  # noqa: BLE001 - audited, not fatal
                    if isinstance(error, CellTimeout):
                        report.timeout_kills += 1
                        supervisor.note_timeout_kill()
                    envelope = ErrorEnvelope.from_exception(
                        error,
                        attempt=attempt,
                        fingerprint=fingerprint,
                        worker=worker,
                        context={
                            "scenario": _scenario_name(request),
                            "search_space": request.search_space,
                        },
                        max_attempts=manifest.max_attempts,
                    )
                    if envelope.final:
                        # permanently failed — dead-letter it so the burial
                        # reason and full chain survive next to the store
                        envelope = envelope.replace(
                            context=dict(envelope.context, dead_letter=True)
                        )
                        store.record_error(envelope)
                        bury(
                            fingerprint,
                            request,
                            envelope,
                            (
                                f"retry budget exhausted "
                                f"({attempt}/{manifest.max_attempts})"
                                if envelope.retryable
                                else f"non-retryable {envelope.code}"
                            ),
                            since,
                        )
                    else:
                        store.record_error(envelope)
                    supervisor.record_result(False)
                    report.failed += 1
                    progressed = True
                    note("failed", fingerprint)
                    continue
                supervisor.record_result(True)
                report.executed += 1
                report.fingerprints.append(fingerprint)
                progressed = True
                note("executed", fingerprint)
            finally:
                board.release(lease)
        if unresolved == 0:
            break
        if max_cycles is not None and report.cycles >= max_cycles:
            break
        if not progressed:
            # everything unresolved is leased by peers or backing off
            note("waiting", "")
            time.sleep(manifest.poll_s)
    store.flush()
    report.wall_time_s = time.perf_counter() - started
    return report
