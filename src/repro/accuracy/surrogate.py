"""Analytic accuracy surrogate with CIFAR-10-like trends.

Training 300+ sampled architectures on CIFAR-10 for 10 epochs each — the
paper's accuracy-evaluation protocol — is a multi-GPU-day job that cannot run
offline on a CPU.  The NAS experiments therefore use this deterministic
surrogate, which maps a candidate architecture's structural statistics to a
plausible CIFAR-10 test error:

* deeper networks do better, with diminishing returns;
* wider convolutional blocks and larger fully-connected layers help, again
  with diminishing returns;
* moderate kernel sizes work best on 32x32 images (very large kernels waste
  capacity);
* extremely over-parameterised models pay a small penalty (10-epoch budget,
  moderate augmentation);
* a small deterministic "training noise" term, seeded from the architecture
  itself, models run-to-run variation.

The absolute values are synthetic; what matters for reproducing the paper's
search dynamics is that the error landscape responds smoothly and plausibly
to the same architectural knobs the search explores, and that error trades
off against the latency/energy objectives (bigger models are more accurate
but slower and hungrier).  The :class:`~repro.accuracy.trainer.TrainedAccuracyEvaluator`
offers genuine (small-scale) training through the same interface.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

from repro.nn.architecture import Architecture
from repro.utils.validation import require_non_negative


class AccuracyModel:
    """Interface: anything that can estimate a candidate's test error."""

    def error_percent(self, architecture: Architecture) -> float:
        """Estimated test error of the architecture, in percent (0-100)."""
        raise NotImplementedError


class AccuracySurrogate(AccuracyModel):
    """Deterministic analytic stand-in for per-candidate CIFAR-10 training.

    Parameters
    ----------
    base_error:
        Error of a minimal architecture (single thin layer per block).
    noise_std:
        Standard deviation of the architecture-seeded noise term, in percent.
    floor / ceiling:
        Clipping range of the returned error.
    seed_salt:
        Extra string mixed into the per-architecture noise seed, so two
        surrogates with different salts model different "training runs".
    """

    def __init__(
        self,
        base_error: float = 38.0,
        noise_std: float = 1.2,
        floor: float = 8.0,
        ceiling: float = 65.0,
        seed_salt: str = "lens",
    ):
        require_non_negative(noise_std, "noise_std")
        if not floor < ceiling:
            raise ValueError(f"floor ({floor}) must be below ceiling ({ceiling})")
        self.base_error = float(base_error)
        self.noise_std = float(noise_std)
        self.floor = float(floor)
        self.ceiling = float(ceiling)
        self.seed_salt = str(seed_salt)

    # ------------------------------------------------------------------ feature terms
    @staticmethod
    def _statistics(architecture: Architecture) -> Dict[str, float]:
        # 1-D convolutions/poolings drive the same capacity trends as their
        # 2-D counterparts, so both families feed the structural statistics.
        summaries = architecture.summarize()
        conv = [s for s in summaries if s.layer_type in ("conv", "conv1d")]
        fc = [s for s in summaries if s.layer_type == "fc"]
        pools = [s for s in summaries if s.layer_type in ("pool", "pool1d")]
        conv_filters = [s.output_shape[0] for s in conv]
        # The final classifier is always present; hidden FC widths drive capacity.
        hidden_fc_units = [s.output_shape[0] for s in fc[:-1]] or [0]
        kernel_sizes = []
        for spec in architecture.layers:
            if spec.layer_type in ("conv", "conv1d"):
                kernel_sizes.append(spec.kernel_size)
        return {
            "num_conv": float(len(conv)),
            "num_fc": float(len(fc)),
            "num_pool": float(len(pools)),
            "mean_log2_filters": float(np.mean(np.log2(conv_filters))) if conv_filters else 0.0,
            "mean_kernel": float(np.mean(kernel_sizes)) if kernel_sizes else 3.0,
            "mean_log2_fc_units": float(np.mean(np.log2(np.maximum(hidden_fc_units, 1)))),
            "log10_params": float(np.log10(max(architecture.total_params, 1))),
        }

    def _noise(self, architecture: Architecture) -> float:
        digest = hashlib.sha256(
            (self.seed_salt + repr(architecture.to_dict()["layers"])).encode()
        ).digest()
        seed = int.from_bytes(digest[:8], "little")
        rng = np.random.default_rng(seed)
        return float(rng.normal(0.0, self.noise_std))

    # ------------------------------------------------------------------ model
    def error_percent(self, architecture: Architecture) -> float:
        stats = self._statistics(architecture)

        depth_gain = 9.0 * (1.0 - np.exp(-stats["num_conv"] / 6.0))
        width_gain = 7.0 * (
            1.0 - np.exp(-max(stats["mean_log2_filters"] - 4.5, 0.0) / 1.8)
        )
        fc_gain = 4.0 * (
            1.0 - np.exp(-max(stats["mean_log2_fc_units"] - 8.0, 0.0) / 2.5)
        )
        # Moderate kernels (around 5) extract the most from 32x32 images.
        kernel_penalty = 0.8 * abs(stats["mean_kernel"] - 5.0) / 2.0
        # Ten epochs with moderate augmentation: very large models overfit slightly.
        overfit_penalty = 2.5 * max(stats["log10_params"] - 7.6, 0.0)
        # Losing all spatial resolution before the classifier costs a little.
        pooling_penalty = 0.6 * max(stats["num_pool"] - 4.0, 0.0)

        error = (
            self.base_error
            - depth_gain
            - width_gain
            - fc_gain
            + kernel_penalty
            + overfit_penalty
            + pooling_penalty
            + self._noise(architecture)
        )
        return float(np.clip(error, self.floor, self.ceiling))
