"""Executable numpy CNN built from an :class:`~repro.nn.architecture.Architecture`.

The IR layers (:mod:`repro.nn.layers`) describe *what* a network looks like;
this module instantiates actual weight tensors for those descriptions and
runs forward/backward passes with the kernels in
:mod:`repro.accuracy.tensor_ops`.  Batch normalisation recorded in the IR is
folded away (it only matters for training stability of much larger models);
ReLU activations are honoured, and the final softmax layer pairs with the
cross-entropy loss during training.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.accuracy import tensor_ops as ops
from repro.nn.architecture import Architecture
from repro.nn.layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D
from repro.utils.rng import SeedLike, ensure_rng


class _ExecutableLayer:
    """Base class for instantiated layers with parameters and gradients."""

    def __init__(self, name: str):
        self.name = name
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    def forward(self, inputs: np.ndarray, training: bool) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class _ConvLayer(_ExecutableLayer):
    def __init__(self, spec: Conv2D, in_channels: int, rng: np.random.Generator):
        super().__init__(spec.name)
        self.stride = spec.stride
        self.kernel = spec.kernel_size
        self.pad = spec.padding_pixels
        fan_in = in_channels * spec.kernel_size**2
        scale = np.sqrt(2.0 / fan_in)
        self.params["weights"] = rng.normal(
            0.0, scale, size=(spec.out_channels, in_channels, spec.kernel_size, spec.kernel_size)
        )
        self.params["bias"] = np.zeros(spec.out_channels)
        self.activation = spec.activation
        self._cache: Optional[Tuple] = None
        self._relu_mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool) -> np.ndarray:
        output, self._cache = ops.conv2d_forward(
            inputs, self.params["weights"], self.params["bias"], self.stride, self.pad
        )
        if self.activation == "relu":
            output, self._relu_mask = ops.relu_forward(output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.activation == "relu":
            grad_output = ops.relu_backward(grad_output, self._relu_mask)
        grad_input, grad_weights, grad_bias = ops.conv2d_backward(grad_output, self._cache)
        self.grads["weights"] = grad_weights
        self.grads["bias"] = grad_bias
        return grad_input


class _MaxPoolLayer(_ExecutableLayer):
    def __init__(self, spec: MaxPool2D):
        super().__init__(spec.name)
        self.pool_size = spec.pool_size
        self.stride = spec.effective_stride
        self._cache: Optional[Tuple] = None

    def forward(self, inputs: np.ndarray, training: bool) -> np.ndarray:
        output, self._cache = ops.maxpool_forward(inputs, self.pool_size, self.stride)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return ops.maxpool_backward(grad_output, self._cache)


class _FlattenLayer(_ExecutableLayer):
    def __init__(self, spec: Flatten):
        super().__init__(spec.name)
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray, training: bool) -> np.ndarray:
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._input_shape)


class _DenseLayer(_ExecutableLayer):
    def __init__(self, spec: Dense, in_features: int, rng: np.random.Generator):
        super().__init__(spec.name)
        scale = np.sqrt(2.0 / in_features)
        self.params["weights"] = rng.normal(0.0, scale, size=(in_features, spec.units))
        self.params["bias"] = np.zeros(spec.units)
        self.activation = spec.activation
        self._cache: Optional[Tuple] = None
        self._relu_mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool) -> np.ndarray:
        output, self._cache = ops.dense_forward(
            inputs, self.params["weights"], self.params["bias"]
        )
        if self.activation == "relu":
            output, self._relu_mask = ops.relu_forward(output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.activation == "relu":
            grad_output = ops.relu_backward(grad_output, self._relu_mask)
        grad_input, grad_weights, grad_bias = ops.dense_backward(grad_output, self._cache)
        self.grads["weights"] = grad_weights
        self.grads["bias"] = grad_bias
        return grad_input


class _DropoutLayer(_ExecutableLayer):
    def __init__(self, spec: Dropout, rng: np.random.Generator):
        super().__init__(spec.name)
        self.rate = spec.rate
        self._rng = rng
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray, training: bool) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class NumpyCNN:
    """A trainable numpy network instantiated from an architecture IR.

    Parameters
    ----------
    architecture:
        The IR description; its ``input_shape`` defines the expected image
        size (use the accuracy input shape, e.g. CIFAR-like 32x32).
    seed:
        Seed for weight initialisation (and dropout masks).
    """

    def __init__(self, architecture: Architecture, seed: SeedLike = 0):
        self.architecture = architecture
        rng = ensure_rng(seed)
        self.layers: List[_ExecutableLayer] = []
        current_shape = architecture.input_shape
        for spec, summary in zip(architecture.layers, architecture.summarize()):
            if isinstance(spec, Conv2D):
                self.layers.append(_ConvLayer(spec, current_shape[0], rng))
            elif isinstance(spec, MaxPool2D):
                self.layers.append(_MaxPoolLayer(spec))
            elif isinstance(spec, Flatten):
                self.layers.append(_FlattenLayer(spec))
            elif isinstance(spec, Dense):
                in_features = int(np.prod(current_shape))
                self.layers.append(_DenseLayer(spec, in_features, rng))
            elif isinstance(spec, Dropout):
                self.layers.append(_DropoutLayer(spec, rng))
            else:
                raise TypeError(f"unsupported layer type for execution: {type(spec)!r}")
            current_shape = summary.output_shape

    # ------------------------------------------------------------------ execution
    def forward(self, images: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the network and return the raw logits of the final layer."""
        if images.ndim != 4:
            raise ValueError(f"expected a (N, C, H, W) batch, got shape {images.shape}")
        activations = images
        for layer in self.layers:
            activations = layer.forward(activations, training)
        return activations

    def loss_and_gradients(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Forward + backward pass; gradients are stored on each layer."""
        logits = self.forward(images, training=True)
        loss, grad = ops.softmax_cross_entropy(logits, labels)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return loss

    def predict(self, images: np.ndarray, batch_size: int = 64) -> np.ndarray:
        """Predicted class indices for a batch of images."""
        predictions = []
        for start in range(0, images.shape[0], batch_size):
            logits = self.forward(images[start : start + batch_size], training=False)
            predictions.append(np.argmax(logits, axis=1))
        return np.concatenate(predictions)

    def error_rate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Classification error in percent on the given dataset."""
        predictions = self.predict(images)
        return float(np.mean(predictions != labels) * 100.0)

    # ------------------------------------------------------------------ parameters
    def parameters(self) -> List[Tuple[_ExecutableLayer, str]]:
        """(layer, parameter-name) pairs for every trainable tensor."""
        return [
            (layer, name) for layer in self.layers for name in layer.params
        ]

    def num_parameters(self) -> int:
        """Total number of trainable scalars actually instantiated."""
        return sum(
            layer.params[name].size for layer, name in self.parameters()
        )
