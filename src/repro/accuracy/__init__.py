"""Accuracy estimation substrate: numpy CNN training and analytic surrogate."""

from repro.accuracy.dataset import SyntheticImageDataset
from repro.accuracy.network import NumpyCNN
from repro.accuracy.surrogate import AccuracyModel, AccuracySurrogate
from repro.accuracy.trainer import SGDTrainer, TrainedAccuracyEvaluator, TrainingHistory

__all__ = [
    "SyntheticImageDataset",
    "NumpyCNN",
    "AccuracyModel",
    "AccuracySurrogate",
    "SGDTrainer",
    "TrainedAccuracyEvaluator",
    "TrainingHistory",
]
