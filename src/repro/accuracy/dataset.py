"""Synthetic image-classification dataset (CIFAR-10 stand-in).

CIFAR-10 is not available offline, so examples and tests that genuinely train
networks use a synthetic multi-class image dataset instead: each class is
defined by a smooth random prototype pattern, and samples are noisy, slightly
shifted copies of their class prototype.  Small CNNs separate the classes
well above chance within a few epochs, which is all the library needs to
demonstrate the training path end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive


@dataclass
class SyntheticImageDataset:
    """A train/test split of synthetic labelled images.

    Attributes
    ----------
    train_images / train_labels:
        Training split: ``(N, C, H, W)`` float images and ``(N,)`` int labels.
    test_images / test_labels:
        Held-out split with the same layout.
    num_classes:
        Number of distinct classes.
    """

    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray
    num_classes: int

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        """Channels-first shape of a single image."""
        return tuple(self.train_images.shape[1:])

    @property
    def num_train(self) -> int:
        """Number of training samples."""
        return self.train_images.shape[0]

    @property
    def num_test(self) -> int:
        """Number of test samples."""
        return self.test_images.shape[0]

    def batches(
        self, batch_size: int, rng: SeedLike = None, shuffle: bool = True
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate over training mini-batches."""
        require_positive(batch_size, "batch_size")
        indices = np.arange(self.num_train)
        if shuffle:
            ensure_rng(rng).shuffle(indices)
        for start in range(0, self.num_train, batch_size):
            chosen = indices[start : start + batch_size]
            yield self.train_images[chosen], self.train_labels[chosen]

    @classmethod
    def generate(
        cls,
        num_classes: int = 4,
        num_train: int = 240,
        num_test: int = 80,
        image_shape: Tuple[int, int, int] = (3, 16, 16),
        noise_std: float = 0.35,
        seed: SeedLike = 0,
    ) -> "SyntheticImageDataset":
        """Generate a dataset with smooth class prototypes plus noise.

        Parameters
        ----------
        num_classes / num_train / num_test:
            Dataset dimensions; samples are distributed evenly across classes.
        image_shape:
            Channels-first image shape.
        noise_std:
            Standard deviation of the per-pixel Gaussian noise; larger values
            make the task harder.
        """
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        rng = ensure_rng(seed)
        channels, height, width = image_shape

        # Smooth prototypes: low-frequency sinusoidal mixtures per class.
        ys, xs = np.meshgrid(
            np.linspace(0, 1, height), np.linspace(0, 1, width), indexing="ij"
        )
        prototypes = np.zeros((num_classes, channels, height, width))
        for cls_index in range(num_classes):
            for channel in range(channels):
                fx, fy = rng.uniform(1.0, 3.5, size=2)
                phase_x, phase_y = rng.uniform(0, 2 * np.pi, size=2)
                amplitude = rng.uniform(0.6, 1.2)
                prototypes[cls_index, channel] = amplitude * (
                    np.sin(2 * np.pi * fx * xs + phase_x)
                    + np.cos(2 * np.pi * fy * ys + phase_y)
                )

        def make_split(count: int) -> Tuple[np.ndarray, np.ndarray]:
            labels = rng.integers(0, num_classes, size=count)
            images = prototypes[labels] + rng.normal(0.0, noise_std, size=(count, *image_shape))
            return images.astype(np.float64), labels.astype(np.int64)

        train_images, train_labels = make_split(num_train)
        test_images, test_labels = make_split(num_test)
        mean = train_images.mean()
        std = train_images.std() + 1e-8
        train_images = (train_images - mean) / std
        test_images = (test_images - mean) / std
        return cls(
            train_images=train_images,
            train_labels=train_labels,
            test_images=test_images,
            test_labels=test_labels,
            num_classes=num_classes,
        )
