"""Minimal numpy tensor operations for training small CNNs.

The paper trains every sampled architecture for ten epochs on CIFAR-10 using
a GPU framework; offline we provide a from-scratch numpy implementation of
the forward and backward passes of every layer family the search space can
produce (convolution, max pooling, dense, ReLU, softmax cross-entropy).  It
is intended for *small* models and datasets — enough to exercise the full
training path in examples and tests — while the NAS experiments use the
analytic accuracy surrogate (see :mod:`repro.accuracy.surrogate`).

Data layout is channels-first: activations are ``(N, C, H, W)`` arrays.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def im2col(
    images: np.ndarray, kernel: int, stride: int, pad: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold image patches into rows for matrix-multiplication convolution.

    Returns the ``(N * out_h * out_w, C * kernel * kernel)`` patch matrix and
    the output spatial dimensions.
    """
    batch, channels, height, width = images.shape
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError(
            f"kernel {kernel} with stride {stride} and pad {pad} does not fit "
            f"input of spatial size {height}x{width}"
        )
    padded = np.pad(
        images, [(0, 0), (0, 0), (pad, pad), (pad, pad)], mode="constant"
    )
    columns = np.zeros((batch, channels, kernel, kernel, out_h, out_w), dtype=images.dtype)
    for dy in range(kernel):
        y_end = dy + stride * out_h
        for dx in range(kernel):
            x_end = dx + stride * out_w
            columns[:, :, dy, dx, :, :] = padded[:, :, dy:y_end:stride, dx:x_end:stride]
    columns = columns.transpose(0, 4, 5, 1, 2, 3).reshape(batch * out_h * out_w, -1)
    return columns, out_h, out_w


def col2im(
    columns: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold patch-gradient rows back into an image-shaped gradient (im2col adjoint)."""
    batch, channels, height, width = input_shape
    out_h = (height + 2 * pad - kernel) // stride + 1
    out_w = (width + 2 * pad - kernel) // stride + 1
    columns = columns.reshape(batch, out_h, out_w, channels, kernel, kernel)
    columns = columns.transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros(
        (batch, channels, height + 2 * pad, width + 2 * pad), dtype=columns.dtype
    )
    for dy in range(kernel):
        y_end = dy + stride * out_h
        for dx in range(kernel):
            x_end = dx + stride * out_w
            padded[:, :, dy:y_end:stride, dx:x_end:stride] += columns[:, :, dy, dx, :, :]
    if pad == 0:
        return padded
    return padded[:, :, pad : pad + height, pad : pad + width]


def conv2d_forward(
    images: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray,
    stride: int = 1,
    pad: int = 0,
) -> Tuple[np.ndarray, Tuple]:
    """Convolution forward pass.

    ``weights`` has shape ``(out_channels, in_channels, kernel, kernel)``.
    Returns the output and a cache for the backward pass.
    """
    out_channels, _, kernel, _ = weights.shape
    columns, out_h, out_w = im2col(images, kernel, stride, pad)
    weight_matrix = weights.reshape(out_channels, -1).T
    output = columns @ weight_matrix + bias
    batch = images.shape[0]
    output = output.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
    cache = (images.shape, columns, weights, stride, pad)
    return output, cache


def conv2d_backward(
    grad_output: np.ndarray, cache: Tuple
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convolution backward pass.

    Returns gradients with respect to the input, the weights and the bias.
    """
    input_shape, columns, weights, stride, pad = cache
    out_channels = weights.shape[0]
    kernel = weights.shape[2]
    grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, out_channels)
    grad_bias = grad_flat.sum(axis=0)
    grad_weights = (columns.T @ grad_flat).T.reshape(weights.shape)
    grad_columns = grad_flat @ weights.reshape(out_channels, -1)
    grad_input = col2im(grad_columns, input_shape, kernel, stride, pad)
    return grad_input, grad_weights, grad_bias


def maxpool_forward(
    images: np.ndarray, pool_size: int, stride: int
) -> Tuple[np.ndarray, Tuple]:
    """Max-pooling forward pass (no padding)."""
    batch, channels, height, width = images.shape
    out_h = (height - pool_size) // stride + 1
    out_w = (width - pool_size) // stride + 1
    columns, _, _ = im2col(images, pool_size, stride, 0)
    columns = columns.reshape(-1, channels, pool_size * pool_size)
    # im2col groups features as (channel, ky, kx); regroup per channel window.
    arg_max = columns.argmax(axis=2)
    output = columns.max(axis=2)
    output = output.reshape(batch, out_h, out_w, channels).transpose(0, 3, 1, 2)
    cache = (images.shape, arg_max, pool_size, stride)
    return output, cache


def maxpool_backward(grad_output: np.ndarray, cache: Tuple) -> np.ndarray:
    """Max-pooling backward pass: route gradients to the argmax positions."""
    input_shape, arg_max, pool_size, stride = cache
    batch, channels, height, width = input_shape
    out_h = (height - pool_size) // stride + 1
    out_w = (width - pool_size) // stride + 1
    grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, channels)
    grad_columns = np.zeros((grad_flat.shape[0], channels, pool_size * pool_size))
    rows = np.arange(grad_flat.shape[0])[:, None]
    cols = np.arange(channels)[None, :]
    grad_columns[rows, cols, arg_max] = grad_flat
    grad_columns = grad_columns.reshape(grad_flat.shape[0], -1)
    return col2im(grad_columns, input_shape, pool_size, stride, 0)


def dense_forward(
    inputs: np.ndarray, weights: np.ndarray, bias: np.ndarray
) -> Tuple[np.ndarray, Tuple]:
    """Fully-connected forward pass: ``y = x W + b``."""
    output = inputs @ weights + bias
    return output, (inputs, weights)


def dense_backward(
    grad_output: np.ndarray, cache: Tuple
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fully-connected backward pass."""
    inputs, weights = cache
    grad_input = grad_output @ weights.T
    grad_weights = inputs.T @ grad_output
    grad_bias = grad_output.sum(axis=0)
    return grad_input, grad_weights, grad_bias


def relu_forward(inputs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """ReLU forward pass; the cache is the activation mask."""
    mask = inputs > 0
    return inputs * mask, mask


def relu_backward(grad_output: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """ReLU backward pass."""
    return grad_output * mask


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically-stable row-wise softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient with respect to the logits.

    ``labels`` are integer class indices of shape ``(N,)``.
    """
    batch = logits.shape[0]
    probabilities = softmax(logits)
    clipped = np.clip(probabilities[np.arange(batch), labels], 1e-12, 1.0)
    loss = float(-np.mean(np.log(clipped)))
    grad = probabilities.copy()
    grad[np.arange(batch), labels] -= 1.0
    grad /= batch
    return loss, grad
