"""Mini-batch SGD trainer for the numpy CNN.

Mirrors the paper's per-candidate training protocol (a short, fixed-epoch
training run followed by test-set evaluation) at a scale a CPU can handle:
small synthetic images instead of CIFAR-10 and a handful of epochs.  The
trainer also powers :class:`TrainedAccuracyEvaluator`, a drop-in alternative
to the analytic accuracy surrogate for small search spaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.accuracy.dataset import SyntheticImageDataset
from repro.accuracy.network import NumpyCNN
from repro.nn.architecture import Architecture
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_positive


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    losses: List[float] = field(default_factory=list)
    train_errors: List[float] = field(default_factory=list)
    test_errors: List[float] = field(default_factory=list)

    @property
    def final_test_error(self) -> float:
        """Test error (percent) after the last epoch."""
        if not self.test_errors:
            raise ValueError("no epochs were recorded")
        return self.test_errors[-1]

    def to_dict(self) -> Dict:
        return {
            "losses": self.losses,
            "train_errors": self.train_errors,
            "test_errors": self.test_errors,
        }


class SGDTrainer:
    """Stochastic gradient descent with momentum.

    Parameters
    ----------
    learning_rate / momentum / weight_decay:
        Optimiser hyperparameters.
    batch_size / epochs:
        Training schedule.
    clip_norm:
        Global gradient-norm clipping threshold; 0 disables clipping.  Small
        networks trained at high learning rates occasionally see exploding
        gradients, and clipping keeps the short training runs stable.
    """

    def __init__(
        self,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 1e-4,
        batch_size: int = 32,
        epochs: int = 5,
        clip_norm: float = 5.0,
        seed: SeedLike = 0,
    ):
        require_positive(learning_rate, "learning_rate")
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        require_positive(batch_size, "batch_size")
        require_positive(epochs, "epochs")
        if clip_norm < 0:
            raise ValueError(f"clip_norm must be >= 0, got {clip_norm}")
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.batch_size = int(batch_size)
        self.epochs = int(epochs)
        self.clip_norm = float(clip_norm)
        self._rng = ensure_rng(seed)

    def _clip_gradients(self, network: NumpyCNN) -> None:
        if self.clip_norm <= 0:
            return
        total = 0.0
        for layer, name in network.parameters():
            total += float(np.sum(layer.grads[name] ** 2))
        norm = np.sqrt(total)
        if norm > self.clip_norm:
            scale = self.clip_norm / (norm + 1e-12)
            for layer, name in network.parameters():
                layer.grads[name] *= scale

    def fit(self, network: NumpyCNN, dataset: SyntheticImageDataset) -> TrainingHistory:
        """Train the network in place and return the per-epoch history."""
        velocities = {
            (id(layer), name): np.zeros_like(layer.params[name])
            for layer, name in network.parameters()
        }
        history = TrainingHistory()
        for _ in range(self.epochs):
            epoch_losses: List[float] = []
            for images, labels in dataset.batches(self.batch_size, rng=self._rng):
                loss = network.loss_and_gradients(images, labels)
                epoch_losses.append(loss)
                self._clip_gradients(network)
                for layer, name in network.parameters():
                    grad = layer.grads[name] + self.weight_decay * layer.params[name]
                    key = (id(layer), name)
                    velocities[key] = (
                        self.momentum * velocities[key] - self.learning_rate * grad
                    )
                    layer.params[name] += velocities[key]
            history.losses.append(float(np.mean(epoch_losses)))
            history.train_errors.append(
                network.error_rate(dataset.train_images, dataset.train_labels)
            )
            history.test_errors.append(
                network.error_rate(dataset.test_images, dataset.test_labels)
            )
        return history


class TrainedAccuracyEvaluator:
    """Accuracy model that actually trains each candidate on synthetic data.

    Implements the same ``error_percent(architecture)`` interface as the
    analytic surrogate, so it can be plugged directly into the LENS search for
    very small studies.  Each call builds a :class:`NumpyCNN` for the
    candidate (using the dataset's image shape), trains it with
    :class:`SGDTrainer` and returns the final test error.
    """

    def __init__(
        self,
        dataset: Optional[SyntheticImageDataset] = None,
        trainer: Optional[SGDTrainer] = None,
        seed: SeedLike = 0,
    ):
        self._rng = ensure_rng(seed)
        self.dataset = dataset or SyntheticImageDataset.generate(seed=self._rng)
        self.trainer = trainer or SGDTrainer(epochs=3, seed=self._rng)

    def error_percent(self, architecture: Architecture) -> float:
        """Train the candidate and return its test error in percent."""
        if tuple(architecture.input_shape) != tuple(self.dataset.image_shape):
            raise ValueError(
                f"architecture input shape {architecture.input_shape} does not match "
                f"the dataset image shape {self.dataset.image_shape}"
            )
        network = NumpyCNN(architecture, seed=self._rng)
        history = self.trainer.fit(network, self.dataset)
        return history.final_test_error
