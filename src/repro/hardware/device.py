"""Device profiles for the edge and cloud endpoints.

The paper measures per-layer latency and power on an NVIDIA Jetson TX2 (its
GPU and CPU execution modes) and treats the cloud as having effectively
infinite resources.  Offline we cannot measure real silicon, so a
:class:`DeviceProfile` captures the handful of first-order parameters a
roofline-style layer cost model needs:

* an *effective* compute rate per layer family (FLOP/s actually sustained,
  well below the datasheet peak),
* an effective memory bandwidth (bytes/s) limiting memory-bound layers such
  as large fully-connected layers,
* a fixed per-layer launch/dispatch overhead,
* idle and busy power draw.

The concrete numbers for the TX2 profiles were chosen so that the reference
AlexNet reproduces the *shape* of the paper's Fig. 1 (the three FC layers
account for roughly half of the total latency on the GPU) and Fig. 2 (the
preferred deployment flips between All-Edge, split and All-Cloud as the
uplink throughput changes).  They are calibration targets, not measurements;
see DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.utils.validation import require_non_negative, require_positive

#: Layer families the cost model distinguishes.
LAYER_FAMILIES = ("conv", "fc", "pool", "flatten", "dropout")


@dataclass(frozen=True)
class DeviceProfile:
    """Performance/power description of one execution platform.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"jetson-tx2-gpu"``.
    kind:
        ``"edge"`` or ``"cloud"``.
    compute_rate_flops:
        Effective sustained FLOP/s per layer family.  Families missing from
        the mapping fall back to the ``"default"`` entry.
    memory_bandwidth_bps:
        Effective memory bandwidth in bytes/s (weights + activations traffic).
    layer_overhead_s:
        Fixed per-layer dispatch overhead in seconds.
    idle_power_w:
        Baseline board power in watts.
    busy_power_w:
        Additional power drawn at full compute utilisation, in watts.  The
        simulator scales this with the layer's arithmetic intensity, so
        memory-bound layers draw less than compute-bound ones.
    """

    name: str
    kind: str = "edge"
    compute_rate_flops: Mapping[str, float] = field(
        default_factory=lambda: {"default": 100e9}
    )
    memory_bandwidth_bps: float = 10e9
    layer_overhead_s: float = 50e-6
    idle_power_w: float = 1.5
    busy_power_w: float = 8.0

    def __post_init__(self) -> None:
        if self.kind not in ("edge", "cloud"):
            raise ValueError(f"kind must be 'edge' or 'cloud', got {self.kind!r}")
        if "default" not in self.compute_rate_flops:
            raise ValueError("compute_rate_flops must contain a 'default' entry")
        for family, rate in self.compute_rate_flops.items():
            require_positive(rate, f"compute_rate_flops[{family!r}]")
        require_positive(self.memory_bandwidth_bps, "memory_bandwidth_bps")
        require_non_negative(self.layer_overhead_s, "layer_overhead_s")
        require_non_negative(self.idle_power_w, "idle_power_w")
        require_non_negative(self.busy_power_w, "busy_power_w")

    def compute_rate(self, layer_type: str) -> float:
        """Effective FLOP/s for the given layer family."""
        return float(
            self.compute_rate_flops.get(layer_type, self.compute_rate_flops["default"])
        )

    @property
    def is_edge(self) -> bool:
        """Whether this device is the battery-powered edge endpoint."""
        return self.kind == "edge"

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "compute_rate_flops": dict(self.compute_rate_flops),
            "memory_bandwidth_bps": self.memory_bandwidth_bps,
            "layer_overhead_s": self.layer_overhead_s,
            "idle_power_w": self.idle_power_w,
            "busy_power_w": self.busy_power_w,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DeviceProfile":
        """Inverse of :meth:`to_dict` (used by serialized scenarios)."""
        return cls(
            name=data["name"],
            kind=data.get("kind", "edge"),
            compute_rate_flops={
                str(k): float(v) for k, v in data["compute_rate_flops"].items()
            },
            memory_bandwidth_bps=float(data["memory_bandwidth_bps"]),
            layer_overhead_s=float(data["layer_overhead_s"]),
            idle_power_w=float(data["idle_power_w"]),
            busy_power_w=float(data["busy_power_w"]),
        )


def jetson_tx2_gpu() -> DeviceProfile:
    """TX2-class embedded GPU profile (the paper's GPU/WiFi configuration)."""
    return DeviceProfile(
        name="jetson-tx2-gpu",
        kind="edge",
        compute_rate_flops={
            "default": 120e9,
            "conv": 150e9,
            "fc": 180e9,
            "pool": 40e9,
        },
        memory_bandwidth_bps=10e9,
        layer_overhead_s=150e-6,
        idle_power_w=1.8,
        busy_power_w=9.0,
    )


def jetson_tx2_cpu() -> DeviceProfile:
    """TX2-class embedded CPU profile (the paper's CPU/LTE configuration)."""
    return DeviceProfile(
        name="jetson-tx2-cpu",
        kind="edge",
        compute_rate_flops={
            "default": 14e9,
            "conv": 18e9,
            "fc": 22e9,
            "pool": 7e9,
        },
        memory_bandwidth_bps=4.2e9,
        layer_overhead_s=60e-6,
        idle_power_w=1.2,
        busy_power_w=4.5,
    )


def cloud_server() -> DeviceProfile:
    """Datacentre-class profile.

    The paper neglects cloud latency and energy entirely; this profile exists
    so the partitioning engine can optionally account for a small but nonzero
    cloud compute time in sensitivity studies.
    """
    return DeviceProfile(
        name="cloud-server",
        kind="cloud",
        compute_rate_flops={
            "default": 8e12,
            "conv": 10e12,
            "fc": 6e12,
            "pool": 2e12,
        },
        memory_bandwidth_bps=500e9,
        layer_overhead_s=10e-6,
        idle_power_w=0.0,
        busy_power_w=0.0,
    )


#: Registry of the built-in device profiles, keyed by name.
BUILTIN_DEVICES = {
    "jetson-tx2-gpu": jetson_tx2_gpu,
    "jetson-tx2-cpu": jetson_tx2_cpu,
    "cloud-server": cloud_server,
}


def device_by_name(name: str) -> DeviceProfile:
    """Instantiate a registered device profile by name.

    Lookup goes through the API device registry
    (:data:`repro.api.registry.DEVICES`), so custom devices registered with
    :func:`repro.api.registry.register_device` are found too.  Unknown names
    raise a :class:`KeyError` listing every registered device and, when one
    is close, a spelling suggestion.
    """
    # Imported lazily: the registry module imports this one for the built-ins.
    from repro.api.registry import DEVICES

    return DEVICES.create(name)
