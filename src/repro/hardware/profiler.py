"""Profiling-dataset generation for the per-layer performance predictors.

Section IV-C of the paper: "For each layer's type, different combinations of
both layer parameters and input/output feature map sizes are evaluated and
used to construct datasets for training the prediction models."  This module
enumerates/synthesises those combinations, runs them through the
:class:`~repro.hardware.simulator.LayerCostSimulator` (our stand-in for the
Jetson TX2 measurement apparatus) and packages the results as regression
datasets, one per layer family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.hardware.features import layer_features
from repro.hardware.simulator import LayerCostSimulator
from repro.nn.architecture import LayerSummary
from repro.nn.layers import Conv2D, Dense, MaxPool2D, shape_bytes
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class ProfilingDataset:
    """Regression dataset for a single layer family.

    Attributes
    ----------
    layer_type:
        Layer family the dataset describes (``conv``, ``fc``, ``pool``).
    features:
        ``(n, d)`` design matrix of layer features.
    latencies_s:
        ``(n,)`` measured latencies in seconds.
    powers_w:
        ``(n,)`` measured average power draws in watts.
    """

    layer_type: str
    features: np.ndarray
    latencies_s: np.ndarray
    powers_w: np.ndarray

    def __post_init__(self) -> None:
        self.features = np.atleast_2d(np.asarray(self.features, dtype=float))
        self.latencies_s = np.asarray(self.latencies_s, dtype=float).ravel()
        self.powers_w = np.asarray(self.powers_w, dtype=float).ravel()
        n = self.features.shape[0]
        if self.latencies_s.shape[0] != n or self.powers_w.shape[0] != n:
            raise ValueError(
                "features, latencies and powers must have the same number of rows"
            )

    def __len__(self) -> int:
        return self.features.shape[0]


def _summary_for(layer, input_shape) -> LayerSummary:
    """Build a standalone LayerSummary for an isolated layer configuration."""
    output_shape = layer.output_shape(input_shape)
    return LayerSummary(
        index=0,
        name=layer.name,
        layer_type=layer.layer_type,
        input_shape=tuple(input_shape),
        output_shape=output_shape,
        params=layer.param_count(input_shape),
        macs=layer.macs(input_shape),
        output_bytes=shape_bytes(output_shape),
        weight_bytes=layer.weight_bytes(input_shape),
        is_partition_candidate=layer.is_partition_candidate,
    )


class LayerProfiler:
    """Generates profiling datasets by sweeping layer configurations.

    Parameters
    ----------
    simulator:
        The measurement stand-in; its noise setting determines how noisy the
        generated datasets are.
    conv_spatial_sizes / conv_channels / conv_kernels / conv_filters / conv_strides:
        Sweep grids for convolutional layers.  The defaults cover the range of
        configurations reachable from the LENS search space and from AlexNet.
    fc_input_sizes / fc_units:
        Sweep grids for fully-connected layers.
    pool_spatial_sizes / pool_channels:
        Sweep grids for pooling layers.
    samples_per_type:
        Number of configurations sampled (without replacement when possible)
        from each family's full grid.
    """

    def __init__(
        self,
        simulator: LayerCostSimulator,
        conv_spatial_sizes: Sequence[int] = (7, 14, 28, 56, 112, 224),
        conv_channels: Sequence[int] = (3, 24, 36, 64, 96, 128, 256, 384),
        conv_kernels: Sequence[int] = (1, 3, 5, 7, 11),
        conv_filters: Sequence[int] = (24, 36, 64, 96, 128, 256, 384),
        conv_strides: Sequence[int] = (1, 2, 4),
        fc_input_sizes: Sequence[int] = (256, 1024, 4096, 9216, 12544, 25088, 50176),
        fc_units: Sequence[int] = (10, 256, 512, 1024, 2048, 4096, 8192),
        pool_spatial_sizes: Sequence[int] = (7, 14, 28, 56, 112, 224),
        pool_channels: Sequence[int] = (24, 64, 128, 256, 384),
        samples_per_type: int = 300,
        rng: SeedLike = None,
    ):
        if samples_per_type < 10:
            raise ValueError(f"samples_per_type must be >= 10, got {samples_per_type}")
        self.simulator = simulator
        self.conv_spatial_sizes = tuple(conv_spatial_sizes)
        self.conv_channels = tuple(conv_channels)
        self.conv_kernels = tuple(conv_kernels)
        self.conv_filters = tuple(conv_filters)
        self.conv_strides = tuple(conv_strides)
        self.fc_input_sizes = tuple(fc_input_sizes)
        self.fc_units = tuple(fc_units)
        self.pool_spatial_sizes = tuple(pool_spatial_sizes)
        self.pool_channels = tuple(pool_channels)
        self.samples_per_type = int(samples_per_type)
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------ sampling
    def _sample_conv_configs(self) -> Iterable[Tuple[Conv2D, Tuple[int, int, int]]]:
        rng = self._rng
        for _ in range(self.samples_per_type):
            spatial = int(rng.choice(self.conv_spatial_sizes))
            channels = int(rng.choice(self.conv_channels))
            kernel = int(rng.choice([k for k in self.conv_kernels if k <= spatial]))
            filters = int(rng.choice(self.conv_filters))
            stride = int(rng.choice(self.conv_strides))
            layer = Conv2D(
                name="profile_conv",
                out_channels=filters,
                kernel_size=kernel,
                stride=stride,
                padding="same",
                batch_norm=True,
            )
            yield layer, (channels, spatial, spatial)

    def _sample_fc_configs(self) -> Iterable[Tuple[Dense, Tuple[int]]]:
        rng = self._rng
        for _ in range(self.samples_per_type):
            in_features = int(rng.choice(self.fc_input_sizes))
            units = int(rng.choice(self.fc_units))
            yield Dense(name="profile_fc", units=units), (in_features,)

    def _sample_pool_configs(self) -> Iterable[Tuple[MaxPool2D, Tuple[int, int, int]]]:
        rng = self._rng
        for _ in range(self.samples_per_type):
            spatial = int(rng.choice(self.pool_spatial_sizes))
            channels = int(rng.choice(self.pool_channels))
            pool_size = int(rng.choice([2, 3]))
            stride = 2
            yield (
                MaxPool2D(name="profile_pool", pool_size=pool_size, stride=stride),
                (channels, spatial, spatial),
            )

    # ------------------------------------------------------------------ dataset construction
    def _profile(self, configs: Iterable) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        feature_rows: List[np.ndarray] = []
        latencies: List[float] = []
        powers: List[float] = []
        for layer, input_shape in configs:
            summary = _summary_for(layer, input_shape)
            measurement = self.simulator.measure(summary)
            feature_rows.append(layer_features(summary))
            latencies.append(measurement.latency_s)
            powers.append(measurement.power_w)
        return np.vstack(feature_rows), np.array(latencies), np.array(powers)

    def profile_conv(self) -> ProfilingDataset:
        """Profile convolutional layer configurations."""
        features, latencies, powers = self._profile(self._sample_conv_configs())
        return ProfilingDataset("conv", features, latencies, powers)

    def profile_fc(self) -> ProfilingDataset:
        """Profile fully-connected layer configurations."""
        features, latencies, powers = self._profile(self._sample_fc_configs())
        return ProfilingDataset("fc", features, latencies, powers)

    def profile_pool(self) -> ProfilingDataset:
        """Profile pooling layer configurations."""
        features, latencies, powers = self._profile(self._sample_pool_configs())
        return ProfilingDataset("pool", features, latencies, powers)

    def profile_all(self) -> Dict[str, ProfilingDataset]:
        """Profile every layer family the predictors need."""
        return {
            "conv": self.profile_conv(),
            "fc": self.profile_fc(),
            "pool": self.profile_pool(),
        }
