"""Analytical layer-cost simulator standing in for on-device measurements.

The paper builds its per-layer latency/power prediction models from *measured*
data: each layer type is run under many parameter combinations on the Jetson
TX2 using Caffe, latency is read from Caffe's timing and power from the
board's sensing circuit.  Offline we replace the physical board with this
simulator, which plays the role of the measurement apparatus:

* **latency** follows a roofline model — a layer takes the maximum of its
  compute time (FLOPs divided by the device's effective per-family compute
  rate) and its memory time (weights + activation traffic divided by the
  effective memory bandwidth), plus a fixed dispatch overhead;
* **power** interpolates between the device's idle and busy draw according to
  the layer's compute utilisation, so compute-bound convolutions draw near
  peak power while memory-bound fully-connected layers draw considerably
  less;
* optional multiplicative log-normal noise models measurement variation, so
  the downstream regression models are fitted against noisy observations just
  as they would be against real measurements.

The regression predictors in :mod:`repro.hardware.predictors` are trained on
datasets produced by sampling this simulator; the NAS itself only ever sees
the predictors, mirroring the paper's pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.hardware.device import DeviceProfile
from repro.hardware.features import prediction_family
from repro.nn.architecture import Architecture, LayerSummary
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_non_negative

#: Fraction of the busy power a fully memory-bound layer still draws.
MEMORY_BOUND_POWER_FLOOR = 0.3


@dataclass(frozen=True)
class LayerMeasurement:
    """One simulated measurement of a layer's execution."""

    latency_s: float
    power_w: float

    @property
    def energy_j(self) -> float:
        """Energy consumed by the layer execution."""
        return self.latency_s * self.power_w


class LayerCostSimulator:
    """Roofline-style latency/power model for a single device.

    Parameters
    ----------
    device:
        The device profile to simulate.
    noise_std:
        Standard deviation of the multiplicative log-normal measurement noise
        (0 disables noise and makes the simulator deterministic).
    rng:
        Seed or generator for the measurement noise.
    """

    def __init__(
        self,
        device: DeviceProfile,
        noise_std: float = 0.0,
        rng: SeedLike = None,
    ):
        require_non_negative(noise_std, "noise_std")
        self.device = device
        self.noise_std = float(noise_std)
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------ core model
    def compute_time(self, summary: LayerSummary) -> float:
        """Time the layer would take if it were purely compute-bound."""
        rate = self.device.compute_rate(prediction_family(summary.layer_type))
        return summary.flops / rate

    def memory_time(self, summary: LayerSummary) -> float:
        """Time the layer would take if it were purely memory-bound."""
        traffic = (
            summary.weight_bytes
            + summary.output_bytes
            + summary.input_elements * 4
        )
        return traffic / self.device.memory_bandwidth_bps

    def utilization(self, summary: LayerSummary) -> float:
        """Compute utilisation in [0, 1]; 1 for fully compute-bound layers."""
        compute = self.compute_time(summary)
        bound = max(compute, self.memory_time(summary))
        if bound <= 0.0:
            return 0.0
        return compute / bound

    def latency(self, summary: LayerSummary) -> float:
        """Noiseless layer latency in seconds."""
        busy = max(self.compute_time(summary), self.memory_time(summary))
        return busy + self.device.layer_overhead_s

    def power(self, summary: LayerSummary) -> float:
        """Noiseless average power draw during the layer execution, in watts."""
        utilisation = self.utilization(summary)
        scale = MEMORY_BOUND_POWER_FLOOR + (1.0 - MEMORY_BOUND_POWER_FLOOR) * utilisation
        return self.device.idle_power_w + self.device.busy_power_w * scale

    # ------------------------------------------------------------------ measurement API
    def _noise_factor(self) -> float:
        if self.noise_std <= 0.0:
            return 1.0
        return float(np.exp(self._rng.normal(0.0, self.noise_std)))

    def measure(self, summary: LayerSummary) -> LayerMeasurement:
        """Produce one (possibly noisy) measurement of the layer."""
        latency = self.latency(summary) * self._noise_factor()
        power = self.power(summary) * self._noise_factor()
        return LayerMeasurement(latency_s=latency, power_w=power)

    def measure_architecture(
        self, architecture: Architecture
    ) -> Tuple[Tuple[LayerMeasurement, ...], float, float]:
        """Measure every layer of an architecture.

        Returns
        -------
        (measurements, total_latency_s, total_energy_j)
            Per-layer measurements plus the whole-model on-device latency and
            energy (sums over layers).
        """
        measurements = tuple(
            self.measure(summary) for summary in architecture.summarize()
        )
        total_latency = sum(m.latency_s for m in measurements)
        total_energy = sum(m.energy_j for m in measurements)
        return measurements, total_latency, total_energy
