"""Edge-device performance modelling: device profiles, simulator, predictors."""

from repro.hardware.device import (
    BUILTIN_DEVICES,
    DeviceProfile,
    cloud_server,
    device_by_name,
    jetson_tx2_cpu,
    jetson_tx2_gpu,
)
from repro.hardware.features import (
    family_feature_matrix,
    feature_dimension,
    layer_features,
    stack_features,
)
from repro.hardware.predictors import (
    BaseLayerPredictor,
    LayerPerformancePredictor,
    LayerPrediction,
    OracleLayerPredictor,
    RidgeRegression,
    prediction_error_report,
)
from repro.hardware.profiler import LayerProfiler, ProfilingDataset
from repro.hardware.simulator import LayerCostSimulator, LayerMeasurement

__all__ = [
    "BUILTIN_DEVICES",
    "DeviceProfile",
    "cloud_server",
    "device_by_name",
    "jetson_tx2_cpu",
    "jetson_tx2_gpu",
    "family_feature_matrix",
    "feature_dimension",
    "layer_features",
    "stack_features",
    "BaseLayerPredictor",
    "LayerPerformancePredictor",
    "LayerPrediction",
    "OracleLayerPredictor",
    "RidgeRegression",
    "prediction_error_report",
    "LayerProfiler",
    "ProfilingDataset",
    "LayerCostSimulator",
    "LayerMeasurement",
]
