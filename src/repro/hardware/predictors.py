"""Per-layer latency and power prediction models (paper §IV-C).

The paper trains regression models — one latency model and one power model per
layer family — on measured profiling data, then calls them inside the NAS loop
to estimate each candidate architecture's per-layer performance.  This module
provides:

* :class:`RidgeRegression` — a small, dependency-free linear regression with
  L2 regularisation and feature standardisation;
* :class:`LayerPerformancePredictor` — the per-family latency/power model
  bundle, trainable from :class:`~repro.hardware.profiler.ProfilingDataset`
  objects and queryable per layer or per architecture;
* :class:`OracleLayerPredictor` — a noiseless pass-through to the simulator,
  useful for tests and for quantifying the regression models' error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.device import DeviceProfile
from repro.hardware.features import (
    FAMILY_ALIASES,
    family_feature_matrix,
    layer_features,
    prediction_family,
)
from repro.hardware.profiler import LayerProfiler, ProfilingDataset
from repro.hardware.simulator import LayerCostSimulator
from repro.nn.architecture import Architecture, LayerSummary
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_non_negative

if TYPE_CHECKING:  # runtime import stays lazy: repro.api imports this module
    from repro.api.engine import EvaluationEngine

#: Prediction floor: no layer is ever predicted faster/cheaper than this.
MIN_LATENCY_S = 1e-6
MIN_POWER_W = 1e-3


class RidgeRegression:
    """Linear regression with L2 regularisation and feature standardisation.

    The closed-form solution ``(X'X + aI)^-1 X'y`` is computed on standardised
    features; an intercept is always included and never regularised.
    """

    def __init__(self, alpha: float = 1e-3):
        require_non_negative(alpha, "alpha")
        self.alpha = float(alpha)
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._intercept: float = 0.0

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._weights is not None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegression":
        """Fit the model to a design matrix and target vector."""
        X = np.atleast_2d(np.asarray(features, dtype=float))
        y = np.asarray(targets, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"features has {X.shape[0]} rows but targets has {y.shape[0]} entries"
            )
        if X.shape[0] < 2:
            raise ValueError("at least two samples are required to fit the model")
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._std = np.where(std > 1e-12, std, 1.0)
        Xs = (X - self._mean) / self._std
        y_mean = float(y.mean())
        yc = y - y_mean
        gram = Xs.T @ Xs + self.alpha * np.eye(Xs.shape[1])
        self._weights = np.linalg.solve(gram, Xs.T @ yc)
        self._intercept = y_mean
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for one or more feature rows."""
        if not self.is_fitted:
            raise RuntimeError("RidgeRegression.predict called before fit")
        X = np.atleast_2d(np.asarray(features, dtype=float))
        Xs = (X - self._mean) / self._std
        return Xs @ self._weights + self._intercept

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination (R^2) on the given data."""
        y = np.asarray(targets, dtype=float).ravel()
        predictions = self.predict(features)
        residual = float(np.sum((y - predictions) ** 2))
        total = float(np.sum((y - y.mean()) ** 2))
        if total <= 1e-30:
            return 1.0 if residual <= 1e-30 else 0.0
        return 1.0 - residual / total


class LayerPrediction(NamedTuple):
    """Predicted latency, power and energy for a single layer.

    A named tuple rather than a dataclass: the batched evaluation path
    materialises one instance per layer per candidate, so construction cost
    is on the hot path.
    """

    latency_s: float
    power_w: float

    @property
    def energy_j(self) -> float:
        """Predicted layer energy in joules."""
        return self.latency_s * self.power_w


class BaseLayerPredictor:
    """Interface shared by the regression predictor and the oracle."""

    #: Device the predictor was built for.
    device: DeviceProfile

    def predict_layer(self, summary: LayerSummary) -> LayerPrediction:
        """Predict latency and power for one layer."""
        raise NotImplementedError

    def predict_architecture(
        self, architecture: Architecture
    ) -> Tuple[LayerPrediction, ...]:
        """Predict latency and power for every layer of an architecture."""
        return tuple(
            self.predict_layer(summary) for summary in architecture.summarize()
        )

    def predict_batch(
        self, architectures: Sequence[Architecture]
    ) -> List[Tuple[LayerPrediction, ...]]:
        """Per-layer predictions for a whole candidate pool.

        The base implementation loops :meth:`predict_architecture`, so the
        oracle and custom predictors work unchanged;
        :class:`LayerPerformancePredictor` overrides it with a vectorised
        per-family path.
        """
        return [self.predict_architecture(a) for a in architectures]

    def totals(
        self,
        architecture: Architecture,
        predictions: Optional[Sequence[LayerPrediction]] = None,
    ) -> Tuple[float, float]:
        """``(total latency, total energy)`` from one prediction pass.

        Pass cached ``predictions`` (e.g. from
        :meth:`repro.api.engine.EvaluationEngine.layer_predictions`) to skip
        the predictor entirely.
        """
        if predictions is None:
            predictions = self.predict_architecture(architecture)
        latency = sum(p.latency_s for p in predictions)
        energy = sum(p.energy_j for p in predictions)
        return latency, energy

    def total_latency(
        self,
        architecture: Architecture,
        predictions: Optional[Sequence[LayerPrediction]] = None,
    ) -> float:
        """Whole-model on-device latency (sum of per-layer latencies)."""
        return self.totals(architecture, predictions)[0]

    def total_energy(
        self,
        architecture: Architecture,
        predictions: Optional[Sequence[LayerPrediction]] = None,
    ) -> float:
        """Whole-model on-device energy (sum of per-layer energies)."""
        return self.totals(architecture, predictions)[1]


class LayerPerformancePredictor(BaseLayerPredictor):
    """Regression-based per-layer latency and power predictor.

    One :class:`RidgeRegression` pair (latency, power) is maintained for every
    layer family that appears in the profiling data.  Families never seen
    during profiling (``flatten``, ``dropout``) are predicted as free, which
    matches their negligible cost.
    """

    def __init__(self, device: DeviceProfile, alpha: float = 1e-3):
        self.device = device
        self.alpha = float(alpha)
        self._latency_models: Dict[str, RidgeRegression] = {}
        self._power_models: Dict[str, RidgeRegression] = {}
        self._training_scores: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------ training
    def fit(self, datasets: Dict[str, ProfilingDataset]) -> "LayerPerformancePredictor":
        """Fit per-family latency and power models from profiling datasets."""
        if not datasets:
            raise ValueError("at least one profiling dataset is required")
        for family, dataset in datasets.items():
            latency_model = RidgeRegression(self.alpha).fit(
                dataset.features, dataset.latencies_s
            )
            power_model = RidgeRegression(self.alpha).fit(
                dataset.features, dataset.powers_w
            )
            self._latency_models[family] = latency_model
            self._power_models[family] = power_model
            self._training_scores[family] = {
                "latency_r2": latency_model.score(dataset.features, dataset.latencies_s),
                "power_r2": power_model.score(dataset.features, dataset.powers_w),
                "samples": float(len(dataset)),
            }
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether at least one layer family has trained models."""
        return bool(self._latency_models)

    @property
    def training_scores(self) -> Dict[str, Dict[str, float]]:
        """Training R^2 per layer family (diagnostics)."""
        return dict(self._training_scores)

    @property
    def supported_families(self) -> Tuple[str, ...]:
        """Layer families with trained models."""
        return tuple(sorted(self._latency_models))

    # ------------------------------------------------------------------ prediction
    def predict_layer(self, summary: LayerSummary) -> LayerPrediction:
        """Scalar reference path: one layer, one feature row per model."""
        if not self.is_fitted:
            raise RuntimeError("predictor is not fitted; call fit() or train_for_device()")
        family = prediction_family(summary.layer_type)
        if family not in self._latency_models:
            # Structural layers (flatten/dropout) carry no measurable cost.
            return LayerPrediction(latency_s=0.0, power_w=self.device.idle_power_w)
        features = layer_features(summary)
        latency = float(self._latency_models[family].predict(features)[0])
        power = float(self._power_models[family].predict(features)[0])
        return LayerPrediction(
            latency_s=max(latency, MIN_LATENCY_S),
            power_w=max(power, MIN_POWER_W),
        )

    def predict_architecture(
        self, architecture: Architecture
    ) -> Tuple[LayerPrediction, ...]:
        """Thin wrapper over :meth:`predict_batch` (pool of one)."""
        return self.predict_batch([architecture])[0]

    def predict_batch(
        self, architectures: Sequence[Architecture]
    ) -> List[Tuple[LayerPrediction, ...]]:
        """Vectorised per-layer predictions for a whole candidate pool.

        All layers of all architectures are grouped by prediction family,
        each family featurizes into one design matrix
        (:func:`~repro.hardware.features.family_feature_matrix`), and each
        :class:`RidgeRegression` runs as a single matrix product — two
        matmuls per family for the entire pool instead of two per layer.
        Values match :meth:`predict_layer` to floating-point roundoff.
        """
        return self.predict_pool(architectures)[0]

    def predict_pool(
        self, architectures: Sequence[Architecture]
    ) -> Tuple[List[Tuple[LayerPrediction, ...]], np.ndarray]:
        """:meth:`predict_batch` plus the raw ``(total_layers, 2)`` array.

        The array holds the pool's per-layer ``(latency, power)`` stream in
        architecture order — exactly the values inside the returned
        prediction tuples.  Batched partition costing consumes the array
        directly, skipping a NamedTuple-to-array round trip.
        """
        if not self.is_fitted:
            raise RuntimeError("predictor is not fitted; call fit() or train_for_device()")
        summary_lists = [a.summarize() for a in architectures]
        total = sum(len(summaries) for summaries in summary_lists)
        latencies = np.empty(total)
        powers = np.empty(total)
        latency_models = self._latency_models
        idle_power = self.device.idle_power_w
        aliases = FAMILY_ALIASES
        # One pass groups (position, summary) by family; families without a
        # model (flatten/dropout) are filled in place as cost-free.
        groups: Dict[str, Tuple[List[int], List[LayerSummary]]] = {}
        position = 0
        for summaries in summary_lists:
            for summary in summaries:
                layer_type = summary.layer_type
                family = aliases.get(layer_type, layer_type)
                if family in latency_models:
                    entry = groups.get(family)
                    if entry is None:
                        entry = groups[family] = ([], [])
                    entry[0].append(position)
                    entry[1].append(summary)
                else:
                    latencies[position] = 0.0
                    powers[position] = idle_power
                position += 1
        for family, (positions, members) in groups.items():
            matrix = family_feature_matrix(family, members)
            latency = latency_models[family].predict(matrix)
            power = self._power_models[family].predict(matrix)
            np.maximum(latency, MIN_LATENCY_S, out=latency)
            np.maximum(power, MIN_POWER_W, out=power)
            latencies[positions] = latency
            powers[positions] = power
        pairs = list(zip(latencies.tolist(), powers.tolist()))
        make = LayerPrediction._make
        results: List[Tuple[LayerPrediction, ...]] = []
        offset = 0
        for summaries in summary_lists:
            end = offset + len(summaries)
            results.append(tuple(map(make, pairs[offset:end])))
            offset = end
        return results, np.stack((latencies, powers), axis=1)

    # ------------------------------------------------------------------ convenience
    @classmethod
    def train_for_device(
        cls,
        device: DeviceProfile,
        noise_std: float = 0.03,
        samples_per_type: int = 300,
        alpha: float = 1e-3,
        seed: SeedLike = 0,
    ) -> "LayerPerformancePredictor":
        """Build, profile and fit a predictor for a device in one call.

        This mirrors the paper's workflow end-to-end: sweep layer
        configurations on the (simulated) device, collect noisy measurements,
        and fit the per-family regression models.
        """
        rng = ensure_rng(seed)
        simulator = LayerCostSimulator(device, noise_std=noise_std, rng=rng)
        profiler = LayerProfiler(
            simulator, samples_per_type=samples_per_type, rng=rng
        )
        predictor = cls(device, alpha=alpha)
        predictor.fit(profiler.profile_all())
        return predictor


class OracleLayerPredictor(BaseLayerPredictor):
    """Noise-free predictor that queries the simulator directly.

    Useful in tests (deterministic ground truth) and for measuring the
    regression predictor's approximation error.
    """

    def __init__(self, device: DeviceProfile):
        self.device = device
        self._simulator = LayerCostSimulator(device, noise_std=0.0)

    def predict_layer(self, summary: LayerSummary) -> LayerPrediction:
        return LayerPrediction(
            latency_s=self._simulator.latency(summary),
            power_w=self._simulator.power(summary),
        )


def prediction_error_report(
    predictor: LayerPerformancePredictor,
    architectures: Sequence[Architecture],
    engine: Optional["EvaluationEngine"] = None,
) -> Dict[str, float]:
    """Compare a fitted predictor against the noiseless oracle.

    Returns mean absolute percentage errors for whole-model latency and
    energy over the given architectures — a quick check that the regression
    pipeline is faithful enough for search-time ranking.

    Both totals of each model come from one prediction pass
    (:meth:`BaseLayerPredictor.totals`).  Pass an
    :class:`~repro.api.engine.EvaluationEngine` to route those passes
    through its layer cache (and share its cached oracle), so
    architectures already costed by a search are not re-predicted.
    """
    latency_errors: List[float] = []
    energy_errors: List[float] = []
    pool = list(architectures)
    if engine is not None:
        oracle: BaseLayerPredictor = engine.predictor_for(
            predictor.device, oracle=True
        )
        totals = [
            (
                engine.architecture_totals(oracle, architecture),
                engine.architecture_totals(predictor, architecture),
            )
            for architecture in pool
        ]
    else:
        oracle = OracleLayerPredictor(predictor.device)
        # One batched prediction pass per predictor for the whole pool.
        totals = [
            (
                oracle.totals(architecture, true_preds),
                predictor.totals(architecture, model_preds),
            )
            for architecture, true_preds, model_preds in zip(
                pool, oracle.predict_batch(pool), predictor.predict_batch(pool)
            )
        ]
    for (true_latency, true_energy), (predicted_latency, predicted_energy) in totals:
        latency_errors.append(abs(predicted_latency - true_latency) / true_latency)
        energy_errors.append(abs(predicted_energy - true_energy) / true_energy)
    return {
        "latency_mape": float(np.mean(latency_errors)),
        "energy_mape": float(np.mean(energy_errors)),
        "architectures": float(len(pool)),
    }
