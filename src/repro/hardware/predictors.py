"""Per-layer latency and power prediction models (paper §IV-C).

The paper trains regression models — one latency model and one power model per
layer family — on measured profiling data, then calls them inside the NAS loop
to estimate each candidate architecture's per-layer performance.  This module
provides:

* :class:`RidgeRegression` — a small, dependency-free linear regression with
  L2 regularisation and feature standardisation;
* :class:`LayerPerformancePredictor` — the per-family latency/power model
  bundle, trainable from :class:`~repro.hardware.profiler.ProfilingDataset`
  objects and queryable per layer or per architecture;
* :class:`OracleLayerPredictor` — a noiseless pass-through to the simulator,
  useful for tests and for quantifying the regression models' error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.device import DeviceProfile
from repro.hardware.features import layer_features, prediction_family
from repro.hardware.profiler import LayerProfiler, ProfilingDataset
from repro.hardware.simulator import LayerCostSimulator
from repro.nn.architecture import Architecture, LayerSummary
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require_non_negative

#: Prediction floor: no layer is ever predicted faster/cheaper than this.
MIN_LATENCY_S = 1e-6
MIN_POWER_W = 1e-3


class RidgeRegression:
    """Linear regression with L2 regularisation and feature standardisation.

    The closed-form solution ``(X'X + aI)^-1 X'y`` is computed on standardised
    features; an intercept is always included and never regularised.
    """

    def __init__(self, alpha: float = 1e-3):
        require_non_negative(alpha, "alpha")
        self.alpha = float(alpha)
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._intercept: float = 0.0

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._weights is not None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegression":
        """Fit the model to a design matrix and target vector."""
        X = np.atleast_2d(np.asarray(features, dtype=float))
        y = np.asarray(targets, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"features has {X.shape[0]} rows but targets has {y.shape[0]} entries"
            )
        if X.shape[0] < 2:
            raise ValueError("at least two samples are required to fit the model")
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._std = np.where(std > 1e-12, std, 1.0)
        Xs = (X - self._mean) / self._std
        y_mean = float(y.mean())
        yc = y - y_mean
        gram = Xs.T @ Xs + self.alpha * np.eye(Xs.shape[1])
        self._weights = np.linalg.solve(gram, Xs.T @ yc)
        self._intercept = y_mean
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for one or more feature rows."""
        if not self.is_fitted:
            raise RuntimeError("RidgeRegression.predict called before fit")
        X = np.atleast_2d(np.asarray(features, dtype=float))
        Xs = (X - self._mean) / self._std
        return Xs @ self._weights + self._intercept

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination (R^2) on the given data."""
        y = np.asarray(targets, dtype=float).ravel()
        predictions = self.predict(features)
        residual = float(np.sum((y - predictions) ** 2))
        total = float(np.sum((y - y.mean()) ** 2))
        if total <= 1e-30:
            return 1.0 if residual <= 1e-30 else 0.0
        return 1.0 - residual / total


@dataclass(frozen=True)
class LayerPrediction:
    """Predicted latency, power and energy for a single layer."""

    latency_s: float
    power_w: float

    @property
    def energy_j(self) -> float:
        """Predicted layer energy in joules."""
        return self.latency_s * self.power_w


class BaseLayerPredictor:
    """Interface shared by the regression predictor and the oracle."""

    #: Device the predictor was built for.
    device: DeviceProfile

    def predict_layer(self, summary: LayerSummary) -> LayerPrediction:
        """Predict latency and power for one layer."""
        raise NotImplementedError

    def predict_architecture(
        self, architecture: Architecture
    ) -> Tuple[LayerPrediction, ...]:
        """Predict latency and power for every layer of an architecture."""
        return tuple(
            self.predict_layer(summary) for summary in architecture.summarize()
        )

    def total_latency(self, architecture: Architecture) -> float:
        """Whole-model on-device latency (sum of per-layer latencies)."""
        return sum(p.latency_s for p in self.predict_architecture(architecture))

    def total_energy(self, architecture: Architecture) -> float:
        """Whole-model on-device energy (sum of per-layer energies)."""
        return sum(p.energy_j for p in self.predict_architecture(architecture))


class LayerPerformancePredictor(BaseLayerPredictor):
    """Regression-based per-layer latency and power predictor.

    One :class:`RidgeRegression` pair (latency, power) is maintained for every
    layer family that appears in the profiling data.  Families never seen
    during profiling (``flatten``, ``dropout``) are predicted as free, which
    matches their negligible cost.
    """

    def __init__(self, device: DeviceProfile, alpha: float = 1e-3):
        self.device = device
        self.alpha = float(alpha)
        self._latency_models: Dict[str, RidgeRegression] = {}
        self._power_models: Dict[str, RidgeRegression] = {}
        self._training_scores: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------ training
    def fit(self, datasets: Dict[str, ProfilingDataset]) -> "LayerPerformancePredictor":
        """Fit per-family latency and power models from profiling datasets."""
        if not datasets:
            raise ValueError("at least one profiling dataset is required")
        for family, dataset in datasets.items():
            latency_model = RidgeRegression(self.alpha).fit(
                dataset.features, dataset.latencies_s
            )
            power_model = RidgeRegression(self.alpha).fit(
                dataset.features, dataset.powers_w
            )
            self._latency_models[family] = latency_model
            self._power_models[family] = power_model
            self._training_scores[family] = {
                "latency_r2": latency_model.score(dataset.features, dataset.latencies_s),
                "power_r2": power_model.score(dataset.features, dataset.powers_w),
                "samples": float(len(dataset)),
            }
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether at least one layer family has trained models."""
        return bool(self._latency_models)

    @property
    def training_scores(self) -> Dict[str, Dict[str, float]]:
        """Training R^2 per layer family (diagnostics)."""
        return dict(self._training_scores)

    @property
    def supported_families(self) -> Tuple[str, ...]:
        """Layer families with trained models."""
        return tuple(sorted(self._latency_models))

    # ------------------------------------------------------------------ prediction
    def predict_layer(self, summary: LayerSummary) -> LayerPrediction:
        if not self.is_fitted:
            raise RuntimeError("predictor is not fitted; call fit() or train_for_device()")
        family = prediction_family(summary.layer_type)
        if family not in self._latency_models:
            # Structural layers (flatten/dropout) carry no measurable cost.
            return LayerPrediction(latency_s=0.0, power_w=self.device.idle_power_w)
        features = layer_features(summary)
        latency = float(self._latency_models[family].predict(features)[0])
        power = float(self._power_models[family].predict(features)[0])
        return LayerPrediction(
            latency_s=max(latency, MIN_LATENCY_S),
            power_w=max(power, MIN_POWER_W),
        )

    # ------------------------------------------------------------------ convenience
    @classmethod
    def train_for_device(
        cls,
        device: DeviceProfile,
        noise_std: float = 0.03,
        samples_per_type: int = 300,
        alpha: float = 1e-3,
        seed: SeedLike = 0,
    ) -> "LayerPerformancePredictor":
        """Build, profile and fit a predictor for a device in one call.

        This mirrors the paper's workflow end-to-end: sweep layer
        configurations on the (simulated) device, collect noisy measurements,
        and fit the per-family regression models.
        """
        rng = ensure_rng(seed)
        simulator = LayerCostSimulator(device, noise_std=noise_std, rng=rng)
        profiler = LayerProfiler(
            simulator, samples_per_type=samples_per_type, rng=rng
        )
        predictor = cls(device, alpha=alpha)
        predictor.fit(profiler.profile_all())
        return predictor


class OracleLayerPredictor(BaseLayerPredictor):
    """Noise-free predictor that queries the simulator directly.

    Useful in tests (deterministic ground truth) and for measuring the
    regression predictor's approximation error.
    """

    def __init__(self, device: DeviceProfile):
        self.device = device
        self._simulator = LayerCostSimulator(device, noise_std=0.0)

    def predict_layer(self, summary: LayerSummary) -> LayerPrediction:
        return LayerPrediction(
            latency_s=self._simulator.latency(summary),
            power_w=self._simulator.power(summary),
        )


def prediction_error_report(
    predictor: LayerPerformancePredictor,
    architectures: Sequence[Architecture],
) -> Dict[str, float]:
    """Compare a fitted predictor against the noiseless oracle.

    Returns mean absolute percentage errors for whole-model latency and
    energy over the given architectures — a quick check that the regression
    pipeline is faithful enough for search-time ranking.
    """
    oracle = OracleLayerPredictor(predictor.device)
    latency_errors: List[float] = []
    energy_errors: List[float] = []
    for architecture in architectures:
        true_latency = oracle.total_latency(architecture)
        true_energy = oracle.total_energy(architecture)
        predicted_latency = predictor.total_latency(architecture)
        predicted_energy = predictor.total_energy(architecture)
        latency_errors.append(abs(predicted_latency - true_latency) / true_latency)
        energy_errors.append(abs(predicted_energy - true_energy) / true_energy)
    return {
        "latency_mape": float(np.mean(latency_errors)),
        "energy_mape": float(np.mean(energy_errors)),
        "architectures": float(len(architectures)),
    }
