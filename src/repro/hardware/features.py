"""Feature extraction for the per-layer performance regression models.

Following the prediction-model construction of Neurosurgeon (Kang et al.,
ASPLOS'17), which the paper adopts ("Each prediction model would have its
input features constructed as in [3]"), each layer family has its own small
feature vector built from the layer's configuration and its input/output
feature-map sizes.  Features are expressed in "mega" units (1e6 elements /
operations / bytes) so the regression design matrices are well conditioned.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.architecture import LayerSummary

#: Scaling applied to raw counts before regression.
MEGA = 1e6

#: Layer types costed through another family's prediction models.  1-D
#: convolutions and poolings have the same arithmetic structure as their 2-D
#: counterparts (MACs, parameter and traffic counts are computed the same
#: way), so they share the ``conv`` / ``pool`` regression models and compute
#: rates rather than requiring their own profiling sweeps.
FAMILY_ALIASES = {
    "conv1d": "conv",
    "pool1d": "pool",
}


def prediction_family(layer_type: str) -> str:
    """Prediction-model family a layer type is costed with."""
    return FAMILY_ALIASES.get(layer_type, layer_type)


def conv_features(summary: LayerSummary) -> np.ndarray:
    """Features for convolutional layers.

    ``[input elements, output elements, MACs, parameters, weight bytes,
    total activation+weight traffic]`` in mega-units.
    """
    traffic = summary.weight_bytes + summary.output_bytes + 4 * summary.input_elements
    return np.array(
        [
            summary.input_elements / MEGA,
            summary.output_elements / MEGA,
            summary.macs / MEGA,
            summary.params / MEGA,
            summary.weight_bytes / MEGA,
            traffic / MEGA,
        ]
    )


def fc_features(summary: LayerSummary) -> np.ndarray:
    """Features for fully-connected layers.

    ``[input features, output features, MACs, weight bytes]`` in mega-units.
    """
    return np.array(
        [
            summary.input_elements / MEGA,
            summary.output_elements / MEGA,
            summary.macs / MEGA,
            summary.weight_bytes / MEGA,
        ]
    )


def pool_features(summary: LayerSummary) -> np.ndarray:
    """Features for pooling layers: ``[input elements, output elements, ops]``."""
    return np.array(
        [
            summary.input_elements / MEGA,
            summary.output_elements / MEGA,
            summary.macs / MEGA,
        ]
    )


def generic_features(summary: LayerSummary) -> np.ndarray:
    """Fallback features for structural layers (flatten, dropout)."""
    return np.array(
        [
            summary.input_elements / MEGA,
            summary.output_elements / MEGA,
        ]
    )


_FEATURE_EXTRACTORS = {
    "conv": conv_features,
    "fc": fc_features,
    "pool": pool_features,
}


def layer_features(summary: LayerSummary) -> np.ndarray:
    """Dispatch feature extraction based on the layer's prediction family."""
    extractor = _FEATURE_EXTRACTORS.get(
        prediction_family(summary.layer_type), generic_features
    )
    return extractor(summary)


# ---------------------------------------------------------------------- batched
# Column builders mirroring the per-layer extractors above.  Each gathers the
# *raw* counts of a whole family group column-by-column (plain list
# comprehensions, no per-layer array or tuple allocation), converts them in
# one ``np.array`` call and applies one matrix-wide ``/ MEGA``; integer counts
# convert to float64 exactly and the scalar division is the same IEEE
# operation the per-layer extractors apply, so the values are identical.

def _conv_columns(summaries: List[LayerSummary]) -> tuple:
    return (
        [s.input_elements for s in summaries],
        [s.output_elements for s in summaries],
        [s.macs for s in summaries],
        [s.params for s in summaries],
        [s.weight_bytes for s in summaries],
        [
            s.weight_bytes + s.output_bytes + 4 * s.input_elements
            for s in summaries
        ],
    )


def _fc_columns(summaries: List[LayerSummary]) -> tuple:
    return (
        [s.input_elements for s in summaries],
        [s.output_elements for s in summaries],
        [s.macs for s in summaries],
        [s.weight_bytes for s in summaries],
    )


def _pool_columns(summaries: List[LayerSummary]) -> tuple:
    return (
        [s.input_elements for s in summaries],
        [s.output_elements for s in summaries],
        [s.macs for s in summaries],
    )


def _generic_columns(summaries: List[LayerSummary]) -> tuple:
    return (
        [s.input_elements for s in summaries],
        [s.output_elements for s in summaries],
    )


_COLUMN_BUILDERS = {
    "conv": _conv_columns,
    "fc": _fc_columns,
    "pool": _pool_columns,
}


def family_feature_matrix(family: str, summaries: List[LayerSummary]) -> np.ndarray:
    """``(len(summaries), d)`` design matrix for one prediction family.

    Rows equal :func:`layer_features` of the corresponding summary (the
    family must be the summaries' shared :func:`prediction_family`); building
    the matrix in one pass is the featurization half of the batched
    predictor hot path.
    """
    builder = _COLUMN_BUILDERS.get(family, _generic_columns)
    matrix = np.array(builder(summaries), dtype=float).T
    matrix /= MEGA
    return matrix


def feature_dimension(layer_type: str) -> int:
    """Dimensionality of the feature vector used for a layer family."""
    dims: Dict[str, int] = {"conv": 6, "fc": 4, "pool": 3}
    return dims.get(prediction_family(layer_type), 2)


def stack_features(summaries: List[LayerSummary]) -> Dict[str, np.ndarray]:
    """Group summaries by prediction family and stack their feature vectors."""
    grouped: Dict[str, List[np.ndarray]] = {}
    for summary in summaries:
        grouped.setdefault(
            prediction_family(summary.layer_type), []
        ).append(layer_features(summary))
    return {family: np.vstack(rows) for family, rows in grouped.items()}
