"""Genotype encoding for architecture search spaces.

A candidate architecture is represented as an integer vector (one entry per
*gene*), where each gene indexes into a finite, ordered list of admissible
values.  The encoding serves three consumers:

* the search space, which decodes index vectors into concrete
  :class:`~repro.nn.architecture.Architecture` objects;
* the Bayesian optimizer, which works on the unit-cube projection of the
  index vector (ordinal genes map naturally onto a continuous kernel);
* serialization, where a candidate is stored as its integer vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class Gene:
    """One discrete decision variable of the search space.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"block3_filters"``.
    choices:
        Ordered tuple of admissible values.  Ordering matters: the Bayesian
        optimizer treats genes as ordinal, so choices should be sorted from
        "smallest" to "largest" architectural effect where that is meaningful
        (e.g. filter counts ascending).
    """

    name: str
    choices: Tuple

    def __post_init__(self) -> None:
        if len(self.choices) == 0:
            raise ValueError(f"gene {self.name!r} must have at least one choice")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"gene {self.name!r} has duplicate choices: {self.choices}")

    @property
    def cardinality(self) -> int:
        """Number of admissible values."""
        return len(self.choices)

    def value(self, index: int) -> object:
        """Value at the given index (raises ``IndexError`` when out of range)."""
        if not 0 <= index < self.cardinality:
            raise IndexError(
                f"gene {self.name!r}: index {index} out of range [0, {self.cardinality})"
            )
        return self.choices[index]

    def index_of(self, value: object) -> int:
        """Index of ``value`` within the gene's choices."""
        try:
            return self.choices.index(value)
        except ValueError as exc:
            raise ValueError(
                f"gene {self.name!r}: {value!r} is not one of {self.choices}"
            ) from exc


class EncodingScheme:
    """A fixed, ordered collection of genes defining the genotype layout."""

    def __init__(self, genes: Sequence[Gene]):
        if not genes:
            raise ValueError("an encoding scheme requires at least one gene")
        names = [gene.name for gene in genes]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate gene names: {duplicates}")
        self.genes: Tuple[Gene, ...] = tuple(genes)
        self._index_by_name = {gene.name: i for i, gene in enumerate(self.genes)}

    # ------------------------------------------------------------------ basic
    def __len__(self) -> int:
        return len(self.genes)

    @property
    def num_genes(self) -> int:
        """Number of genes (length of an index vector)."""
        return len(self.genes)

    @property
    def cardinalities(self) -> np.ndarray:
        """Per-gene number of choices as an integer array."""
        return np.array([gene.cardinality for gene in self.genes], dtype=int)

    def total_combinations(self) -> int:
        """Size of the unconstrained Cartesian product of all genes."""
        total = 1
        for gene in self.genes:
            total *= gene.cardinality
        return total

    def gene(self, name: str) -> Gene:
        """Look up a gene by name."""
        try:
            return self.genes[self._index_by_name[name]]
        except KeyError as exc:
            raise KeyError(f"no gene named {name!r}") from exc

    def gene_position(self, name: str) -> int:
        """Position of the named gene within the index vector."""
        try:
            return self._index_by_name[name]
        except KeyError as exc:
            raise KeyError(f"no gene named {name!r}") from exc

    # ------------------------------------------------------------------ vectors
    def validate_indices(self, indices: Sequence[int]) -> np.ndarray:
        """Check bounds and return the indices as an integer array."""
        arr = np.asarray(indices, dtype=int)
        if arr.shape != (self.num_genes,):
            raise ValueError(
                f"expected an index vector of length {self.num_genes}, got shape {arr.shape}"
            )
        cards = self.cardinalities
        if np.any(arr < 0) or np.any(arr >= cards):
            bad = [
                f"{gene.name}={idx} (cardinality {gene.cardinality})"
                for gene, idx in zip(self.genes, arr)
                if idx < 0 or idx >= gene.cardinality
            ]
            raise ValueError(f"gene indices out of range: {', '.join(bad)}")
        return arr

    def sample_indices(self, rng: SeedLike = None) -> np.ndarray:
        """Sample a uniformly random (unconstrained) index vector."""
        rng = ensure_rng(rng)
        return np.array(
            [rng.integers(0, gene.cardinality) for gene in self.genes], dtype=int
        )

    def values(self, indices: Sequence[int]) -> Dict[str, object]:
        """Map an index vector to a ``{gene name: value}`` dictionary."""
        arr = self.validate_indices(indices)
        return {gene.name: gene.value(int(idx)) for gene, idx in zip(self.genes, arr)}

    def indices_from_values(self, values: Dict[str, object]) -> np.ndarray:
        """Inverse of :meth:`values`; all genes must be present."""
        missing = [gene.name for gene in self.genes if gene.name not in values]
        if missing:
            raise ValueError(f"missing values for genes: {missing}")
        return np.array(
            [gene.index_of(values[gene.name]) for gene in self.genes], dtype=int
        )

    # ------------------------------------------------------------------ continuous view
    def to_unit(self, indices: Sequence[int]) -> np.ndarray:
        """Project an index vector to the unit cube ``[0, 1]^d``.

        A gene with a single choice maps to 0.5 so it carries no information
        for the Gaussian-process kernel.
        """
        arr = self.validate_indices(indices).astype(float)
        cards = self.cardinalities.astype(float)
        unit = np.where(cards > 1, arr / np.maximum(cards - 1.0, 1.0), 0.5)
        return unit

    def from_unit(self, unit: Sequence[float]) -> np.ndarray:
        """Snap a unit-cube point back onto the nearest valid index vector."""
        arr = np.clip(np.asarray(unit, dtype=float), 0.0, 1.0)
        if arr.shape != (self.num_genes,):
            raise ValueError(
                f"expected a unit vector of length {self.num_genes}, got shape {arr.shape}"
            )
        cards = self.cardinalities.astype(float)
        indices = np.rint(arr * np.maximum(cards - 1.0, 0.0)).astype(int)
        return self.validate_indices(indices)

    # ------------------------------------------------------------------ neighbourhood
    def mutate(
        self,
        indices: Sequence[int],
        rng: SeedLike = None,
        mutation_probability: float = 0.15,
    ) -> np.ndarray:
        """Return a neighbouring index vector.

        Each gene is independently resampled with ``mutation_probability``; at
        least one gene is always changed so the result differs from the input
        whenever any gene has more than one choice.
        """
        rng = ensure_rng(rng)
        arr = self.validate_indices(indices).copy()
        mutable = [i for i, gene in enumerate(self.genes) if gene.cardinality > 1]
        if not mutable:
            return arr
        changed = False
        for i in mutable:
            if rng.random() < mutation_probability:
                arr[i] = self._resample_gene(arr[i], self.genes[i], rng)
                changed = True
        if not changed:
            i = int(rng.choice(mutable))
            arr[i] = self._resample_gene(arr[i], self.genes[i], rng)
        return arr

    @staticmethod
    def _resample_gene(current: int, gene: Gene, rng: np.random.Generator) -> int:
        options = [i for i in range(gene.cardinality) if i != current]
        return int(rng.choice(options))

    def hamming_distance(self, a: Sequence[int], b: Sequence[int]) -> int:
        """Number of genes on which two index vectors differ."""
        va = self.validate_indices(a)
        vb = self.validate_indices(b)
        return int(np.sum(va != vb))

    def describe(self) -> str:
        """Human-readable listing of genes and their choices."""
        lines: List[str] = [f"EncodingScheme with {self.num_genes} genes:"]
        for gene in self.genes:
            lines.append(f"  {gene.name}: {list(gene.choices)}")
        return "\n".join(lines)
