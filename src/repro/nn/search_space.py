"""The LENS experimental search space (Fig. 4 of the paper).

The space is derived from VGG-16 and consists of five convolutional blocks,
each followed by an *optional* 2x2 max-pooling layer.  For every block the
search varies

* the number of convolutional layers: 1, 2 or 3,
* the kernel size: 3, 5 or 7,
* the number of filters: 24, 36, 64, 96, 128 or 256.

After the convolutional blocks, at least one of two fully-connected layers
exists, each with a width drawn from {256, 512, 1024, 2048, 4096, 8192}.  All
layers use ReLU except the final softmax classifier, batch normalisation is
applied at every convolutional layer, and every architecture must contain at
least four pooling layers (the paper adds this constraint "to highlight cases
that can benefit from layer distribution").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.architecture import Architecture
from repro.nn.encoding import EncodingScheme, Gene
from repro.nn.layers import Conv2D, Dense, Flatten, LayerSpec, MaxPool2D
from repro.utils.rng import SeedLike, ensure_rng

#: Default choices, exactly as given in the paper's Fig. 4 description.
DEFAULT_LAYERS_PER_BLOCK = (1, 2, 3)
DEFAULT_KERNEL_SIZES = (3, 5, 7)
DEFAULT_FILTER_COUNTS = (24, 36, 64, 96, 128, 256)
DEFAULT_FC_UNITS = (256, 512, 1024, 2048, 4096, 8192)
DEFAULT_NUM_BLOCKS = 5
DEFAULT_MIN_POOL_LAYERS = 4


class LensSearchSpace:
    """VGG-derived search space used by the LENS experiments.

    Parameters
    ----------
    num_blocks:
        Number of convolutional blocks (5 in the paper).
    layers_per_block / kernel_sizes / filter_counts / fc_units:
        Admissible values for the per-block and fully-connected genes.
    min_pool_layers:
        Minimum number of pooling layers any valid architecture must contain.
    num_classes:
        Width of the final softmax classifier (CIFAR-10 -> 10).
    accuracy_input_shape:
        Input shape used when decoding models for *training / accuracy*
        estimation (CIFAR-10 32x32 RGB images in the paper).
    performance_input_shape:
        Input shape used when decoding models for *latency / energy*
        estimation (224x224x3, i.e. 147 kB, "to reflect realistic scenarios").
    """

    def __init__(
        self,
        num_blocks: int = DEFAULT_NUM_BLOCKS,
        layers_per_block: Sequence[int] = DEFAULT_LAYERS_PER_BLOCK,
        kernel_sizes: Sequence[int] = DEFAULT_KERNEL_SIZES,
        filter_counts: Sequence[int] = DEFAULT_FILTER_COUNTS,
        fc_units: Sequence[int] = DEFAULT_FC_UNITS,
        min_pool_layers: int = DEFAULT_MIN_POOL_LAYERS,
        num_classes: int = 10,
        accuracy_input_shape: Tuple[int, int, int] = (3, 32, 32),
        performance_input_shape: Tuple[int, int, int] = (3, 224, 224),
    ):
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        if min_pool_layers > num_blocks:
            raise ValueError(
                f"min_pool_layers ({min_pool_layers}) cannot exceed num_blocks ({num_blocks})"
            )
        self.num_blocks = int(num_blocks)
        self.layers_per_block = tuple(int(v) for v in layers_per_block)
        self.kernel_sizes = tuple(int(v) for v in kernel_sizes)
        self.filter_counts = tuple(int(v) for v in filter_counts)
        self.fc_units = tuple(int(v) for v in fc_units)
        self.min_pool_layers = int(min_pool_layers)
        self.num_classes = int(num_classes)
        self.accuracy_input_shape = tuple(accuracy_input_shape)
        self.performance_input_shape = tuple(performance_input_shape)
        self.encoding = self._build_encoding()

    # ------------------------------------------------------------------ encoding
    def _build_encoding(self) -> EncodingScheme:
        genes: List[Gene] = []
        for block in range(1, self.num_blocks + 1):
            genes.append(Gene(f"block{block}_layers", self.layers_per_block))
            genes.append(Gene(f"block{block}_kernel", self.kernel_sizes))
            genes.append(Gene(f"block{block}_filters", self.filter_counts))
            genes.append(Gene(f"block{block}_pool", (False, True)))
        genes.append(Gene("fc1_present", (False, True)))
        genes.append(Gene("fc1_units", self.fc_units))
        genes.append(Gene("fc2_present", (False, True)))
        genes.append(Gene("fc2_units", self.fc_units))
        return EncodingScheme(genes)

    @property
    def num_genes(self) -> int:
        """Dimensionality of the genotype."""
        return self.encoding.num_genes

    def total_combinations(self) -> int:
        """Size of the unconstrained genotype space."""
        return self.encoding.total_combinations()

    # ------------------------------------------------------------------ validity
    def pool_count(self, indices: Sequence[int]) -> int:
        """Number of pooling layers encoded by the given genotype."""
        values = self.encoding.values(indices)
        return sum(
            1 for block in range(1, self.num_blocks + 1) if values[f"block{block}_pool"]
        )

    def is_valid(self, indices: Sequence[int]) -> bool:
        """Whether the genotype satisfies the search-space constraints.

        The two constraints from the paper are: at least ``min_pool_layers``
        pooling layers, and at least one of the two fully-connected layers
        present.
        """
        values = self.encoding.values(indices)
        pools = sum(
            1 for block in range(1, self.num_blocks + 1) if values[f"block{block}_pool"]
        )
        if pools < self.min_pool_layers:
            return False
        if not (values["fc1_present"] or values["fc2_present"]):
            return False
        return True

    def repair(self, indices: Sequence[int], rng: SeedLike = None) -> np.ndarray:
        """Return a valid genotype obtained by minimally editing ``indices``.

        Missing pooling layers are switched on at uniformly random blocks and
        the first fully-connected layer is enabled if neither is present.
        """
        rng = ensure_rng(rng)
        arr = self.encoding.validate_indices(indices).copy()
        values = self.encoding.values(arr)

        pool_positions = [
            self.encoding.gene_position(f"block{block}_pool")
            for block in range(1, self.num_blocks + 1)
        ]
        pool_gene = self.encoding.gene("block1_pool")
        on_index = pool_gene.index_of(True)
        current_pools = [pos for pos in pool_positions if arr[pos] == on_index]
        missing = self.min_pool_layers - len(current_pools)
        if missing > 0:
            off_positions = [pos for pos in pool_positions if arr[pos] != on_index]
            chosen = rng.choice(len(off_positions), size=missing, replace=False)
            for choice in np.atleast_1d(chosen):
                arr[off_positions[int(choice)]] = on_index

        if not (values["fc1_present"] or values["fc2_present"]):
            fc1_gene = self.encoding.gene("fc1_present")
            arr[self.encoding.gene_position("fc1_present")] = fc1_gene.index_of(True)
        return arr

    # ------------------------------------------------------------------ sampling
    def sample(self, rng: SeedLike = None) -> np.ndarray:
        """Sample a uniformly random *valid* genotype."""
        rng = ensure_rng(rng)
        indices = self.encoding.sample_indices(rng)
        if not self.is_valid(indices):
            indices = self.repair(indices, rng)
        return indices

    def sample_batch(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Sample ``count`` valid genotypes as a ``(count, num_genes)`` array."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        rng = ensure_rng(rng)
        return np.stack([self.sample(rng) for _ in range(count)])

    def neighbours(
        self, indices: Sequence[int], count: int, rng: SeedLike = None
    ) -> np.ndarray:
        """Sample ``count`` valid neighbours of a genotype (mutation + repair)."""
        rng = ensure_rng(rng)
        result = []
        for _ in range(count):
            mutated = self.encoding.mutate(indices, rng)
            if not self.is_valid(mutated):
                mutated = self.repair(mutated, rng)
            result.append(mutated)
        return np.stack(result)

    # ------------------------------------------------------------------ decoding
    def to_features(self, indices: Sequence[int]) -> np.ndarray:
        """Unit-cube feature vector for the Gaussian-process surrogates."""
        return self.encoding.to_unit(indices)

    def decode(
        self,
        indices: Sequence[int],
        input_shape: Optional[Tuple[int, int, int]] = None,
        num_classes: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Architecture:
        """Decode a genotype into a concrete :class:`Architecture`.

        Parameters
        ----------
        indices:
            Valid genotype (use :meth:`repair` beforehand if necessary).
        input_shape:
            Channels-first input shape; defaults to the accuracy input shape.
        num_classes:
            Classifier width; defaults to the space's ``num_classes``.
        name:
            Architecture name; defaults to a hash-like identifier.
        """
        if not self.is_valid(indices):
            raise ValueError(
                "genotype violates the search-space constraints; call repair() first"
            )
        values = self.encoding.values(indices)
        input_shape = tuple(input_shape or self.accuracy_input_shape)
        num_classes = int(num_classes if num_classes is not None else self.num_classes)
        name = name or self.candidate_name(indices)

        layers: List[LayerSpec] = []
        for block in range(1, self.num_blocks + 1):
            depth = int(values[f"block{block}_layers"])
            kernel = int(values[f"block{block}_kernel"])
            filters = int(values[f"block{block}_filters"])
            for layer_idx in range(1, depth + 1):
                layers.append(
                    Conv2D(
                        name=f"conv{block}_{layer_idx}",
                        out_channels=filters,
                        kernel_size=kernel,
                        stride=1,
                        padding="same",
                        batch_norm=True,
                    )
                )
            if values[f"block{block}_pool"]:
                layers.append(MaxPool2D(name=f"pool{block}", pool_size=2))
        layers.append(Flatten(name="flatten"))
        fc_index = 0
        if values["fc1_present"]:
            fc_index += 1
            layers.append(Dense(name=f"fc{fc_index}", units=int(values["fc1_units"])))
        if values["fc2_present"]:
            fc_index += 1
            layers.append(Dense(name=f"fc{fc_index}", units=int(values["fc2_units"])))
        layers.append(Dense(name="classifier", units=num_classes, activation="softmax"))
        return Architecture(name, input_shape, layers)

    def decode_for_performance(
        self, indices: Sequence[int], name: Optional[str] = None
    ) -> Architecture:
        """Decode with the performance-analysis input shape (224x224x3)."""
        return self.decode(
            indices, input_shape=self.performance_input_shape, name=name
        )

    def decode_for_accuracy(
        self, indices: Sequence[int], name: Optional[str] = None
    ) -> Architecture:
        """Decode with the accuracy-estimation input shape (CIFAR-10, 32x32x3)."""
        return self.decode(indices, input_shape=self.accuracy_input_shape, name=name)

    # ------------------------------------------------------------------ misc
    def candidate_name(self, indices: Sequence[int]) -> str:
        """Deterministic short name for a genotype."""
        arr = self.encoding.validate_indices(indices)
        digest = 0
        for value in arr:
            digest = (digest * 31 + int(value) + 1) % (16**8)
        return f"lens-{digest:08x}"

    def describe(self) -> str:
        """Human-readable description of the space and its constraints."""
        lines = [
            f"LensSearchSpace: {self.num_blocks} conv blocks, "
            f"{self.total_combinations():,} unconstrained genotypes",
            f"  layers per block: {list(self.layers_per_block)}",
            f"  kernel sizes: {list(self.kernel_sizes)}",
            f"  filter counts: {list(self.filter_counts)}",
            f"  fc units: {list(self.fc_units)}",
            f"  constraints: >= {self.min_pool_layers} pooling layers, >= 1 FC layer",
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """Serialisable configuration of the space."""
        return {
            "num_blocks": self.num_blocks,
            "layers_per_block": list(self.layers_per_block),
            "kernel_sizes": list(self.kernel_sizes),
            "filter_counts": list(self.filter_counts),
            "fc_units": list(self.fc_units),
            "min_pool_layers": self.min_pool_layers,
            "num_classes": self.num_classes,
            "accuracy_input_shape": list(self.accuracy_input_shape),
            "performance_input_shape": list(self.performance_input_shape),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "LensSearchSpace":
        """Reconstruct a search space from :meth:`to_dict` output."""
        return cls(
            num_blocks=data["num_blocks"],
            layers_per_block=data["layers_per_block"],
            kernel_sizes=data["kernel_sizes"],
            filter_counts=data["filter_counts"],
            fc_units=data["fc_units"],
            min_pool_layers=data["min_pool_layers"],
            num_classes=data["num_classes"],
            accuracy_input_shape=tuple(data["accuracy_input_shape"]),
            performance_input_shape=tuple(data["performance_input_shape"]),
        )
