"""Dataflow-graph view of an architecture: which layer boundaries may be cut.

The partitioner's original rule assumed a *linear* layer chain: any layer
boundary is structurally cuttable, and only the paper's shrinkage rule
(output smaller than the raw input) filters candidates.  Architectures with
skip connections break that assumption — cutting inside a residual block
would require shipping **two** tensors (the running activation *and* the
skip tensor) to the cloud, which the single-tensor transfer model of
Algorithm 1 cannot express.

A :class:`PartitionGraph` captures exactly the structural information the
partitioner needs: the number of layers in execution order plus the *skip
edges* ``(src, dst)`` — layer ``dst`` consumes the output of layer ``src``
in addition to the output of its direct predecessor.  A cut after layer
``j`` is legal iff no skip edge spans it strictly (``src < j < dst``): when
``src == j`` the transmitted tensor *is* the skip tensor, so the cut stays a
single-tensor transfer and remains legal.

Linear architectures (no skip edges) produce a graph that allows every
boundary, so the graph-aware enumeration degenerates to the original
linear-chain behaviour — the two are bit-identical on the ``lens-vgg``
space (see ``tests/test_partition_graph.py`` and
``benchmarks/bench_partition_spaces.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

#: A skip edge: layer ``dst`` additionally consumes the output of layer
#: ``src``.  ``src == -1`` denotes the raw network input.
SkipEdge = Tuple[int, int]

#: Sentinel source index denoting the network input tensor.
INPUT_NODE = -1


def normalize_skip_edges(edges: Iterable[Sequence[int]]) -> Tuple[SkipEdge, ...]:
    """Validate and canonicalise skip edges (sorted, deduplicated int pairs).

    Bounds against a concrete layer count are checked by
    :class:`PartitionGraph` (or :class:`~repro.nn.architecture.Architecture`);
    this helper only enforces the pair structure and ``src < dst`` ordering.
    """
    canonical: List[SkipEdge] = []
    for edge in edges:
        pair = tuple(int(v) for v in edge)
        if len(pair) != 2:
            raise ValueError(f"skip edge must be a (src, dst) pair, got {edge!r}")
        src, dst = pair
        if src < INPUT_NODE:
            raise ValueError(
                f"skip edge source must be >= {INPUT_NODE} (the network input), "
                f"got {src}"
            )
        if dst <= src:
            raise ValueError(
                f"skip edge must run forward (src < dst), got ({src}, {dst})"
            )
        canonical.append((src, dst))
    return tuple(sorted(set(canonical)))


@dataclass(frozen=True)
class PartitionGraph:
    """Cut-legality description of one concrete architecture.

    Parameters
    ----------
    num_layers:
        Number of layers in execution order.
    skip_edges:
        Non-chain data dependencies as ``(src, dst)`` pairs; ``src == -1``
        denotes the network input.  Edges must satisfy
        ``-1 <= src < dst < num_layers``.
    """

    num_layers: int
    skip_edges: Tuple[SkipEdge, ...] = ()

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {self.num_layers}")
        object.__setattr__(
            self, "skip_edges", normalize_skip_edges(self.skip_edges)
        )
        for src, dst in self.skip_edges:
            if dst >= self.num_layers:
                raise ValueError(
                    f"skip edge ({src}, {dst}) exceeds the layer count "
                    f"({self.num_layers})"
                )
        # Graphs key the engine's partition cache; hash once, not per lookup.
        object.__setattr__(
            self, "_hash", hash((self.num_layers, self.skip_edges))
        )

    def __hash__(self) -> int:
        return self._hash

    @classmethod
    def from_architecture(cls, architecture) -> "PartitionGraph":
        """Graph of any object with ``layers`` and ``skip_edges`` attributes."""
        return cls(
            num_layers=len(architecture.layers),
            skip_edges=tuple(getattr(architecture, "skip_edges", ())),
        )

    # ------------------------------------------------------------------ legality
    @property
    def is_linear(self) -> bool:
        """Whether the graph is a plain chain (every boundary cuttable)."""
        return not self.skip_edges

    def allows_cut_after(self, index: int) -> bool:
        """Whether the boundary after layer ``index`` is a single-tensor cut.

        A skip edge ``(src, dst)`` forbids every boundary it spans strictly
        (``src < index < dst``); a cut exactly at the edge's source remains
        legal because the transmitted tensor is the skip tensor itself.
        """
        if not -1 <= index < self.num_layers:
            raise IndexError(
                f"cut index {index} out of range [-1, {self.num_layers})"
            )
        return all(
            not (src < index < dst) for src, dst in self.skip_edges
        )

    def legal_cut_mask(self) -> np.ndarray:
        """Boolean mask over the ``num_layers - 1`` non-final boundaries.

        ``mask[j]`` is :meth:`allows_cut_after` ``(j)`` for
        ``j in range(num_layers - 1)`` — the vectorised form the batched
        partition costing broadcasts against per-candidate shrinkage masks.
        """
        mask = np.ones(self.num_layers - 1, dtype=bool)
        for src, dst in self.skip_edges:
            mask[src + 1 : dst] = False
        return mask

    def legal_cut_indices(self) -> List[int]:
        """Every structurally legal cut boundary, in layer order.

        The final boundary is excluded — cutting after the last layer is the
        All-Edge deployment, not a split.
        """
        return [
            index
            for index in range(self.num_layers - 1)
            if self.allows_cut_after(index)
        ]

    def blocked_cut_indices(self) -> List[int]:
        """Boundaries forbidden because a skip edge spans them."""
        return [
            index
            for index in range(self.num_layers - 1)
            if not self.allows_cut_after(index)
        ]

    # ------------------------------------------------------------------ misc
    def consumers_of(self, src: int) -> List[int]:
        """Layers that consume ``src``'s output through a skip edge."""
        return [d for s, d in self.skip_edges if s == src]

    def to_dict(self) -> Dict:
        """Serialisable description of the graph."""
        return {
            "num_layers": self.num_layers,
            "skip_edges": [list(edge) for edge in self.skip_edges],
        }

    def describe(self) -> str:
        """Human-readable one-liner for logs and docs."""
        if self.is_linear:
            return f"linear chain of {self.num_layers} layers (all cuts legal)"
        blocked = self.blocked_cut_indices()
        return (
            f"{self.num_layers} layers, {len(self.skip_edges)} skip edges, "
            f"{len(blocked)} of {self.num_layers - 1} boundaries blocked"
        )
