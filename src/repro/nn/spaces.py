"""The pluggable search-space protocol and its encoding-backed base class.

Every workload the library can search over is a *search space*: an object
that can sample genotypes, project them into the optimizer's unit cube,
mutate them into neighbours, decode them into concrete
:class:`~repro.nn.architecture.Architecture` objects, and describe the
partition legality of what it decodes.  :class:`SearchSpace` pins that
protocol down; :class:`EncodedSearchSpace` implements the generic half of it
on top of an :class:`~repro.nn.encoding.EncodingScheme`, so a new workload
only has to declare its genes, its validity rule and its ``decode``.

Spaces are addressable by name through
:data:`repro.api.registry.SEARCH_SPACES` (``search_space="resnet-v1"`` on a
:class:`~repro.api.envelopes.SearchRequest`); the three built-ins are

* ``"lens-vgg"`` — the paper's VGG-derived CNN space
  (:class:`~repro.nn.search_space.LensSearchSpace`, Fig. 4);
* ``"resnet-v1"`` — residual stages whose skip edges constrain partitioning
  (:class:`~repro.nn.resnet_space.ResNetSearchSpace`);
* ``"seq-conv1d"`` — a 1-D convolutional sequence workload
  (:class:`~repro.nn.seq_space.SeqConv1DSearchSpace`).
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.nn.architecture import Architecture
from repro.nn.encoding import EncodingScheme
from repro.nn.graph import PartitionGraph
from repro.utils.rng import SeedLike, ensure_rng

#: Name of the search space every request uses unless it says otherwise —
#: the paper's own VGG-derived space.  Schema-v1 request envelopes (which
#: predate the ``search_space`` field) upgrade to this value.
DEFAULT_SEARCH_SPACE = "lens-vgg"


class SearchSpace(abc.ABC):
    """Protocol every searchable workload implements.

    A space owns four responsibilities:

    * **sample** — draw valid genotypes (:meth:`sample`, :meth:`sample_batch`)
      and propose valid neighbours (:meth:`neighbours`);
    * **encode** — project genotypes into the optimizer's unit cube
      (:meth:`to_features`);
    * **decode** — turn genotypes into concrete architectures, once with the
      accuracy input shape and once with the performance input shape
      (:meth:`decode_for_accuracy` / :meth:`decode_for_performance`);
    * **partition legality** — describe which layer boundaries of a decoded
      architecture are cut-legal (:meth:`partition_graph`), so the
      partitioner never proposes a split that the workload's dataflow graph
      cannot express as a single-tensor transfer.

    ``space_name`` is the registry key the space answers to; decoded
    architectures and candidate names carry it for provenance.
    """

    #: Registry key and display name of the space.
    space_name: str = "custom"

    # ------------------------------------------------------------------ sampling
    @abc.abstractmethod
    def sample(self, rng: SeedLike = None) -> np.ndarray:
        """Sample one uniformly random *valid* genotype."""

    @abc.abstractmethod
    def sample_batch(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Sample ``count`` valid genotypes as a ``(count, num_genes)`` array."""

    @abc.abstractmethod
    def neighbours(
        self, indices: Sequence[int], count: int, rng: SeedLike = None
    ) -> np.ndarray:
        """Propose ``count`` valid neighbours of a genotype (mutate + repair)."""

    # ------------------------------------------------------------------ encoding
    @property
    @abc.abstractmethod
    def num_genes(self) -> int:
        """Dimensionality of the genotype."""

    @abc.abstractmethod
    def to_features(self, indices: Sequence[int]) -> np.ndarray:
        """Unit-cube feature vector for the Gaussian-process surrogates."""

    # ------------------------------------------------------------------ validity
    def is_valid(self, indices: Sequence[int]) -> bool:
        """Whether the genotype satisfies the space's constraints."""
        return True

    def repair(self, indices: Sequence[int], rng: SeedLike = None) -> np.ndarray:
        """Return a valid genotype obtained by minimally editing ``indices``.

        The default returns the input unchanged, which is only correct for
        spaces whose :meth:`is_valid` never rejects (every genotype valid by
        construction).  A space that overrides :meth:`is_valid` MUST also
        override :meth:`repair`; the sampling helpers check the repaired
        genotype and raise if the contract is broken, rather than feeding
        invalid genotypes into the search.
        """
        return np.asarray(indices, dtype=int)

    # ------------------------------------------------------------------ decoding
    @abc.abstractmethod
    def decode_for_accuracy(
        self, indices: Sequence[int], name: Optional[str] = None
    ) -> Architecture:
        """Decode with the input shape used for accuracy estimation."""

    @abc.abstractmethod
    def decode_for_performance(
        self, indices: Sequence[int], name: Optional[str] = None
    ) -> Architecture:
        """Decode with the input shape used for latency/energy estimation."""

    # ------------------------------------------------------------------ partitioning
    def partition_graph(self, architecture: Architecture) -> PartitionGraph:
        """Cut-legality graph of a decoded architecture.

        The default trusts the skip edges the space baked into the decoded
        architecture; spaces with out-of-band constraints may override.
        """
        return architecture.partition_graph()

    # ------------------------------------------------------------------ misc
    @staticmethod
    def genotype_digest(indices: Sequence[int]) -> str:
        """Deterministic 8-hex-digit digest of a genotype.

        Shared by every space's :meth:`candidate_name`, so candidate naming
        can only change for all spaces at once.
        """
        digest = 0
        for value in np.asarray(indices, dtype=int):
            digest = (digest * 31 + int(value) + 1) % (16 ** 8)
        return f"{digest:08x}"

    def candidate_name(self, indices: Sequence[int]) -> str:
        """Deterministic short name for a genotype."""
        return f"{self.space_name}-{self.genotype_digest(indices)}"

    def describe(self) -> str:
        """Human-readable description of the space."""
        return f"{type(self).__name__} ({self.space_name}): {self.num_genes} genes"


class EncodedSearchSpace(SearchSpace):
    """Generic :class:`SearchSpace` machinery over an :class:`EncodingScheme`.

    Subclasses must set four instance attributes in ``__init__`` —
    ``self.encoding`` (the gene layout, one
    :class:`~repro.nn.encoding.Gene` per decision variable) plus
    ``self.accuracy_input_shape`` and ``self.performance_input_shape``
    (the channels-first input shapes :meth:`decode_for_accuracy` /
    :meth:`decode_for_performance` decode with) — and implement
    :meth:`decode`, plus — when the unconstrained genotype space contains
    invalid points — :meth:`~SearchSpace.is_valid` and
    :meth:`~SearchSpace.repair`.  Sampling, batch sampling, mutation-based
    neighbourhoods and the unit-cube projection all come for free and behave
    identically across every space, which keeps strategies space-agnostic.
    """

    #: Required instance attributes (set them in ``__init__``).
    encoding: EncodingScheme
    accuracy_input_shape: Tuple[int, ...]
    performance_input_shape: Tuple[int, ...]

    # ------------------------------------------------------------------ encoding
    @property
    def num_genes(self) -> int:
        """Dimensionality of the genotype."""
        return self.encoding.num_genes

    def total_combinations(self) -> int:
        """Size of the unconstrained genotype space."""
        return self.encoding.total_combinations()

    def to_features(self, indices: Sequence[int]) -> np.ndarray:
        """Unit-cube feature vector for the Gaussian-process surrogates."""
        return self.encoding.to_unit(indices)

    # ------------------------------------------------------------------ sampling
    def _repair_checked(self, indices: np.ndarray, rng) -> np.ndarray:
        """Repair an invalid genotype, enforcing the repair contract."""
        repaired = self.repair(indices, rng)
        if not self.is_valid(repaired):
            raise ValueError(
                f"{type(self).__name__}.repair returned an invalid genotype; "
                "spaces overriding is_valid must implement a matching repair"
            )
        return repaired

    def sample(self, rng: SeedLike = None) -> np.ndarray:
        """Sample a uniformly random *valid* genotype."""
        rng = ensure_rng(rng)
        indices = self.encoding.sample_indices(rng)
        if not self.is_valid(indices):
            indices = self._repair_checked(indices, rng)
        return indices

    def sample_batch(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Sample ``count`` valid genotypes as a ``(count, num_genes)`` array."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        rng = ensure_rng(rng)
        return np.stack([self.sample(rng) for _ in range(count)])

    def neighbours(
        self, indices: Sequence[int], count: int, rng: SeedLike = None
    ) -> np.ndarray:
        """Sample ``count`` valid neighbours of a genotype (mutation + repair)."""
        rng = ensure_rng(rng)
        result = []
        for _ in range(count):
            mutated = self.encoding.mutate(indices, rng)
            if not self.is_valid(mutated):
                mutated = self._repair_checked(mutated, rng)
            result.append(mutated)
        return np.stack(result)

    # ------------------------------------------------------------------ decoding
    @abc.abstractmethod
    def decode(
        self,
        indices: Sequence[int],
        input_shape: Optional[Tuple[int, ...]] = None,
        num_classes: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Architecture:
        """Decode a genotype into a concrete :class:`Architecture`."""

    def decode_for_accuracy(
        self, indices: Sequence[int], name: Optional[str] = None
    ) -> Architecture:
        """Decode with the accuracy-estimation input shape."""
        return self.decode(
            indices, input_shape=self.accuracy_input_shape, name=name
        )

    def decode_for_performance(
        self, indices: Sequence[int], name: Optional[str] = None
    ) -> Architecture:
        """Decode with the performance-analysis input shape."""
        return self.decode(
            indices, input_shape=self.performance_input_shape, name=name
        )

    # ------------------------------------------------------------------ misc
    def candidate_name(self, indices: Sequence[int]) -> str:
        """Deterministic short name for a genotype."""
        arr = self.encoding.validate_indices(indices)
        return super().candidate_name(arr)
