"""Layer specifications for the neural-network intermediate representation.

The NAS never instantiates weight tensors while searching: it only needs, for
every layer of a candidate architecture, the *shape* of its output feature
map, its parameter count, its arithmetic cost (multiply-accumulate
operations), and the number of bytes its output occupies when shipped over a
wireless link.  The classes in this module capture exactly that information.

Shapes follow the channels-first convention used throughout the library:

* 2-D convolutional feature maps are ``(channels, height, width)`` tuples,
* 1-D sequence feature maps are ``(channels, length)`` tuples,
* flattened / fully-connected activations are ``(features,)`` tuples.

Activation and batch-normalisation operations are *fused* into their preceding
layer, mirroring the treatment in the paper's motivational example ("any
activation or normalization layers ... are fused with their preceding layers
as they incur relatively small latency, and the size of feature maps does not
change between them").
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple, Union

from repro.utils.validation import require_in, require_positive

Shape = Tuple[int, ...]

#: Bytes used per activation element when feature maps are transmitted.
#: Single-precision floats, as produced by Caffe/PyTorch inference.
BYTES_PER_ELEMENT = 4

#: Padding modes understood by :class:`Conv2D`.
PADDING_MODES = ("same", "valid")

#: Activation functions the IR records (used by the numpy trainer).
ACTIVATIONS = ("relu", "softmax", "linear")


def element_count(shape: Shape) -> int:
    """Number of scalar elements in a feature map of the given shape."""
    count = 1
    for dim in shape:
        count *= int(dim)
    return count


def shape_bytes(shape: Shape, bytes_per_element: int = BYTES_PER_ELEMENT) -> int:
    """Size in bytes of a feature map of the given shape."""
    return element_count(shape) * bytes_per_element


@dataclass(frozen=True)
class LayerSpec:
    """Base class for all layer specifications.

    Sub-classes must implement :meth:`output_shape`, :meth:`param_count` and
    :meth:`macs`; the generic helpers (:meth:`flops`, :meth:`output_bytes`,
    :meth:`weight_bytes`) are derived from those.
    """

    name: str

    @property
    def layer_type(self) -> str:
        """Short lowercase identifier for the layer family (``conv``, ``fc`` ...)."""
        raise NotImplementedError

    @property
    def is_partition_candidate(self) -> bool:
        """Whether the layer's output boundary may serve as an edge/cloud split.

        Every layer that produces an activation tensor is a candidate; purely
        structural layers (e.g. :class:`Flatten`) are excluded because their
        output is byte-identical to their input.
        """
        return True

    def output_shape(self, input_shape: Shape) -> Shape:
        """Shape of the layer output given ``input_shape``."""
        raise NotImplementedError

    def param_count(self, input_shape: Shape) -> int:
        """Number of trainable parameters."""
        raise NotImplementedError

    def macs(self, input_shape: Shape) -> int:
        """Multiply-accumulate operations for a single input sample."""
        raise NotImplementedError

    def flops(self, input_shape: Shape) -> int:
        """Floating-point operations (2 per multiply-accumulate)."""
        return 2 * self.macs(input_shape)

    def output_bytes(self, input_shape: Shape) -> int:
        """Bytes occupied by the layer's output activation tensor."""
        return shape_bytes(self.output_shape(input_shape))

    def weight_bytes(self, input_shape: Shape) -> int:
        """Bytes occupied by the layer's parameters."""
        return self.param_count(input_shape) * BYTES_PER_ELEMENT

    def to_dict(self) -> Dict:
        """Serialisable description of the layer."""
        data = {"layer_type": self.layer_type}
        for fld in fields(self):
            data[fld.name] = getattr(self, fld.name)
        return data


@dataclass(frozen=True)
class Conv2D(LayerSpec):
    """2-D convolution with fused activation and optional batch norm.

    Parameters
    ----------
    out_channels:
        Number of output filters.
    kernel_size:
        Side length of the (square) kernel.
    stride:
        Spatial stride; 1 in the VGG-derived search space.
    padding:
        ``"same"`` keeps the spatial size (for stride 1), ``"valid"`` applies
        no padding, or an explicit integer number of padding pixels per side
        (needed by reference models such as AlexNet's conv1).
    activation:
        Fused activation function, ``"relu"`` by default.
    batch_norm:
        Whether a fused batch-normalisation follows the convolution (adds
        2 * out_channels parameters, negligible compute).
    """

    out_channels: int = 64
    kernel_size: int = 3
    stride: int = 1
    padding: Union[int, str] = "same"
    activation: str = "relu"
    batch_norm: bool = False

    def __post_init__(self) -> None:
        require_positive(self.out_channels, "out_channels")
        require_positive(self.kernel_size, "kernel_size")
        require_positive(self.stride, "stride")
        if isinstance(self.padding, str):
            require_in(self.padding, PADDING_MODES, "padding")
        elif isinstance(self.padding, (int,)) and not isinstance(self.padding, bool):
            if self.padding < 0:
                raise ValueError(f"padding must be >= 0, got {self.padding}")
        else:
            raise TypeError(
                f"padding must be 'same', 'valid' or a non-negative int, got {self.padding!r}"
            )
        require_in(self.activation, ACTIVATIONS, "activation")

    @property
    def layer_type(self) -> str:
        return "conv"

    @property
    def padding_pixels(self) -> int:
        """Explicit per-side padding implied by the padding setting.

        For ``"same"`` this is the padding that keeps the spatial size at
        stride 1 (``(kernel - 1) // 2``); for ``"valid"`` it is zero.
        """
        if isinstance(self.padding, str):
            return (self.kernel_size - 1) // 2 if self.padding == "same" else 0
        return int(self.padding)

    def _spatial_out(self, size: int) -> int:
        if self.padding == "same":
            return max(1, -(-size // self.stride))  # ceil division
        pad = self.padding_pixels
        out = (size + 2 * pad - self.kernel_size) // self.stride + 1
        if out < 1:
            raise ValueError(
                f"layer {self.name!r}: kernel {self.kernel_size} does not fit "
                f"input spatial size {size} with padding {pad}"
            )
        return out

    def output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 3:
            raise ValueError(
                f"Conv2D {self.name!r} expects a (C, H, W) input, got {input_shape}"
            )
        _, height, width = input_shape
        return (self.out_channels, self._spatial_out(height), self._spatial_out(width))

    def param_count(self, input_shape: Shape) -> int:
        in_channels = input_shape[0]
        weights = self.out_channels * in_channels * self.kernel_size * self.kernel_size
        biases = self.out_channels
        bn = 2 * self.out_channels if self.batch_norm else 0
        return weights + biases + bn

    def macs(self, input_shape: Shape) -> int:
        in_channels = input_shape[0]
        out_c, out_h, out_w = self.output_shape(input_shape)
        return out_c * out_h * out_w * in_channels * self.kernel_size * self.kernel_size


@dataclass(frozen=True)
class MaxPool2D(LayerSpec):
    """Max-pooling layer.

    The search space uses 2x2 pooling with stride 2; AlexNet uses 3x3 with
    stride 2, both expressible here.
    """

    pool_size: int = 2
    stride: int = 0  # 0 means "same as pool_size"

    def __post_init__(self) -> None:
        require_positive(self.pool_size, "pool_size")
        if self.stride < 0:
            raise ValueError(f"stride must be >= 0, got {self.stride}")

    @property
    def layer_type(self) -> str:
        return "pool"

    @property
    def effective_stride(self) -> int:
        return self.stride if self.stride > 0 else self.pool_size

    def output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 3:
            raise ValueError(
                f"MaxPool2D {self.name!r} expects a (C, H, W) input, got {input_shape}"
            )
        channels, height, width = input_shape
        stride = self.effective_stride
        out_h = (height - self.pool_size) // stride + 1
        out_w = (width - self.pool_size) // stride + 1
        if out_h < 1 or out_w < 1:
            # Degenerate pooling on tiny inputs collapses to a 1x1 map rather
            # than failing; the search space guards against this but reference
            # models on small inputs may legitimately hit it.
            out_h = max(1, out_h)
            out_w = max(1, out_w)
        return (channels, out_h, out_w)

    def param_count(self, input_shape: Shape) -> int:
        return 0

    def macs(self, input_shape: Shape) -> int:
        # Comparisons, not multiplies; counted as one op per output element
        # per window element so pooling is not free but remains negligible.
        out = self.output_shape(input_shape)
        return element_count(out) * self.pool_size * self.pool_size


@dataclass(frozen=True)
class Conv1D(LayerSpec):
    """1-D convolution over a channels-first sequence, fused like :class:`Conv2D`.

    Inputs are ``(channels, length)`` tuples — sensor streams, audio frames
    or token embeddings.  Cost accounting mirrors :class:`Conv2D` with one
    spatial dimension; the hardware predictors cost the family through the
    shared ``conv`` prediction models (see
    :func:`repro.hardware.features.prediction_family`).
    """

    out_channels: int = 64
    kernel_size: int = 3
    stride: int = 1
    padding: Union[int, str] = "same"
    activation: str = "relu"
    batch_norm: bool = False

    def __post_init__(self) -> None:
        require_positive(self.out_channels, "out_channels")
        require_positive(self.kernel_size, "kernel_size")
        require_positive(self.stride, "stride")
        if isinstance(self.padding, str):
            require_in(self.padding, PADDING_MODES, "padding")
        elif isinstance(self.padding, int) and not isinstance(self.padding, bool):
            if self.padding < 0:
                raise ValueError(f"padding must be >= 0, got {self.padding}")
        else:
            raise TypeError(
                f"padding must be 'same', 'valid' or a non-negative int, got {self.padding!r}"
            )
        require_in(self.activation, ACTIVATIONS, "activation")

    @property
    def layer_type(self) -> str:
        return "conv1d"

    @property
    def padding_elements(self) -> int:
        """Explicit per-side padding implied by the padding setting."""
        if isinstance(self.padding, str):
            return (self.kernel_size - 1) // 2 if self.padding == "same" else 0
        return int(self.padding)

    def _length_out(self, length: int) -> int:
        if self.padding == "same":
            return max(1, -(-length // self.stride))  # ceil division
        pad = self.padding_elements
        out = (length + 2 * pad - self.kernel_size) // self.stride + 1
        if out < 1:
            raise ValueError(
                f"layer {self.name!r}: kernel {self.kernel_size} does not fit "
                f"input length {length} with padding {pad}"
            )
        return out

    def output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 2:
            raise ValueError(
                f"Conv1D {self.name!r} expects a (C, L) input, got {input_shape}"
            )
        _, length = input_shape
        return (self.out_channels, self._length_out(length))

    def param_count(self, input_shape: Shape) -> int:
        in_channels = input_shape[0]
        weights = self.out_channels * in_channels * self.kernel_size
        biases = self.out_channels
        bn = 2 * self.out_channels if self.batch_norm else 0
        return weights + biases + bn

    def macs(self, input_shape: Shape) -> int:
        in_channels = input_shape[0]
        out_c, out_l = self.output_shape(input_shape)
        return out_c * out_l * in_channels * self.kernel_size


@dataclass(frozen=True)
class MaxPool1D(LayerSpec):
    """Max-pooling over a channels-first sequence."""

    pool_size: int = 2
    stride: int = 0  # 0 means "same as pool_size"

    def __post_init__(self) -> None:
        require_positive(self.pool_size, "pool_size")
        if self.stride < 0:
            raise ValueError(f"stride must be >= 0, got {self.stride}")

    @property
    def layer_type(self) -> str:
        return "pool1d"

    @property
    def effective_stride(self) -> int:
        return self.stride if self.stride > 0 else self.pool_size

    def output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 2:
            raise ValueError(
                f"MaxPool1D {self.name!r} expects a (C, L) input, got {input_shape}"
            )
        channels, length = input_shape
        out_l = (length - self.pool_size) // self.effective_stride + 1
        # Degenerate pooling on short sequences collapses to length 1 rather
        # than failing, matching the 2-D pooling behaviour on tiny inputs.
        return (channels, max(1, out_l))

    def param_count(self, input_shape: Shape) -> int:
        return 0

    def macs(self, input_shape: Shape) -> int:
        # One comparison per output element per window element, as in 2-D.
        return element_count(self.output_shape(input_shape)) * self.pool_size


@dataclass(frozen=True)
class Flatten(LayerSpec):
    """Reshape a (C, H, W) feature map into a flat feature vector."""

    @property
    def layer_type(self) -> str:
        return "flatten"

    @property
    def is_partition_candidate(self) -> bool:
        return False

    def output_shape(self, input_shape: Shape) -> Shape:
        return (element_count(input_shape),)

    def param_count(self, input_shape: Shape) -> int:
        return 0

    def macs(self, input_shape: Shape) -> int:
        return 0


@dataclass(frozen=True)
class Dense(LayerSpec):
    """Fully-connected layer with fused activation."""

    units: int = 4096
    activation: str = "relu"

    def __post_init__(self) -> None:
        require_positive(self.units, "units")
        require_in(self.activation, ACTIVATIONS, "activation")

    @property
    def layer_type(self) -> str:
        return "fc"

    def output_shape(self, input_shape: Shape) -> Shape:
        return (self.units,)

    def _in_features(self, input_shape: Shape) -> int:
        return element_count(input_shape)

    def param_count(self, input_shape: Shape) -> int:
        return self._in_features(input_shape) * self.units + self.units

    def macs(self, input_shape: Shape) -> int:
        return self._in_features(input_shape) * self.units


@dataclass(frozen=True)
class Dropout(LayerSpec):
    """Dropout regularisation layer (no inference-time cost or shape change)."""

    rate: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate < 1.0):
            raise ValueError(f"rate must be in [0, 1), got {self.rate}")

    @property
    def layer_type(self) -> str:
        return "dropout"

    @property
    def is_partition_candidate(self) -> bool:
        return False

    def output_shape(self, input_shape: Shape) -> Shape:
        return tuple(input_shape)

    def param_count(self, input_shape: Shape) -> int:
        return 0

    def macs(self, input_shape: Shape) -> int:
        return 0


LAYER_CLASSES = {
    "conv": Conv2D,
    "conv1d": Conv1D,
    "pool": MaxPool2D,
    "pool1d": MaxPool1D,
    "flatten": Flatten,
    "fc": Dense,
    "dropout": Dropout,
}


def layer_from_dict(data: Dict) -> LayerSpec:
    """Reconstruct a layer spec from :meth:`LayerSpec.to_dict` output."""
    data = dict(data)
    layer_type = data.pop("layer_type", None)
    if layer_type not in LAYER_CLASSES:
        raise ValueError(f"unknown layer type {layer_type!r}")
    return LAYER_CLASSES[layer_type](**data)
