"""ResNet-style residual search space (``"resnet-v1"``).

The space searches over a stem convolution followed by ``num_stages``
residual stages.  Stage ``s`` downsamples with a 2x2 max-pool, adapts the
channel count with a *transition* convolution, and then applies 1-3
residual blocks of two same-shaped convolutions each:

.. code-block:: text

    x ── pool ── transition ──┬── conv_a ── conv_b ──(+)── ...
                              └───────────────────────┘
                                  identity skip edge

Because the skip path is an identity (channels are changed only by the
transition layer, never inside a block), every residual add joins tensors
of identical shape, and each block contributes one
``(block_input, conv_b)`` skip edge to the decoded
:class:`~repro.nn.architecture.Architecture`.  The partitioner therefore
may cut *between* blocks (the skip tensor is exactly the transmitted
tensor) but never *inside* one — the constraint the linear-chain rule of
the original partitioner could not express.

Per-stage genes: number of residual blocks, kernel size and channel width.
Head genes: an optional hidden fully-connected layer and its width.  Every
genotype is structurally valid (pooling is built in, the classifier always
exists), so ``is_valid`` is always true and ``repair`` is the identity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.nn.architecture import Architecture
from repro.nn.encoding import EncodingScheme, Gene
from repro.nn.graph import SkipEdge
from repro.nn.layers import Conv2D, Dense, Flatten, LayerSpec, MaxPool2D
from repro.nn.spaces import EncodedSearchSpace

#: Default per-stage gene choices.
DEFAULT_BLOCKS_PER_STAGE = (1, 2, 3)
DEFAULT_KERNEL_SIZES = (3, 5)
DEFAULT_STAGE_WIDTHS = (24, 36, 64, 96, 128)
DEFAULT_FC_UNITS = (256, 512, 1024, 2048)
DEFAULT_NUM_STAGES = 4

#: Supported stage-downsampling styles (see :class:`ResNetSearchSpace`).
DOWNSAMPLE_STYLES = ("pool", "stride")


class ResNetSearchSpace(EncodedSearchSpace):
    """Residual CNN search space whose decoded models carry skip edges.

    Parameters
    ----------
    num_stages:
        Number of residual stages; each stage halves the spatial size.
    blocks_per_stage / kernel_sizes / stage_widths / fc_units:
        Admissible values for the per-stage and head genes.
    num_classes:
        Width of the final softmax classifier.
    accuracy_input_shape / performance_input_shape:
        Input shapes for accuracy estimation and latency/energy analysis,
        matching the conventions of the ``lens-vgg`` space.
    downsample:
        How each stage halves the spatial size: ``"pool"`` (the default — a
        2x2 max-pool followed by a 1x1 transition convolution) or
        ``"stride"`` (a single stride-2 3x3 convolution doing both jobs,
        the ResNet-paper style).
    projection_shortcuts:
        When true, the *first* block of every stage takes its shortcut from
        the stage input instead of the downsampled tensor, i.e. the skip
        edge spans the downsampling layers (a projection shortcut).  The
        spanning edge makes cuts at the stage boundary illegal for the
        partitioner, which changes which layers
        :class:`~repro.partition.graph.PartitionGraph` may cut after.
    """

    space_name = "resnet-v1"

    def __init__(
        self,
        num_stages: int = DEFAULT_NUM_STAGES,
        blocks_per_stage: Sequence[int] = DEFAULT_BLOCKS_PER_STAGE,
        kernel_sizes: Sequence[int] = DEFAULT_KERNEL_SIZES,
        stage_widths: Sequence[int] = DEFAULT_STAGE_WIDTHS,
        fc_units: Sequence[int] = DEFAULT_FC_UNITS,
        num_classes: int = 10,
        accuracy_input_shape: Tuple[int, int, int] = (3, 32, 32),
        performance_input_shape: Tuple[int, int, int] = (3, 224, 224),
        downsample: str = "pool",
        projection_shortcuts: bool = False,
    ):
        if num_stages < 1:
            raise ValueError(f"num_stages must be >= 1, got {num_stages}")
        if any(b < 1 for b in blocks_per_stage):
            raise ValueError(
                f"blocks_per_stage must be >= 1, got {tuple(blocks_per_stage)}"
            )
        if downsample not in DOWNSAMPLE_STYLES:
            raise ValueError(
                f"downsample must be one of {DOWNSAMPLE_STYLES}, got {downsample!r}"
            )
        self.downsample = str(downsample)
        self.projection_shortcuts = bool(projection_shortcuts)
        self.num_stages = int(num_stages)
        self.blocks_per_stage = tuple(int(v) for v in blocks_per_stage)
        self.kernel_sizes = tuple(int(v) for v in kernel_sizes)
        self.stage_widths = tuple(int(v) for v in stage_widths)
        self.fc_units = tuple(int(v) for v in fc_units)
        self.num_classes = int(num_classes)
        self.accuracy_input_shape = tuple(accuracy_input_shape)
        self.performance_input_shape = tuple(performance_input_shape)
        self.encoding = self._build_encoding()

    # ------------------------------------------------------------------ encoding
    def _build_encoding(self) -> EncodingScheme:
        genes: List[Gene] = []
        for stage in range(1, self.num_stages + 1):
            genes.append(Gene(f"stage{stage}_blocks", self.blocks_per_stage))
            genes.append(Gene(f"stage{stage}_kernel", self.kernel_sizes))
            genes.append(Gene(f"stage{stage}_width", self.stage_widths))
        genes.append(Gene("fc_present", (False, True)))
        genes.append(Gene("fc_units", self.fc_units))
        return EncodingScheme(genes)

    # ------------------------------------------------------------------ decoding
    def decode(
        self,
        indices: Sequence[int],
        input_shape: Optional[Tuple[int, ...]] = None,
        num_classes: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Architecture:
        """Decode a genotype into an :class:`Architecture` with skip edges.

        Layers are emitted in execution order (the residual adds are fused
        into each block's second convolution); the returned architecture's
        ``skip_edges`` mark every block's identity shortcut.
        """
        values = self.encoding.values(indices)
        input_shape = tuple(input_shape or self.accuracy_input_shape)
        num_classes = int(num_classes if num_classes is not None else self.num_classes)
        name = name or self.candidate_name(indices)

        layers: List[LayerSpec] = []
        skip_edges: List[SkipEdge] = []
        layers.append(
            Conv2D(
                name="stem",
                out_channels=int(values["stage1_width"]),
                kernel_size=3,
                padding="same",
                batch_norm=True,
            )
        )
        for stage in range(1, self.num_stages + 1):
            width = int(values[f"stage{stage}_width"])
            kernel = int(values[f"stage{stage}_kernel"])
            blocks = int(values[f"stage{stage}_blocks"])
            stage_input = len(layers) - 1
            if self.downsample == "stride":
                # one stride-2 convolution downsamples and adapts channels
                layers.append(
                    Conv2D(
                        name=f"stage{stage}_downsample",
                        out_channels=width,
                        kernel_size=3,
                        stride=2,
                        padding="same",
                        batch_norm=True,
                    )
                )
            else:
                layers.append(MaxPool2D(name=f"stage{stage}_pool", pool_size=2))
                layers.append(
                    Conv2D(
                        name=f"stage{stage}_transition",
                        out_channels=width,
                        kernel_size=1,
                        padding="same",
                        batch_norm=True,
                    )
                )
            for block in range(1, blocks + 1):
                block_input = len(layers) - 1
                if block == 1 and self.projection_shortcuts:
                    # the projection shortcut spans the downsampling layers,
                    # so the partitioner may not cut at the stage boundary
                    block_input = stage_input
                for half in ("a", "b"):
                    layers.append(
                        Conv2D(
                            name=f"stage{stage}_block{block}_{half}",
                            out_channels=width,
                            kernel_size=kernel,
                            padding="same",
                            batch_norm=True,
                        )
                    )
                skip_edges.append((block_input, len(layers) - 1))
        layers.append(Flatten(name="flatten"))
        if values["fc_present"]:
            layers.append(Dense(name="fc1", units=int(values["fc_units"])))
        layers.append(Dense(name="classifier", units=num_classes, activation="softmax"))
        return Architecture(name, input_shape, layers, skip_edges=tuple(skip_edges))

    # ------------------------------------------------------------------ misc
    def describe(self) -> str:
        """Human-readable description of the space and its structure."""
        lines = [
            f"ResNetSearchSpace: {self.num_stages} residual stages, "
            f"{self.total_combinations():,} genotypes",
            f"  blocks per stage: {list(self.blocks_per_stage)}",
            f"  kernel sizes: {list(self.kernel_sizes)}",
            f"  stage widths: {list(self.stage_widths)}",
            f"  fc units: {list(self.fc_units)}",
            f"  downsampling: {self.downsample}"
            + (" (projection shortcuts)" if self.projection_shortcuts else ""),
            "  constraints: residual skip edges forbid cuts inside blocks"
            + (
                " and at stage boundaries"
                if self.projection_shortcuts
                else ""
            ),
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """Serialisable configuration of the space."""
        return {
            "num_stages": self.num_stages,
            "blocks_per_stage": list(self.blocks_per_stage),
            "kernel_sizes": list(self.kernel_sizes),
            "stage_widths": list(self.stage_widths),
            "fc_units": list(self.fc_units),
            "num_classes": self.num_classes,
            "accuracy_input_shape": list(self.accuracy_input_shape),
            "performance_input_shape": list(self.performance_input_shape),
            "downsample": self.downsample,
            "projection_shortcuts": self.projection_shortcuts,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ResNetSearchSpace":
        """Reconstruct a search space from :meth:`to_dict` output."""
        return cls(
            num_stages=data["num_stages"],
            blocks_per_stage=data["blocks_per_stage"],
            kernel_sizes=data["kernel_sizes"],
            stage_widths=data["stage_widths"],
            fc_units=data["fc_units"],
            num_classes=data["num_classes"],
            accuracy_input_shape=tuple(data["accuracy_input_shape"]),
            performance_input_shape=tuple(data["performance_input_shape"]),
            downsample=data.get("downsample", "pool"),
            projection_shortcuts=bool(data.get("projection_shortcuts", False)),
        )
