"""Neural-network intermediate representation and search-space definitions."""

from repro.nn.alexnet import build_alexnet
from repro.nn.architecture import Architecture, LayerSummary, stack_layers
from repro.nn.encoding import EncodingScheme, Gene
from repro.nn.graph import INPUT_NODE, PartitionGraph, SkipEdge, normalize_skip_edges
from repro.nn.layers import (
    BYTES_PER_ELEMENT,
    Conv1D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LayerSpec,
    MaxPool1D,
    MaxPool2D,
    element_count,
    layer_from_dict,
    shape_bytes,
)
from repro.nn.resnet_space import ResNetSearchSpace
from repro.nn.search_space import LensSearchSpace
from repro.nn.seq_space import SeqConv1DSearchSpace
from repro.nn.spaces import DEFAULT_SEARCH_SPACE, EncodedSearchSpace, SearchSpace
from repro.nn.vgg import build_vgg16, build_vgg_like

__all__ = [
    "Architecture",
    "LayerSummary",
    "stack_layers",
    "EncodingScheme",
    "Gene",
    "INPUT_NODE",
    "PartitionGraph",
    "SkipEdge",
    "normalize_skip_edges",
    "BYTES_PER_ELEMENT",
    "Conv1D",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "LayerSpec",
    "MaxPool1D",
    "MaxPool2D",
    "element_count",
    "layer_from_dict",
    "shape_bytes",
    "DEFAULT_SEARCH_SPACE",
    "EncodedSearchSpace",
    "SearchSpace",
    "LensSearchSpace",
    "ResNetSearchSpace",
    "SeqConv1DSearchSpace",
    "build_alexnet",
    "build_vgg16",
    "build_vgg_like",
]
