"""Neural-network intermediate representation and search-space definitions."""

from repro.nn.alexnet import build_alexnet
from repro.nn.architecture import Architecture, LayerSummary, stack_layers
from repro.nn.encoding import EncodingScheme, Gene
from repro.nn.layers import (
    BYTES_PER_ELEMENT,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LayerSpec,
    MaxPool2D,
    element_count,
    layer_from_dict,
    shape_bytes,
)
from repro.nn.search_space import LensSearchSpace
from repro.nn.vgg import build_vgg16, build_vgg_like

__all__ = [
    "Architecture",
    "LayerSummary",
    "stack_layers",
    "EncodingScheme",
    "Gene",
    "BYTES_PER_ELEMENT",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "LayerSpec",
    "MaxPool2D",
    "element_count",
    "layer_from_dict",
    "shape_bytes",
    "LensSearchSpace",
    "build_alexnet",
    "build_vgg16",
    "build_vgg_like",
]
