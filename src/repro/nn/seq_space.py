"""1-D convolutional sequence search space (``"seq-conv1d"``).

A non-vision workload: multi-channel sensor/audio streams classified with a
stack of 1-D convolutional blocks — the kind of model deployed for keyword
spotting or IMU activity recognition on edge devices.  Each block varies

* the number of :class:`~repro.nn.layers.Conv1D` layers (1 or 2),
* the kernel size (3, 5 or 9 taps),
* the number of filters,
* whether a 4x max-pool follows the block.

Heads mirror the CNN spaces: an optional hidden fully-connected layer plus
the softmax classifier.  At least ``min_pool_layers`` pooling layers are
required so the sequence shrinks enough for edge/cloud splits to exist —
the same role the pooling constraint plays in the ``lens-vgg`` space.

Accuracy is estimated on short training windows
(``accuracy_input_shape=(6, 256)``), while latency/energy analysis uses a
full streaming window (``performance_input_shape=(6, 16000)``, 16k samples
of 6-channel 8-bit input = 96 kB uploaded under All-Cloud).  Decoded
architectures are plain chains, so every boundary is cut-legal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.architecture import Architecture
from repro.nn.encoding import EncodingScheme, Gene
from repro.nn.layers import Conv1D, Dense, Flatten, LayerSpec, MaxPool1D
from repro.nn.spaces import EncodedSearchSpace
from repro.utils.rng import SeedLike, ensure_rng

#: Default gene choices of the sequence space.
DEFAULT_LAYERS_PER_BLOCK = (1, 2)
DEFAULT_KERNEL_SIZES = (3, 5, 9)
DEFAULT_FILTER_COUNTS = (16, 32, 64, 128)
DEFAULT_FC_UNITS = (64, 128, 256)
DEFAULT_NUM_BLOCKS = 4
DEFAULT_MIN_POOL_LAYERS = 3
DEFAULT_POOL_SIZE = 4


class SeqConv1DSearchSpace(EncodedSearchSpace):
    """Sequence-model search space over 1-D convolutional blocks.

    Parameters
    ----------
    num_blocks:
        Number of convolutional blocks.
    layers_per_block / kernel_sizes / filter_counts / fc_units:
        Admissible values for the per-block and head genes.
    min_pool_layers:
        Minimum number of pooling layers any valid genotype must enable.
    pool_size:
        Window (and stride) of each pooling layer.
    num_classes:
        Width of the final softmax classifier (e.g. 12 keywords).
    accuracy_input_shape / performance_input_shape:
        ``(channels, length)`` input shapes for accuracy estimation and for
        latency/energy analysis.
    """

    space_name = "seq-conv1d"

    def __init__(
        self,
        num_blocks: int = DEFAULT_NUM_BLOCKS,
        layers_per_block: Sequence[int] = DEFAULT_LAYERS_PER_BLOCK,
        kernel_sizes: Sequence[int] = DEFAULT_KERNEL_SIZES,
        filter_counts: Sequence[int] = DEFAULT_FILTER_COUNTS,
        fc_units: Sequence[int] = DEFAULT_FC_UNITS,
        min_pool_layers: int = DEFAULT_MIN_POOL_LAYERS,
        pool_size: int = DEFAULT_POOL_SIZE,
        num_classes: int = 12,
        accuracy_input_shape: Tuple[int, int] = (6, 256),
        performance_input_shape: Tuple[int, int] = (6, 16000),
    ):
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        if min_pool_layers > num_blocks:
            raise ValueError(
                f"min_pool_layers ({min_pool_layers}) cannot exceed "
                f"num_blocks ({num_blocks})"
            )
        self.num_blocks = int(num_blocks)
        self.layers_per_block = tuple(int(v) for v in layers_per_block)
        self.kernel_sizes = tuple(int(v) for v in kernel_sizes)
        self.filter_counts = tuple(int(v) for v in filter_counts)
        self.fc_units = tuple(int(v) for v in fc_units)
        self.min_pool_layers = int(min_pool_layers)
        self.pool_size = int(pool_size)
        self.num_classes = int(num_classes)
        self.accuracy_input_shape = tuple(accuracy_input_shape)
        self.performance_input_shape = tuple(performance_input_shape)
        self.encoding = self._build_encoding()

    # ------------------------------------------------------------------ encoding
    def _build_encoding(self) -> EncodingScheme:
        genes: List[Gene] = []
        for block in range(1, self.num_blocks + 1):
            genes.append(Gene(f"block{block}_layers", self.layers_per_block))
            genes.append(Gene(f"block{block}_kernel", self.kernel_sizes))
            genes.append(Gene(f"block{block}_filters", self.filter_counts))
            genes.append(Gene(f"block{block}_pool", (False, True)))
        genes.append(Gene("fc_present", (False, True)))
        genes.append(Gene("fc_units", self.fc_units))
        return EncodingScheme(genes)

    # ------------------------------------------------------------------ validity
    def is_valid(self, indices: Sequence[int]) -> bool:
        """At least ``min_pool_layers`` of the block pools must be enabled."""
        values = self.encoding.values(indices)
        pools = sum(
            1 for block in range(1, self.num_blocks + 1) if values[f"block{block}_pool"]
        )
        return pools >= self.min_pool_layers

    def repair(self, indices: Sequence[int], rng: SeedLike = None) -> np.ndarray:
        """Switch on pooling at random blocks until the constraint holds."""
        rng = ensure_rng(rng)
        arr = self.encoding.validate_indices(indices).copy()
        pool_positions = [
            self.encoding.gene_position(f"block{block}_pool")
            for block in range(1, self.num_blocks + 1)
        ]
        on_index = self.encoding.gene("block1_pool").index_of(True)
        off_positions = [pos for pos in pool_positions if arr[pos] != on_index]
        missing = self.min_pool_layers - (len(pool_positions) - len(off_positions))
        if missing > 0:
            chosen = rng.choice(len(off_positions), size=missing, replace=False)
            for choice in np.atleast_1d(chosen):
                arr[off_positions[int(choice)]] = on_index
        return arr

    # ------------------------------------------------------------------ decoding
    def decode(
        self,
        indices: Sequence[int],
        input_shape: Optional[Tuple[int, ...]] = None,
        num_classes: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Architecture:
        """Decode a genotype into a concrete 1-D :class:`Architecture`."""
        if not self.is_valid(indices):
            raise ValueError(
                "genotype violates the search-space constraints; call repair() first"
            )
        values = self.encoding.values(indices)
        input_shape = tuple(input_shape or self.accuracy_input_shape)
        num_classes = int(num_classes if num_classes is not None else self.num_classes)
        name = name or self.candidate_name(indices)

        layers: List[LayerSpec] = []
        for block in range(1, self.num_blocks + 1):
            depth = int(values[f"block{block}_layers"])
            kernel = int(values[f"block{block}_kernel"])
            filters = int(values[f"block{block}_filters"])
            for layer_idx in range(1, depth + 1):
                layers.append(
                    Conv1D(
                        name=f"conv{block}_{layer_idx}",
                        out_channels=filters,
                        kernel_size=kernel,
                        padding="same",
                        batch_norm=True,
                    )
                )
            if values[f"block{block}_pool"]:
                layers.append(
                    MaxPool1D(name=f"pool{block}", pool_size=self.pool_size)
                )
        layers.append(Flatten(name="flatten"))
        if values["fc_present"]:
            layers.append(Dense(name="fc1", units=int(values["fc_units"])))
        layers.append(Dense(name="classifier", units=num_classes, activation="softmax"))
        return Architecture(name, input_shape, layers)

    # ------------------------------------------------------------------ misc
    def describe(self) -> str:
        """Human-readable description of the space and its constraints."""
        lines = [
            f"SeqConv1DSearchSpace: {self.num_blocks} conv1d blocks, "
            f"{self.total_combinations():,} unconstrained genotypes",
            f"  layers per block: {list(self.layers_per_block)}",
            f"  kernel sizes: {list(self.kernel_sizes)}",
            f"  filter counts: {list(self.filter_counts)}",
            f"  fc units: {list(self.fc_units)}",
            f"  constraints: >= {self.min_pool_layers} pooling layers",
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """Serialisable configuration of the space."""
        return {
            "num_blocks": self.num_blocks,
            "layers_per_block": list(self.layers_per_block),
            "kernel_sizes": list(self.kernel_sizes),
            "filter_counts": list(self.filter_counts),
            "fc_units": list(self.fc_units),
            "min_pool_layers": self.min_pool_layers,
            "pool_size": self.pool_size,
            "num_classes": self.num_classes,
            "accuracy_input_shape": list(self.accuracy_input_shape),
            "performance_input_shape": list(self.performance_input_shape),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SeqConv1DSearchSpace":
        """Reconstruct a search space from :meth:`to_dict` output."""
        return cls(
            num_blocks=data["num_blocks"],
            layers_per_block=data["layers_per_block"],
            kernel_sizes=data["kernel_sizes"],
            filter_counts=data["filter_counts"],
            fc_units=data["fc_units"],
            min_pool_layers=data["min_pool_layers"],
            pool_size=data["pool_size"],
            num_classes=data["num_classes"],
            accuracy_input_shape=tuple(data["accuracy_input_shape"]),
            performance_input_shape=tuple(data["performance_input_shape"]),
        )
