"""Architecture container and static (shape / cost) analysis.

An :class:`Architecture` is an ordered list of :class:`~repro.nn.layers.LayerSpec`
objects together with an input shape.  Calling :meth:`Architecture.summarize`
performs full shape inference and returns one :class:`LayerSummary` per layer
with everything the partitioning engine and the hardware predictors need:
input/output shapes, parameter counts, MAC counts and activation byte sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.nn.graph import PartitionGraph, SkipEdge
from repro.nn.layers import (
    BYTES_PER_ELEMENT,
    LayerSpec,
    Shape,
    element_count,
    layer_from_dict,
    shape_bytes,
)


@dataclass(frozen=True)
class LayerSummary:
    """Static analysis record for one layer within a concrete architecture.

    Attributes
    ----------
    index:
        Zero-based position of the layer within the architecture.
    name:
        Layer name (unique within the architecture).
    layer_type:
        Layer family identifier (``conv``, ``pool``, ``fc``, ...).
    input_shape / output_shape:
        Channels-first activation shapes entering and leaving the layer.
    params:
        Trainable parameter count.
    macs:
        Multiply-accumulate operations per inference.
    output_bytes:
        Size of the layer's output activation in bytes (what would be
        transmitted if the model were split right after this layer).
    weight_bytes:
        Size of the layer's parameters in bytes (memory traffic lower bound
        for memory-bound layers such as large fully-connected layers).
    is_partition_candidate:
        Whether the layer boundary is structurally eligible as a split point.
    """

    index: int
    name: str
    layer_type: str
    input_shape: Shape
    output_shape: Shape
    params: int
    macs: int
    output_bytes: int
    weight_bytes: int
    is_partition_candidate: bool

    @property
    def flops(self) -> int:
        """Floating point operations (2 per MAC)."""
        return 2 * self.macs

    @cached_property
    def output_elements(self) -> int:
        """Number of scalars in the output activation (computed once)."""
        return element_count(self.output_shape)

    @cached_property
    def input_elements(self) -> int:
        """Number of scalars in the input activation (computed once)."""
        return element_count(self.input_shape)

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "name": self.name,
            "layer_type": self.layer_type,
            "input_shape": list(self.input_shape),
            "output_shape": list(self.output_shape),
            "params": self.params,
            "macs": self.macs,
            "output_bytes": self.output_bytes,
            "weight_bytes": self.weight_bytes,
            "is_partition_candidate": self.is_partition_candidate,
        }


def _projection_stride(src_shape: Shape, dst_shape: Shape) -> Optional[int]:
    """Stride of a downsampling 1x1 projection from ``src_shape`` to ``dst_shape``.

    A ResNet projection shortcut reconciles a skip tensor with its merge
    point through a "same"-padded 1x1 convolution of integer stride ``s``,
    mapping ``(c, d1, d2, ...)`` to ``(c', ceil(d1 / s), ceil(d2 / s), ...)``
    for any channel count ``c'``.  Returns the unique stride ``s >= 2`` that
    maps every spatial dimension of ``src_shape`` onto ``dst_shape``, or
    ``None`` when no such stride exists.  Channel-only mismatches at equal
    spatial size are deliberately *not* accepted: no search space emits
    them, so they are far more likely a wiring bug than an intended
    projection, and rejecting them keeps the shape check a real guard.
    """
    if len(src_shape) != len(dst_shape) or len(src_shape) < 2:
        return None
    strides = set()
    for src_dim, dst_dim in zip(src_shape[1:], dst_shape[1:]):
        if dst_dim < 1 or src_dim <= dst_dim:
            return None
        stride = -(-src_dim // dst_dim)
        if -(-src_dim // stride) != dst_dim:
            return None
        strides.add(stride)
    return strides.pop() if len(strides) == 1 else None


class Architecture:
    """An ordered stack of layers with a fixed input shape.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"alexnet"`` or ``"lens-candidate-42"``.
    input_shape:
        Channels-first shape of the network input, e.g. ``(3, 224, 224)``.
    layers:
        The layer specifications, applied in order.
    input_bytes_per_element:
        Storage size of one raw input element when the input is uploaded to
        the cloud.  Camera images are captured as 8-bit pixels, so the default
        is 1 byte — a 224x224x3 input occupies 147 kB, the figure the paper
        quotes — while intermediate feature maps remain 4-byte floats.
    skip_edges:
        Non-chain data dependencies as ``(src, dst)`` layer-index pairs
        (``src == -1`` denotes the network input): layer ``dst`` consumes the
        output of layer ``src`` in addition to its direct predecessor's, as
        in a residual block.  Layers are still *executed* in list order and
        shape inference stays sequential — skip tensors are merged by
        element-wise addition, either directly (identity shortcuts, matching
        shapes) or after an implicit strided 1x1 projection when every
        spatial dimension shrinks by one shared integer stride (ResNet-style
        projection shortcuts across a downsampling).  The merge changes
        neither the main-path shapes nor (to first order) costs, but the
        partitioner uses these edges to exclude cuts that would split a
        skip connection.
    """

    def __init__(
        self,
        name: str,
        input_shape: Shape,
        layers: Sequence[LayerSpec],
        input_bytes_per_element: int = 1,
        skip_edges: Sequence[SkipEdge] = (),
    ):
        if not layers:
            raise ValueError("an architecture requires at least one layer")
        if input_bytes_per_element < 1:
            raise ValueError(
                f"input_bytes_per_element must be >= 1, got {input_bytes_per_element}"
            )
        self.name = str(name)
        self.input_shape: Shape = tuple(int(s) for s in input_shape)
        self.input_bytes_per_element = int(input_bytes_per_element)
        self.layers: Tuple[LayerSpec, ...] = tuple(layers)
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate layer names: {duplicates}")
        # PartitionGraph normalises and bounds-checks the edges once; the
        # graph is immutable, so every partition_graph() call shares it.
        self._partition_graph = PartitionGraph(
            num_layers=len(self.layers), skip_edges=tuple(skip_edges)
        )
        self.skip_edges: Tuple[SkipEdge, ...] = self._partition_graph.skip_edges
        self._summaries: Optional[Tuple[LayerSummary, ...]] = None
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------ dunder
    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.layers)

    def __getitem__(self, index: int) -> LayerSpec:
        return self.layers[index]

    def __repr__(self) -> str:
        return (
            f"Architecture(name={self.name!r}, input_shape={self.input_shape}, "
            f"layers={len(self.layers)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Architecture):
            return NotImplemented
        return (
            self.input_shape == other.input_shape
            and self.input_bytes_per_element == other.input_bytes_per_element
            and self.layers == other.layers
            and self.skip_edges == other.skip_edges
        )

    def __hash__(self) -> int:
        # Hashing walks every layer spec; architectures are structurally
        # immutable, and they key every engine cache, so compute it once.
        if self._hash is None:
            self._hash = hash(
                (
                    self.input_shape,
                    self.input_bytes_per_element,
                    self.layers,
                    self.skip_edges,
                )
            )
        return self._hash

    # ------------------------------------------------------------------ analysis
    def summarize(self) -> Tuple[LayerSummary, ...]:
        """Run shape inference and return per-layer summaries (cached)."""
        if self._summaries is None:
            summaries: List[LayerSummary] = []
            current_shape = self.input_shape
            for index, layer in enumerate(self.layers):
                output_shape = layer.output_shape(current_shape)
                summaries.append(
                    LayerSummary(
                        index=index,
                        name=layer.name,
                        layer_type=layer.layer_type,
                        input_shape=current_shape,
                        output_shape=output_shape,
                        params=layer.param_count(current_shape),
                        macs=layer.macs(current_shape),
                        output_bytes=shape_bytes(output_shape),
                        weight_bytes=layer.weight_bytes(current_shape),
                        is_partition_candidate=layer.is_partition_candidate,
                    )
                )
                current_shape = output_shape
            for src, dst in self.skip_edges:
                src_shape = (
                    self.input_shape if src < 0 else summaries[src].output_shape
                )
                dst_shape = summaries[dst].output_shape
                if src_shape == dst_shape:
                    continue
                if _projection_stride(src_shape, dst_shape) is None:
                    raise ValueError(
                        f"skip edge ({src}, {dst}) joins incompatible shapes "
                        f"{src_shape} -> {dst_shape}; skip tensors merge "
                        "element-wise, directly or through a downsampling "
                        "projection"
                    )
            self._summaries = tuple(summaries)
        return self._summaries

    def partition_graph(self) -> PartitionGraph:
        """Cut-legality graph of this architecture (see :mod:`repro.nn.graph`)."""
        return self._partition_graph

    @property
    def output_shape(self) -> Shape:
        """Shape of the final layer's output."""
        return self.summarize()[-1].output_shape

    @property
    def input_bytes(self) -> int:
        """Size of the raw network input in bytes (the All-Cloud upload size)."""
        return element_count(self.input_shape) * self.input_bytes_per_element

    @property
    def total_params(self) -> int:
        """Total trainable parameter count."""
        return sum(s.params for s in self.summarize())

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulate operations per inference."""
        return sum(s.macs for s in self.summarize())

    @property
    def total_flops(self) -> int:
        """Total floating point operations per inference."""
        return 2 * self.total_macs

    @property
    def depth(self) -> int:
        """Number of parameterised (conv + fc) layers."""
        return sum(1 for s in self.summarize() if s.layer_type in ("conv", "fc"))

    def count_layers(self, layer_type: str) -> int:
        """Number of layers of the given family."""
        return sum(1 for s in self.summarize() if s.layer_type == layer_type)

    def layer_index(self, name: str) -> int:
        """Index of the layer with the given name.

        Raises ``KeyError`` if no layer carries that name.
        """
        for index, layer in enumerate(self.layers):
            if layer.name == name:
                return index
        raise KeyError(f"no layer named {name!r} in architecture {self.name!r}")

    def output_bytes_after(self, index: int) -> int:
        """Bytes of the activation produced by the layer at ``index``."""
        return self.summarize()[index].output_bytes

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> Dict:
        """Serialisable description of the architecture."""
        data = {
            "name": self.name,
            "input_shape": list(self.input_shape),
            "input_bytes_per_element": self.input_bytes_per_element,
            "layers": [layer.to_dict() for layer in self.layers],
        }
        if self.skip_edges:
            data["skip_edges"] = [list(edge) for edge in self.skip_edges]
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "Architecture":
        """Reconstruct an architecture from :meth:`to_dict` output."""
        layers = [layer_from_dict(entry) for entry in data["layers"]]
        return cls(
            data["name"],
            tuple(data["input_shape"]),
            layers,
            input_bytes_per_element=data.get("input_bytes_per_element", 1),
            skip_edges=tuple(
                tuple(edge) for edge in data.get("skip_edges", ())
            ),
        )

    def describe(self) -> str:
        """Multi-line human-readable summary (one row per layer)."""
        lines = [
            f"{self.name}: input {self.input_shape}, "
            f"{self.total_params:,} params, {self.total_macs:,} MACs"
        ]
        for summary in self.summarize():
            lines.append(
                f"  [{summary.index:>2}] {summary.name:<12} {summary.layer_type:<8}"
                f" out={summary.output_shape!s:<18} params={summary.params:>12,}"
                f" macs={summary.macs:>14,} out_kB={summary.output_bytes / 1024:,.1f}"
            )
        return "\n".join(lines)


def stack_layers(groups: Iterable[Sequence[LayerSpec]]) -> List[LayerSpec]:
    """Flatten an iterable of layer groups into a single ordered list."""
    flattened: List[LayerSpec] = []
    for group in groups:
        flattened.extend(group)
    return flattened
