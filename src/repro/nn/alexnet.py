"""Reference AlexNet architecture (Krizhevsky et al., 2012).

Used by the paper's motivational example (Fig. 1, Fig. 2 and Table I): the
per-layer analysis of output feature-map sizes and latency shares, and the
study of how the preferred edge/cloud partition point moves with the upload
throughput.  Activation / normalisation layers are fused into their preceding
layers, matching the paper's treatment, so the layer list is:

``conv1, pool1, conv2, pool2, conv3, conv4, conv5, pool5, fc6, fc7, fc8``
"""

from __future__ import annotations

from typing import Tuple

from repro.nn.architecture import Architecture
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D


def build_alexnet(
    num_classes: int = 1000, input_shape: Tuple[int, int, int] = (3, 224, 224)
) -> Architecture:
    """Build the AlexNet reference architecture.

    Parameters
    ----------
    num_classes:
        Size of the final softmax layer (1000 for ImageNet).
    input_shape:
        Channels-first input shape; the paper's deployment analysis uses
        224x224x3 RGB inputs (147 kB).

    Returns
    -------
    Architecture
        The AlexNet model with fused activations and local-response
        normalisation omitted (negligible cost, no shape change).
    """
    layers = [
        Conv2D(name="conv1", out_channels=96, kernel_size=11, stride=4, padding=2),
        MaxPool2D(name="pool1", pool_size=3, stride=2),
        Conv2D(name="conv2", out_channels=256, kernel_size=5, stride=1, padding="same"),
        MaxPool2D(name="pool2", pool_size=3, stride=2),
        Conv2D(name="conv3", out_channels=384, kernel_size=3, stride=1, padding="same"),
        Conv2D(name="conv4", out_channels=384, kernel_size=3, stride=1, padding="same"),
        Conv2D(name="conv5", out_channels=256, kernel_size=3, stride=1, padding="same"),
        MaxPool2D(name="pool5", pool_size=3, stride=2),
        Flatten(name="flatten"),
        Dense(name="fc6", units=4096),
        Dense(name="fc7", units=4096),
        Dense(name="fc8", units=num_classes, activation="softmax"),
    ]
    return Architecture("alexnet", input_shape, layers)
