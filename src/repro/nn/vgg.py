"""Reference VGG-16 architecture (Simonyan & Zisserman, 2015).

The LENS experimental search space (Fig. 4 of the paper) is derived from
VGG-16: five convolutional blocks each followed by max pooling, then fully
connected layers.  The reference model is provided both as a sanity baseline
for the search space (VGG-16 itself is a member of a slightly widened version
of the space) and for the hardware-predictor calibration tests.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.nn.architecture import Architecture
from repro.nn.layers import Conv2D, Dense, Flatten, LayerSpec, MaxPool2D

#: Filters per convolutional block in VGG-16.
VGG16_BLOCK_FILTERS: Tuple[int, ...] = (64, 128, 256, 512, 512)

#: Convolutional layers per block in VGG-16.
VGG16_BLOCK_DEPTHS: Tuple[int, ...] = (2, 2, 3, 3, 3)


def build_vgg16(
    num_classes: int = 1000, input_shape: Tuple[int, int, int] = (3, 224, 224)
) -> Architecture:
    """Build the canonical VGG-16 architecture (configuration D)."""
    return build_vgg_like(
        name="vgg16",
        block_filters=VGG16_BLOCK_FILTERS,
        block_depths=VGG16_BLOCK_DEPTHS,
        fc_units=(4096, 4096),
        num_classes=num_classes,
        input_shape=input_shape,
    )


def build_vgg_like(
    name: str,
    block_filters: Sequence[int],
    block_depths: Sequence[int],
    fc_units: Sequence[int],
    num_classes: int = 10,
    input_shape: Tuple[int, int, int] = (3, 224, 224),
    kernel_size: int = 3,
    batch_norm: bool = False,
) -> Architecture:
    """Construct a VGG-style architecture from block descriptions.

    Parameters
    ----------
    block_filters / block_depths:
        Filters and number of convolutional layers for each block; the two
        sequences must have equal length.  Each block is followed by a 2x2
        max-pooling layer.
    fc_units:
        Hidden fully-connected layer widths (may be empty); a final
        ``num_classes``-way softmax layer is always appended.
    """
    if len(block_filters) != len(block_depths):
        raise ValueError(
            "block_filters and block_depths must have the same length, got "
            f"{len(block_filters)} and {len(block_depths)}"
        )
    layers: List[LayerSpec] = []
    for block_idx, (filters, depth) in enumerate(zip(block_filters, block_depths), start=1):
        for layer_idx in range(1, depth + 1):
            layers.append(
                Conv2D(
                    name=f"conv{block_idx}_{layer_idx}",
                    out_channels=int(filters),
                    kernel_size=kernel_size,
                    stride=1,
                    padding="same",
                    batch_norm=batch_norm,
                )
            )
        layers.append(MaxPool2D(name=f"pool{block_idx}", pool_size=2))
    layers.append(Flatten(name="flatten"))
    for fc_idx, units in enumerate(fc_units, start=1):
        layers.append(Dense(name=f"fc{fc_idx}", units=int(units)))
    layers.append(Dense(name="classifier", units=int(num_classes), activation="softmax"))
    return Architecture(name, input_shape, layers)
