#!/usr/bin/env python
"""cProfile harness for one search run, split by surrogate vs evaluation work.

Runs :func:`repro.api.run_search` under cProfile and prints the hottest
functions plus an aggregate split of where the time went: the surrogate
engine (``repro.optim.gp`` / ``gp_bank`` / ``kernels``), acquisition
scoring, Pareto bookkeeping, and candidate evaluation (predictors +
Algorithm 1).  Use ``--gp-update exact-refit`` to profile the pre-bank
cold-refit behaviour and quantify the incremental fast path on a real
search::

    PYTHONPATH=src python tools/profile_search.py --evaluations 300
    PYTHONPATH=src python tools/profile_search.py --evaluations 300 \
        --gp-update exact-refit

The harness only flips :data:`repro.optim.mobo.DEFAULT_GP_UPDATE`; request
envelopes and fingerprints are untouched, so profiled runs select exactly
the candidates a normal run would.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro.optim.mobo as mobo  # noqa: E402
from repro.api import run_search  # noqa: E402
from repro.optim.gp import UPDATE_MODES  # noqa: E402

#: Module substrings used to attribute cumulative time to subsystems.
BUCKETS = {
    "surrogate (gp/bank/kernels)": ("optim/gp.py", "optim/gp_bank.py", "optim/kernels.py"),
    "acquisition + scalarisation": ("optim/acquisition.py", "optim/scalarization.py"),
    "pareto bookkeeping": ("optim/pareto.py",),
    "candidate evaluation": ("core/evaluation.py", "partition/", "hardware/", "accuracy/"),
}

#: Finer attribution inside the evaluation phase (``--phase eval``): which
#: share goes to the per-layer predictors, the partition costing, the channel
#: cost model, decoding/shape inference, the accuracy surrogate and the
#: engine's caching layer.  Order matters — first match wins.
EVAL_BUCKETS = {
    "layer predictors + features": ("hardware/predictors.py", "hardware/features.py"),
    "partition costing": ("partition/",),
    "channel cost model": ("wireless/",),
    "nn: decode/sampling/shapes": ("nn/",),
    "accuracy surrogate": ("accuracy/",),
    "engine caching": ("api/engine.py",),
    "evaluator glue": ("core/evaluation.py",),
}


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--strategy", default="lens")
    parser.add_argument("--scenario", default="wifi-3mbps/jetson-tx2-gpu")
    parser.add_argument("--search-space", default="lens-vgg")
    parser.add_argument(
        "--evaluations", type=int, default=300,
        help="Bayesian-optimization iterations (plus --num-initial random ones)",
    )
    parser.add_argument("--num-initial", type=int, default=10)
    parser.add_argument("--pool-size", type=int, default=128)
    parser.add_argument("--predictor-samples", type=int, default=80)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument(
        "--gp-update", choices=UPDATE_MODES, default="incremental",
        help="surrogate conditioning mode to profile",
    )
    parser.add_argument(
        "--phase", choices=("all", "eval"), default="all",
        help=(
            "'eval' adds an evaluation-phase breakdown (predictor vs "
            "partition vs channel vs decode time)"
        ),
    )
    parser.add_argument(
        "--top", type=int, default=25, help="how many rows of the pstats table to print"
    )
    parser.add_argument(
        "--sort", default="cumulative", help="pstats sort key (cumulative, tottime, ...)"
    )
    return parser.parse_args(argv)


def bucket_times(stats: pstats.Stats, buckets: dict = BUCKETS) -> dict:
    """Total internal time attributed to each bucket of ``buckets``."""
    totals = {name: 0.0 for name in buckets}
    for (filename, _line, _name), entry in stats.stats.items():  # type: ignore[attr-defined]
        internal_time = entry[2]
        for name, fragments in buckets.items():
            if any(fragment in filename for fragment in fragments):
                totals[name] += internal_time
                break
    return totals


def main(argv=None) -> int:
    args = parse_args(argv)
    mobo.DEFAULT_GP_UPDATE = args.gp_update

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    outcome = run_search(
        strategy=args.strategy,
        scenario=args.scenario,
        search_space=args.search_space,
        num_initial=args.num_initial,
        num_iterations=args.evaluations,
        candidate_pool_size=args.pool_size,
        predictor_samples_per_type=args.predictor_samples,
        seed=args.seed,
    )
    profiler.disable()
    elapsed = time.perf_counter() - start

    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)

    totals = bucket_times(stats)
    print(
        f"run: {args.strategy} / {args.scenario} / {args.search_space}, "
        f"{len(outcome.candidates)} evaluations, gp_update={args.gp_update}, "
        f"{elapsed:.2f}s wall"
    )
    print("time by subsystem (internal time, seconds):")
    for name, seconds in sorted(totals.items(), key=lambda item: -item[1]):
        share = 100.0 * seconds / elapsed if elapsed > 0 else 0.0
        print(f"  {name:<30} {seconds:8.3f}s  ({share:5.1f}% of wall)")

    if args.phase == "eval":
        eval_totals = bucket_times(stats, EVAL_BUCKETS)
        phase_total = sum(eval_totals.values())
        print(
            "evaluation-phase breakdown "
            f"(internal time, {phase_total:.3f}s total):"
        )
        for name, seconds in sorted(eval_totals.items(), key=lambda item: -item[1]):
            share = 100.0 * seconds / phase_total if phase_total > 0 else 0.0
            print(f"  {name:<30} {seconds:8.3f}s  ({share:5.1f}% of phase)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
